//! The `rperf-lab` meta-crate: re-exports the whole rperf-rs workspace
//! so the examples and integration tests at the repository root can use
//! every public API through one dependency.
#![forbid(unsafe_code)]

pub use rperf;
pub use rperf_fabric;
pub use rperf_host;
pub use rperf_model;
pub use rperf_rnic;
pub use rperf_sim;
pub use rperf_stats;
pub use rperf_subnet;
pub use rperf_switch;
pub use rperf_verbs;
pub use rperf_workloads;
