#!/usr/bin/env bash
# Sharded-execution smoke (`make shard-smoke`; DESIGN.md §3.7).
#
# Two checks:
#
# 1. Byte-identity — always. The large fanout_30 scenario and both
#    example scenarios must emit identical JSON at --shards 1 and
#    --shards 4: sharding is an execution strategy, never part of the
#    result.
#
# 2. Speedup floor — only on hosts with >= 4 CPUs. The sharded
#    fanout_30 run must beat the sequential one by at least
#    SHARD_SMOKE_MIN_SPEEDUP x wall-clock (best of 3 runs each, so one
#    scheduler hiccup cannot fail the gate). On smaller hosts the
#    conservative window barriers can only add overhead — four worker
#    threads time-slicing one core turn every barrier into context
#    switches — so the floor is skipped there, not faked.
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=${CLI:-target/release/rperf-cli}
MIN_SPEEDUP=${SHARD_SMOKE_MIN_SPEEDUP:-2.0}
TMP=${TMPDIR:-/tmp}

if [ ! -x "$CLI" ]; then
    echo "shard-smoke: building rperf-cli" >&2
    cargo build --release -q -p rperf-cli
fi

echo "shard-smoke: byte-identity, --shards 1 vs --shards 4" >&2
for scn in fanout_30 incast_8 chain_gaming; do
    "$CLI" scenario "examples/scenarios/$scn.scn" --json >"$TMP/rperf_${scn}_s1.json"
    "$CLI" scenario "examples/scenarios/$scn.scn" --json --shards 4 >"$TMP/rperf_${scn}_s4.json"
    cmp "$TMP/rperf_${scn}_s1.json" "$TMP/rperf_${scn}_s4.json"
    echo "  $scn: identical" >&2
done

ncpu=$(nproc)
if [ "$ncpu" -lt 4 ]; then
    echo "shard-smoke: $ncpu CPU(s) < 4 — speedup floor skipped (identity checked)" >&2
    exit 0
fi

# Best-of-3 wall nanoseconds for `scenario fanout_30 [extra args]`.
best_ns() {
    local best=""
    local t0 t1 dt
    for _ in 1 2 3; do
        t0=$(date +%s%N)
        "$CLI" scenario examples/scenarios/fanout_30.scn --json "$@" >/dev/null
        t1=$(date +%s%N)
        dt=$((t1 - t0))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
    done
    echo "$best"
}

seq_ns=$(best_ns)
par_ns=$(best_ns --shards 4)
awk -v s="$seq_ns" -v p="$par_ns" -v m="$MIN_SPEEDUP" 'BEGIN {
    speedup = s / p
    printf "shard-smoke: fanout_30 sequential %.3f s, --shards 4 %.3f s: %.2fx (floor %.2fx)\n",
        s / 1e9, p / 1e9, speedup, m
    exit !(speedup >= m)
}' >&2 || {
    echo "shard-smoke: FAILED the speedup floor (tune SHARD_SMOKE_MIN_SPEEDUP to re-gate)" >&2
    exit 1
}
echo "shard-smoke: ok" >&2
