#!/usr/bin/env bash
# Fat-tree/Clos smoke (`make clos-smoke`; DESIGN.md §4.2).
#
# Three checks:
#
# 1. End-to-end from spec files — always. Both committed fat-tree
#    example scenarios (3-tier k = 4 Clos and the oversubscribed
#    leaf-spine) must run from their `.scn` files alone and emit valid
#    JSON, and `--dump-routes` must print the same per-switch
#    forwarding tables on repeated invocations: routing is planned
#    deterministically, never discovered at run time.
#
# 2. Sharded byte-identity at scale — always. A generated 128-host
#    k = 8 leaf-spine incast must emit identical JSON at --shards 1
#    and --shards 4.
#
# 3. Speedup floor — only on hosts with >= 4 CPUs. The sharded k = 8
#    run must beat the sequential one by at least
#    CLOS_SMOKE_MIN_SPEEDUP x wall-clock (best of 3 runs each). On
#    smaller hosts the conservative window barriers can only add
#    overhead, so the floor is skipped there, not faked.
set -euo pipefail
cd "$(dirname "$0")/.."

CLI=${CLI:-target/release/rperf-cli}
MIN_SPEEDUP=${CLOS_SMOKE_MIN_SPEEDUP:-1.5}
TMP=${TMPDIR:-/tmp}

if [ ! -x "$CLI" ]; then
    echo "clos-smoke: building rperf-cli" >&2
    cargo build --release -q -p rperf-cli
fi

echo "clos-smoke: fat-tree examples end-to-end from spec files" >&2
for scn in fattree_incast fattree_victim; do
    "$CLI" scenario "examples/scenarios/$scn.scn" --json | python3 -m json.tool >/dev/null
    "$CLI" scenario "examples/scenarios/$scn.scn" --dump-routes >"$TMP/rperf_${scn}_routes_a.txt"
    "$CLI" scenario "examples/scenarios/$scn.scn" --dump-routes >"$TMP/rperf_${scn}_routes_b.txt"
    cmp "$TMP/rperf_${scn}_routes_a.txt" "$TMP/rperf_${scn}_routes_b.txt"
    echo "  $scn: ran, routes deterministic" >&2
done

# The scale scenario: a 128-host k = 8, o = 2 leaf-spine (16 leaves,
# 4 spines) with an 8-wide remote-leaf incast plus a spine-crossing
# victim. Generated here rather than committed: the smoke's point is
# that arbitrary fat-trees need no Rust changes.
K8=$TMP/rperf_clos_k8.scn
{
    printf 'name = "clos_k8"\nwarmup_us = 200\nduration_ms = 4\n\n'
    printf '[topology]\nkind = "fattree"\nk = 8\ntiers = 2\noversubscription = 2\n\n'
    printf '[[role]]\nnode = 0\nkind = "rperf"\ntarget = 8\npayload = 64\n\n'
    for n in 16 24 32 40 48 56 64 72; do
        printf '[[role]]\nnode = %d\nkind = "bsg"\ntarget = 8\npayload = 4096\n\n' "$n"
    done
    printf '[[role]]\nnode = 8\nkind = "sink"\n'
} >"$K8"

echo "clos-smoke: k=8 byte-identity, --shards 1 vs --shards 4" >&2
"$CLI" scenario "$K8" --json >"$TMP/rperf_clos_k8_s1.json"
"$CLI" scenario "$K8" --json --shards 4 >"$TMP/rperf_clos_k8_s4.json"
cmp "$TMP/rperf_clos_k8_s1.json" "$TMP/rperf_clos_k8_s4.json"
echo "  clos_k8: identical" >&2

ncpu=$(nproc)
if [ "$ncpu" -lt 4 ]; then
    echo "clos-smoke: $ncpu CPU(s) < 4 — speedup floor skipped (identity checked)" >&2
    exit 0
fi

# Best-of-3 wall nanoseconds for `scenario clos_k8 [extra args]`.
best_ns() {
    local best=""
    local t0 t1 dt
    for _ in 1 2 3; do
        t0=$(date +%s%N)
        "$CLI" scenario "$K8" --json "$@" >/dev/null
        t1=$(date +%s%N)
        dt=$((t1 - t0))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
    done
    echo "$best"
}

seq_ns=$(best_ns)
par_ns=$(best_ns --shards 4)
awk -v s="$seq_ns" -v p="$par_ns" -v m="$MIN_SPEEDUP" 'BEGIN {
    speedup = s / p
    printf "clos-smoke: clos_k8 sequential %.3f s, --shards 4 %.3f s: %.2fx (floor %.2fx)\n",
        s / 1e9, p / 1e9, speedup, m
    exit !(speedup >= m)
}' >&2 || {
    echo "clos-smoke: FAILED the speedup floor (tune CLOS_SMOKE_MIN_SPEEDUP to re-gate)" >&2
    exit 1
}
echo "clos-smoke: ok" >&2
