//! Cross-crate integration tests: QoS isolation and the gaming attack
//! (Section VIII-C), multi-hop head-of-line blocking (Section VIII-B),
//! and measurement-tool bias ordering (Sections III/IV).

use rperf::scenario::{
    converged, multihop, one_to_one_perftest, one_to_one_qperf, one_to_one_rperf, QosMode, RunSpec,
};
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn spec(cfg: ClusterConfig, seed: u64) -> RunSpec {
    RunSpec::new(cfg)
        .with_seed(seed)
        .with_duration(SimDuration::from_ms(6))
}

#[test]
fn dedicated_sl_restores_latency_without_bandwidth_cost() {
    // Paper Fig. 12: 20.2 µs shared → 0.7 µs dedicated (~29×), with
    // unchanged aggregate bandwidth.
    let shared = converged(
        &spec(ClusterConfig::hardware(), 1),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let dedicated = converged(
        &spec(ClusterConfig::hardware(), 1),
        5,
        4096,
        1,
        true,
        QosMode::DedicatedSl,
    );
    let shared_p50 = shared.lsg.unwrap().summary.p50_us();
    let ded = dedicated.lsg.unwrap();
    assert!(
        shared_p50 / ded.summary.p50_us() > 10.0,
        "isolation factor too small: {shared_p50:.1} vs {:.2}",
        ded.summary.p50_us()
    );
    assert!(
        ded.summary.p50_us() < 1.5,
        "dedicated-SL latency should be near baseline: {:.2} µs",
        ded.summary.p50_us()
    );
    assert!(
        (dedicated.total_gbps - shared.total_gbps).abs() / shared.total_gbps < 0.1,
        "QoS must not cost bandwidth: {:.1} vs {:.1}",
        dedicated.total_gbps,
        shared.total_gbps
    );
}

#[test]
fn pretend_lsg_hurts_the_real_lsg_and_grabs_bandwidth() {
    // Paper Fig. 12 (last bar) and Fig. 13.
    let gamed = converged(
        &spec(ClusterConfig::hardware(), 2),
        4,
        4096,
        1,
        true,
        QosMode::DedicatedSlWithPretend,
    );
    let honest = converged(
        &spec(ClusterConfig::hardware(), 2),
        5,
        4096,
        1,
        true,
        QosMode::DedicatedSl,
    );
    let gamed_lsg = gamed.lsg.unwrap().summary.p50_us();
    let honest_lsg = honest.lsg.unwrap().summary.p50_us();
    assert!(
        gamed_lsg > honest_lsg * 5.0,
        "the pretender must hurt the real LSG: {gamed_lsg:.1} vs {honest_lsg:.2} µs"
    );

    let pretend = gamed.pretend_gbps.expect("gaming run");
    let honest_share = gamed.per_bsg_gbps.iter().sum::<f64>() / gamed.per_bsg_gbps.len() as f64;
    let ratio = pretend / honest_share;
    assert!(
        (2.0..5.0).contains(&ratio),
        "paper: ~3× an honest share; got {ratio:.1}× ({pretend:.1} vs {honest_share:.1})"
    );
}

#[test]
fn gamed_total_bandwidth_is_comparable_to_shared() {
    // Paper Fig. 13: totals 48.7 (gamed) vs 48.4 (shared).
    let gamed = converged(
        &spec(ClusterConfig::hardware(), 3),
        4,
        4096,
        1,
        true,
        QosMode::DedicatedSlWithPretend,
    );
    let shared = converged(
        &spec(ClusterConfig::hardware(), 3),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    assert!(
        (gamed.total_gbps - shared.total_gbps).abs() / shared.total_gbps < 0.15,
        "totals should be comparable: {:.1} vs {:.1}",
        gamed.total_gbps,
        shared.total_gbps
    );
}

#[test]
fn rr_fails_to_isolate_across_two_hops() {
    // Paper Fig. 11: multi-hop RR is an order of magnitude worse than
    // single-hop RR — head-of-line blocking on the trunk.
    let single_rr = converged(
        &spec(
            ClusterConfig::omnet_simulator().with_policy(SchedPolicy::RoundRobin),
            4,
        ),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let multi_rr = multihop(
        &spec(ClusterConfig::omnet_simulator(), 4),
        SchedPolicy::RoundRobin,
    );
    let single = single_rr.lsg.unwrap().summary.p50_us();
    let multi = multi_rr.lsg.unwrap().summary.p50_us();
    assert!(
        multi > single * 4.0,
        "two hops must defeat RR: single {single:.1} µs vs multi {multi:.1} µs"
    );
    assert!(
        (10.0..30.0).contains(&multi),
        "multi-hop RR latency {multi:.1} µs outside the paper's magnitude"
    );
}

#[test]
fn multihop_fcfs_is_at_least_as_bad_as_rr() {
    let fcfs = multihop(
        &spec(ClusterConfig::omnet_simulator(), 5),
        SchedPolicy::Fcfs,
    );
    let rr = multihop(
        &spec(ClusterConfig::omnet_simulator(), 5),
        SchedPolicy::RoundRobin,
    );
    let f = fcfs.lsg.unwrap().summary.p50_us();
    let r = rr.lsg.unwrap().summary.p50_us();
    assert!(f >= r * 0.9, "FCFS {f:.1} µs vs RR {r:.1} µs");
}

#[test]
fn tool_bias_ordering_matches_the_paper() {
    // Section III/IV: RPerf ≪ Perftest and QPerf; QPerf's WRITE pays the
    // remote DMA that RPerf's SEND does not.
    let spec = spec(ClusterConfig::hardware(), 6);
    for payload in [64u64, 4096] {
        let rp = one_to_one_rperf(&spec, true, payload).summary.p50_us();
        let pf = one_to_one_perftest(&spec, payload).p50_us();
        let qp = one_to_one_qperf(&spec, payload).avg_us;
        assert!(
            pf > rp * 3.0,
            "{payload} B: perftest {pf:.2} µs must dwarf RPerf {rp:.2} µs"
        );
        assert!(
            qp > rp * 3.0,
            "{payload} B: qperf {qp:.2} µs must dwarf RPerf {rp:.2} µs"
        );
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let a = converged(
        &spec(ClusterConfig::hardware(), 9),
        3,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let b = converged(
        &spec(ClusterConfig::hardware(), 9),
        3,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    assert_eq!(
        a.lsg.unwrap().summary.p50_ps,
        b.lsg.unwrap().summary.p50_ps,
        "identical seeds must give identical distributions"
    );
    assert_eq!(a.per_bsg_gbps, b.per_bsg_gbps);
}
