//! Cross-crate integration tests: zero-load latency properties
//! (Fig. 4 and the Section VI take-aways).

use rperf::scenario::{one_to_one_rperf, RunSpec};
use rperf_model::analytic::rperf_zero_load_rtt_estimate;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(ClusterConfig::hardware())
        .with_seed(seed)
        .with_duration(SimDuration::from_ms(2))
}

#[test]
fn back_to_back_rtt_is_well_under_100ns_for_all_payloads() {
    // Paper take-away 1 of Section VI-A.
    for payload in [64u64, 256, 1024, 4096] {
        let report = one_to_one_rperf(&spec(1), false, payload);
        assert!(report.iterations > 300);
        let p50 = report.summary.p50_ns();
        assert!(
            p50 < 100.0,
            "back-to-back p50 at {payload} B should be < 100 ns, got {p50:.1}"
        );
    }
}

#[test]
fn payload_size_has_small_effect_on_rtt() {
    // Paper: "the RTT is very low and payload size has a small effect".
    let small = one_to_one_rperf(&spec(2), false, 64).summary.p50_ns();
    let large = one_to_one_rperf(&spec(2), false, 4096).summary.p50_ns();
    assert!(large > small);
    assert!(
        large - small < 100.0,
        "64→4096 B delta {:.1} ns",
        large - small
    );
}

#[test]
fn switch_rtt_close_to_datasheet_and_tail_heavy() {
    // Paper take-aways of Section VI-B: median ≈ the spec's 400 ns RTT;
    // tail ≈ median + ~45 %.
    let report = one_to_one_rperf(&spec(3), true, 64);
    let p50 = report.summary.p50_ns();
    let p999 = report.summary.p999_ns();
    assert!(
        (380.0..520.0).contains(&p50),
        "switch median {p50:.0} ns not near the 400 ns spec RTT"
    );
    let tail_ratio = p999 / p50;
    assert!(
        (1.2..1.9).contains(&tail_ratio),
        "switch tail/median ratio {tail_ratio:.2} outside the paper's ~1.45"
    );
}

#[test]
fn switch_delta_is_roughly_payload_independent() {
    // Cut-through forwarding: the switch adds a near-constant RTT delta
    // (paper: 412 ns at 64 B, 422 ns at 4096 B).
    let mut deltas = Vec::new();
    for payload in [64u64, 1024, 4096] {
        let without = one_to_one_rperf(&spec(4), false, payload).summary.p50_ns();
        let with = one_to_one_rperf(&spec(4), true, payload).summary.p50_ns();
        deltas.push(with - without);
    }
    let min = deltas.iter().cloned().fold(f64::MAX, f64::min);
    let max = deltas.iter().cloned().fold(0.0, f64::max);
    assert!(
        max - min < 60.0,
        "switch delta should be near-constant across payloads: {deltas:?}"
    );
    assert!((350.0..500.0).contains(&min), "deltas {deltas:?}");
}

#[test]
fn simulation_matches_analytic_oracle_within_noise() {
    for (through, payload) in [(false, 64u64), (false, 4096), (true, 64), (true, 4096)] {
        let est =
            rperf_zero_load_rtt_estimate(&ClusterConfig::hardware(), payload, through).as_ns_f64();
        let got = one_to_one_rperf(&spec(5), through, payload)
            .summary
            .p50_ns();
        assert!(
            (got - est).abs() < 30.0,
            "payload {payload}, switch {through}: simulated {got:.1} ns vs \
             oracle {est:.1} ns"
        );
    }
}

#[test]
fn three_seeds_agree_like_the_papers_three_runs() {
    // The paper reports negligible run-to-run error; our three seeds
    // should agree within a few ns at zero load.
    let p50s: Vec<f64> = [1u64, 2, 3]
        .iter()
        .map(|&s| one_to_one_rperf(&spec(s), true, 64).summary.p50_ns())
        .collect();
    let min = p50s.iter().cloned().fold(f64::MAX, f64::min);
    let max = p50s.iter().cloned().fold(0.0, f64::max);
    assert!(max - min < 15.0, "seed spread too wide: {p50s:?}");
}
