//! Integration tests for subnet-planned topologies: traffic crosses
//! chains and stars correctly, and hop counts show up in latency.

use rperf::scenario::{chain_latency, RunSpec};
use rperf::{RPerf, RPerfConfig};
use rperf_fabric::{Fabric, Sim};
use rperf_model::ClusterConfig;
use rperf_sim::{SimDuration, SimTime};
use rperf_subnet::TopologySpec;
use rperf_workloads::Sink;

#[test]
fn star_topology_carries_probes_through_the_core() {
    // Two leaf switches hanging off a core: leaf-to-leaf traffic crosses
    // three switches.
    let topo = TopologySpec::star(2, 1); // hosts: node 0 on leaf 1, node 1 on leaf 2
    let fabric = Fabric::from_spec(ClusterConfig::omnet_simulator(), &topo, 5);
    let mut sim = Sim::new(fabric);
    sim.enable_trace(50_000);
    sim.add_app(
        0,
        Box::new(RPerf::new(
            RPerfConfig::new(1).with_warmup(SimDuration::from_us(20)),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));
    sim.start();
    sim.run_until(SimTime::from_us(500));

    let report = sim.app_as::<RPerf>(0).report();
    assert!(report.iterations > 100, "{} iterations", report.iterations);
    // Three switches ≈ zero-load single-switch RTT + 2 × ~0.4 µs.
    let p50 = report.summary.p50_us();
    assert!(
        (1.0..1.7).contains(&p50),
        "3-switch star RTT {p50:.2} µs out of band"
    );

    // The trace confirms each probe crossed exactly three switches.
    let trace = sim.trace().expect("enabled");
    let probe = trace
        .packets()
        .into_iter()
        .find(|&p| trace.hop_count(p) > 0)
        .expect("a probe crossed the fabric");
    assert_eq!(trace.hop_count(probe), 3, "leaf → core → leaf");
}

#[test]
fn chain_zero_load_latency_is_linear_in_hops() {
    let spec = RunSpec::new(ClusterConfig::omnet_simulator())
        .with_seed(8)
        .with_duration(SimDuration::from_ms(1));
    let p: Vec<f64> = (1..=4)
        .map(|n| chain_latency(&spec, n, 0).summary.p50_us())
        .collect();
    // Successive differences are one extra switch RTT each — all equal.
    let d1 = p[1] - p[0];
    let d2 = p[2] - p[1];
    let d3 = p[3] - p[2];
    for d in [d1, d2, d3] {
        assert!(
            (0.3..0.55).contains(&d),
            "per-switch RTT increment {d:.3} µs out of band (series {p:?})"
        );
    }
    assert!((d1 - d3).abs() < 0.05, "increments must be equal: {p:?}");
}

#[test]
fn deep_chain_delivers_bulk_traffic_without_loss() {
    use rperf_workloads::{Bsg, BsgConfig};
    // Source on one end of a 4-switch chain, sink on the other.
    let topo = TopologySpec::chain(4, &[1, 0, 0, 1]);
    let fabric = Fabric::from_spec(ClusterConfig::omnet_simulator(), &topo, 6);
    let mut sim = Sim::new(fabric);
    sim.add_app(
        0,
        Box::new(Bsg::new(
            BsgConfig::new(1, 4096).with_warmup(SimDuration::from_us(100)),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));
    sim.start();
    let end = SimTime::from_us(3_000);
    sim.run_until(end);
    let bsg = sim.app_as::<Bsg>(0);
    let gbps = bsg.gbps_until(end.as_ps());
    // Four store-nothing cut-through hops cost pipeline latency, not
    // bandwidth: the flow still saturates its injection rate.
    assert!(
        gbps > 50.0,
        "bulk goodput across 4 switches {gbps:.1} Gbps too low"
    );
    assert_eq!(sim.fabric().rnic(1).stats().recv_autofills, 0);
    // Every switch forwarded every packet exactly once (no loss, no dup).
    let fwd0 = sim.fabric().switch(0).stats().forwarded_packets;
    let fwd3 = sim.fabric().switch(3).stats().forwarded_packets;
    assert_eq!(fwd0, fwd3, "hop counts must agree along the chain");
}
