//! Cross-crate integration tests: converged traffic and Eq. 2
//! (Sections VII and VIII-B).

use rperf::scenario::{converged, QosMode, RunSpec};
use rperf_model::analytic::fcfs_waiting_time;
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn spec(cfg: ClusterConfig, seed: u64) -> RunSpec {
    RunSpec::new(cfg)
        .with_seed(seed)
        .with_duration(SimDuration::from_ms(6))
}

#[test]
fn lsg_latency_grows_linearly_with_bsgs() {
    // Paper Fig. 7a: each added BSG costs the LSG another input buffer's
    // worth of FCFS waiting.
    let mut p50s = Vec::new();
    for n in 0..=5usize {
        let out = converged(
            &spec(ClusterConfig::hardware(), 1),
            n,
            4096,
            1,
            true,
            QosMode::SharedSl,
        );
        p50s.push(out.lsg.unwrap().summary.p50_us());
    }
    // Zero-load baseline is sub-microsecond.
    assert!(p50s[0] < 1.0, "baseline {:.2} µs", p50s[0]);
    // One BSG cannot saturate its own link's worth of egress: still fast.
    assert!(p50s[1] < 2.0, "1 BSG should barely hurt: {:.2} µs", p50s[1]);
    // From 2 on: one buffer per BSG, within the paper's 4.8–6.1 µs band.
    for n in 3..=5 {
        let delta = p50s[n] - p50s[n - 1];
        assert!(
            (3.5..7.5).contains(&delta),
            "per-BSG increment at n={n} is {delta:.2} µs (series {p50s:?})"
        );
    }
    assert!(
        (18.0..32.0).contains(&p50s[5]),
        "5-BSG latency {:.1} µs outside the paper's magnitude",
        p50s[5]
    );
}

#[test]
fn eq2_predicts_the_waiting_slope() {
    // The measured per-BSG increment should match Eq. 2 with the
    // configured buffer size.
    let cfg = ClusterConfig::hardware();
    let tau = fcfs_waiting_time(1, cfg.switch.input_buffer_bytes, cfg.link.data_rate());
    let two = converged(&spec(cfg.clone(), 2), 2, 4096, 1, true, QosMode::SharedSl);
    let four = converged(&spec(cfg, 2), 4, 4096, 1, true, QosMode::SharedSl);
    let slope = (four.lsg.unwrap().summary.p50_us() - two.lsg.unwrap().summary.p50_us()) / 2.0;
    let predicted = tau.as_us_f64();
    assert!(
        (slope - predicted).abs() / predicted < 0.25,
        "measured slope {slope:.2} µs/BSG vs Eq. 2's {predicted:.2}"
    );
}

#[test]
fn total_bandwidth_stays_high_but_droops() {
    // Paper Fig. 7b: 52.2 → 48.4 Gbps from 1 → 5 BSGs.
    let one = converged(
        &spec(ClusterConfig::hardware(), 3),
        1,
        4096,
        1,
        false,
        QosMode::SharedSl,
    );
    let five = converged(
        &spec(ClusterConfig::hardware(), 3),
        5,
        4096,
        1,
        false,
        QosMode::SharedSl,
    );
    assert!(one.total_gbps > 50.0, "1 BSG total {:.1}", one.total_gbps);
    assert!(five.total_gbps > 45.0, "5 BSG total {:.1}", five.total_gbps);
    assert!(
        one.total_gbps - five.total_gbps > 1.0,
        "converging flows should droop aggregate bandwidth: {:.1} vs {:.1}",
        one.total_gbps,
        five.total_gbps
    );
}

#[test]
fn bandwidth_is_shared_fairly_among_equals() {
    let out = converged(
        &spec(ClusterConfig::hardware(), 4),
        5,
        4096,
        1,
        false,
        QosMode::SharedSl,
    );
    let min = out.per_bsg_gbps.iter().cloned().fold(f64::MAX, f64::min);
    let max = out.per_bsg_gbps.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.15,
        "equal flows should share equally: {:?}",
        out.per_bsg_gbps
    );
}

#[test]
fn simulator_profile_fcfs_matches_hardware_trend() {
    // Paper Section VIII-B: "With the FCFS policy, the simulator …
    // behaves similar to the real switch."
    let hw = converged(
        &spec(ClusterConfig::hardware(), 5),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let sim = converged(
        &spec(ClusterConfig::omnet_simulator(), 5),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let hw_p50 = hw.lsg.unwrap().summary.p50_us();
    let sim_p50 = sim.lsg.unwrap().summary.p50_us();
    // Same mechanism, slightly smaller buffers in the simulator profile.
    assert!(
        (sim_p50 - hw_p50).abs() / hw_p50 < 0.35,
        "hardware {hw_p50:.1} µs vs simulator {sim_p50:.1} µs"
    );
}

#[test]
fn simulator_profile_has_no_tail() {
    // Paper: "unlike the real switch, simulator does not introduce
    // significant tail RTT" (no µarch model).
    let sim = converged(
        &spec(ClusterConfig::omnet_simulator(), 6),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let s = sim.lsg.unwrap().summary;
    let spread = s.p999_us() - s.p50_us();
    assert!(
        spread < 1.0,
        "simulator profile spread should be ~0.1 µs, got {spread:.2}"
    );

    let hw = converged(
        &spec(ClusterConfig::hardware(), 6),
        0,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let s = hw.lsg.unwrap().summary;
    assert!(
        s.p999_us() - s.p50_us() > 0.1,
        "hardware profile must show a zero-load tail"
    );
}

#[test]
fn round_robin_protects_single_hop_latency() {
    // Paper Fig. 10: RR bounds the LSG's wait to ~one packet per port.
    let fcfs = converged(
        &spec(
            ClusterConfig::omnet_simulator().with_policy(SchedPolicy::Fcfs),
            7,
        ),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let rr = converged(
        &spec(
            ClusterConfig::omnet_simulator().with_policy(SchedPolicy::RoundRobin),
            7,
        ),
        5,
        4096,
        1,
        true,
        QosMode::SharedSl,
    );
    let fcfs_p50 = fcfs.lsg.unwrap().summary.p50_us();
    let rr_p50 = rr.lsg.unwrap().summary.p50_us();
    assert!(
        fcfs_p50 / rr_p50 > 4.0,
        "RR should slash converged latency: FCFS {fcfs_p50:.1} vs RR {rr_p50:.1}"
    );
    assert!(rr_p50 < 4.0, "RR latency {rr_p50:.1} µs (paper: ~2.5)");
}
