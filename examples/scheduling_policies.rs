//! In-switch packet scheduling: FCFS vs Round-Robin, single- and
//! multi-hop (Figs. 10–11).
//!
//! Uses the `omnet_simulator` device profile (the paper's IB OMNeT++
//! model: no µarch jitter, 32 KB input buffers) to compare the two
//! readily available scheduling policies. RR looks like the fix — until a
//! second switch hop introduces head-of-line blocking on the trunk.
//!
//! Run with: `cargo run --release --example scheduling_policies`

use rperf::scenario::{converged, multihop, QosMode, RunSpec};
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn main() {
    let base = |policy| {
        RunSpec::new(ClusterConfig::omnet_simulator().with_policy(policy))
            .with_seed(11)
            .with_duration(SimDuration::from_ms(8))
    };

    println!("Single hop (5 × 4096 B BSGs + 1 LSG → one destination):");
    println!("  {:<14} {:>10} {:>10}", "policy", "p50 (µs)", "p99.9");
    for (name, policy) in [
        ("FCFS", SchedPolicy::Fcfs),
        ("Round-Robin", SchedPolicy::RoundRobin),
    ] {
        let out = converged(&base(policy), 5, 4096, 1, true, QosMode::SharedSl);
        let lsg = out.lsg.expect("LSG attached").summary;
        println!(
            "  {:<14} {:>10.2} {:>10.2}",
            name,
            lsg.p50_us(),
            lsg.p999_us()
        );
    }

    println!();
    println!("Two hops (2 BSGs + LSG upstream, 3 BSGs downstream):");
    println!("  {:<14} {:>10} {:>10}", "policy", "p50 (µs)", "p99.9");
    for (name, policy) in [
        ("FCFS", SchedPolicy::Fcfs),
        ("Round-Robin", SchedPolicy::RoundRobin),
    ] {
        let spec = RunSpec::new(ClusterConfig::omnet_simulator())
            .with_seed(11)
            .with_duration(SimDuration::from_ms(8));
        let out = multihop(&spec, policy);
        let lsg = out.lsg.expect("LSG attached").summary;
        println!(
            "  {:<14} {:>10.2} {:>10.2}",
            name,
            lsg.p50_us(),
            lsg.p999_us()
        );
    }

    println!();
    println!(
        "Take-aways (paper Section VIII-B): RR bounds the single-hop wait to\n\
         about one packet per contending port, but once the latency flow\n\
         shares the inter-switch trunk it queues in the same input buffer as\n\
         the bulk flows — head-of-line blocking that no output-side policy\n\
         can undo."
    );
}
