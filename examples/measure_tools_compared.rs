//! Why RPerf exists: the same fabric measured by three tools
//! (Figs. 4 and 6 side by side).
//!
//! Runs RPerf, a perftest-style software ping-pong, and a qperf-style
//! post-poll WRITE against an identical two-host rack, at 64 B and 4096 B.
//! The baselines report microseconds where the switch itself costs
//! nanoseconds — each for a different structural reason.
//!
//! Run with: `cargo run --release --example measure_tools_compared`

use rperf::scenario::{one_to_one_perftest, one_to_one_qperf, one_to_one_rperf, RunSpec};
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn main() {
    let spec = RunSpec::new(ClusterConfig::hardware())
        .with_seed(5)
        .with_duration(SimDuration::from_ms(5));

    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "payload", "RPerf p50", "Perftest p50", "QPerf avg"
    );
    for payload in [64u64, 4096] {
        let rp = one_to_one_rperf(&spec, true, payload).summary;
        let pf = one_to_one_perftest(&spec, payload);
        let qp = one_to_one_qperf(&spec, payload);
        println!(
            "{:<10} {:>13.3} µs {:>13.3} µs {:>13.3} µs",
            format!("{payload} B"),
            rp.p50_us(),
            pf.p50_us(),
            qp.avg_us
        );
    }
    println!();
    println!(
        "Why they differ (paper Section III):\n\
         * Perftest's pong is generated in software, so the measurement\n\
           includes remote-side software and both hosts' PCIe transactions.\n\
         * QPerf removes the remote software but its WRITE is acknowledged\n\
           only after the remote payload DMA, and its timestamping is heavy.\n\
         * RPerf's RC SEND is ACKed by the remote NIC before any remote\n\
           PCIe work, and the paired loopback SEND measures — and cancels —\n\
           every local-side cost (Eq. 1: RTT = T_W − T_L)."
    );
}
