//! InfiniBand QoS: dedicated service levels protect latency — until
//! someone games them (Figs. 12–13).
//!
//! Runs the four setups of the paper's Section VIII-C:
//!   1. no bulk traffic (baseline),
//!   2. everything sharing SL0/VL0,
//!   3. the latency flow on a dedicated high-priority SL1/VL1,
//!   4. the same, plus a bandwidth hog *pretending* to be latency-
//!      sensitive by bursting small messages on SL1.
//!
//! Run with: `cargo run --release --example qos_isolation`

use rperf::scenario::{converged, QosMode, RunSpec};
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn main() {
    let spec = RunSpec::new(ClusterConfig::hardware())
        .with_seed(3)
        .with_duration(SimDuration::from_ms(8));

    let setups: [(&str, usize, QosMode); 4] = [
        ("no BSGs (baseline)", 0, QosMode::SharedSl),
        ("shared SL", 5, QosMode::SharedSl),
        ("dedicated SL", 5, QosMode::DedicatedSl),
        (
            "dedicated SL + pretend LSG",
            4,
            QosMode::DedicatedSlWithPretend,
        ),
    ];

    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "setup", "p50 (µs)", "p99.9", "total Gbps"
    );
    for (name, bsgs, qos) in setups {
        let out = converged(&spec, bsgs, 4096, 1, true, qos);
        let lsg = out.lsg.expect("LSG attached").summary;
        println!(
            "{:<28} {:>10.2} {:>10.2} {:>12.1}",
            name,
            lsg.p50_us(),
            lsg.p999_us(),
            out.total_gbps
        );
        if let Some(pretend) = out.pretend_gbps {
            let honest_avg: f64 =
                out.per_bsg_gbps.iter().sum::<f64>() / out.per_bsg_gbps.len() as f64;
            println!(
                "{:<28} pretender gets {pretend:.1} Gbps vs {honest_avg:.1} per honest \
                 BSG ({:.1}× an honest share)",
                "",
                pretend / honest_avg
            );
        }
    }
    println!();
    println!(
        "Take-aways (paper Section VIII-C): a dedicated SL/VL restores the\n\
         latency flow to near-baseline without costing bulk bandwidth — but\n\
         a flow that mislabels itself latency-sensitive both hurts the real\n\
         latency flow and grabs ~3× an honest bandwidth share."
    );
}
