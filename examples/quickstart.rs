//! Quickstart: measure the RTT through a simulated InfiniBand switch with
//! RPerf.
//!
//! Builds a two-host rack (one generator, one destination) behind the
//! calibrated SX6012-class switch model, runs RPerf's loopback-subtraction
//! methodology for a few simulated milliseconds and prints the RTT
//! percentiles — the Fig. 4 measurement in one page of code.
//!
//! Run with: `cargo run --release --example quickstart`

use rperf::{RPerf, RPerfConfig};
use rperf_fabric::{Fabric, Sim};
use rperf_model::ClusterConfig;
use rperf_sim::{SimDuration, SimTime};
use rperf_workloads::Sink;

fn main() {
    // The calibrated hardware profile: 56 Gbps FDR links, ConnectX-4-class
    // RNICs, cut-through switch with ~200 ns port-to-port latency.
    let cluster = ClusterConfig::hardware();

    // Two hosts behind the ToR switch; node 0 measures, node 1 sinks.
    let fabric = Fabric::single_switch(cluster, 2, /* seed */ 42);
    let mut sim = Sim::new(fabric);

    sim.add_app(
        0,
        Box::new(RPerf::new(
            RPerfConfig::new(/* target node */ 1)
                .with_payload(64)
                .with_warmup(SimDuration::from_us(100)),
        )),
    );
    sim.add_app(1, Box::new(Sink::new()));

    sim.start();
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(5));

    let report = sim.app_as::<RPerf>(0).report();
    println!("RPerf probes completed : {}", report.iterations);
    println!("clock-order inversions : {}", report.inversions);
    println!(
        "RTT through the switch : p50 = {:.0} ns, p99 = {:.0} ns, p99.9 = {:.0} ns",
        report.summary.p50_ns(),
        report.summary.p99_ps as f64 / 1e3,
        report.summary.p999_ns()
    );
    println!();
    println!(
        "The Mellanox spec promises ~200 ns port-to-port (≈400 ns RTT);\n\
         RPerf resolves that — plus the µarch tail — because loopback\n\
         subtraction removes every local-side overhead from the sample."
    );
}
