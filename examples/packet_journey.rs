//! Where has my time gone? Trace one probe's journey through the fabric.
//!
//! Enables packet tracing on a three-switch chain, fires a handful of
//! RPerf probes and prints each hop of the first measured probe with
//! inter-hop timing — the per-packet visibility that motivates precision
//! tools like RPerf (the paper's Section III cites exactly this
//! "where has my time gone?" question).
//!
//! Run with: `cargo run --release --example packet_journey`

use rperf::{RPerf, RPerfConfig};
use rperf_fabric::{Fabric, Sim, TraceEvent};
use rperf_model::ClusterConfig;
use rperf_sim::{SimDuration, SimTime};
use rperf_subnet::TopologySpec;
use rperf_workloads::Sink;

fn main() {
    // LSG on switch 0, destination on switch 2: every probe crosses three
    // switches.
    let topo = TopologySpec::chain(3, &[1, 0, 1]);
    let fabric = Fabric::from_spec(ClusterConfig::hardware(), &topo, 99);
    let dest = fabric.nodes() - 1;

    let mut sim = Sim::new(fabric);
    sim.enable_trace(10_000);
    sim.add_app(
        0,
        Box::new(RPerf::new(
            RPerfConfig::new(dest).with_warmup(SimDuration::ZERO),
        )),
    );
    sim.add_app(dest, Box::new(Sink::new()));
    sim.start();
    sim.run_until(SimTime::from_us(50));

    let trace = sim.trace().expect("tracing enabled");
    println!(
        "trace: {} records ({} dropped)\n",
        trace.records().len(),
        trace.dropped()
    );

    // The first packet that actually crossed a switch (the over-the-wire
    // probe; loopbacks never appear in the trace).
    let probe = trace
        .packets()
        .into_iter()
        .find(|&p| trace.hop_count(p) > 0)
        .expect("a probe crossed the fabric");

    println!("journey of {probe:?} (64 B over-the-wire probe):");
    let journey = trace.journey(probe);
    let mut last: Option<SimTime> = None;
    for record in &journey {
        let delta = match last {
            Some(prev) => format!("+{}", record.at - prev),
            None => "".into(),
        };
        match record.event {
            TraceEvent::SwitchIngress {
                switch, ingress, ..
            } => {
                println!(
                    "  {:>12}  switch {switch} ingress {ingress}  {delta}",
                    record.at.to_string()
                );
            }
            TraceEvent::HostArrival { node, .. } => {
                println!(
                    "  {:>12}  host {node} (last bit)       {delta}",
                    record.at.to_string()
                );
            }
            TraceEvent::Completion { .. } => {}
        }
        last = Some(record.at);
    }
    println!();
    println!(
        "Each switch-to-switch gap is the cut-through pipeline (~200 ns)\n\
         plus propagation; the final gap adds the packet's own\n\
         serialization, which only the last hop pays in full."
    );

    let report = sim.app_as::<RPerf>(0).report();
    println!(
        "\nRPerf across 3 switches: p50 = {:.2} µs over {} probes",
        report.summary.p50_us(),
        report.iterations
    );
}
