//! Converged traffic: the paper's headline result (Fig. 7).
//!
//! A rack where bulk flows and a latency-sensitive flow share one
//! destination. Sweeps the number of 4096-byte bandwidth generators from
//! 0 to 5 and prints what happens to the latency-sensitive flow and to
//! aggregate throughput: you can have latency or bandwidth — not both.
//!
//! Run with: `cargo run --release --example converged_traffic`

use rperf::scenario::{converged, QosMode, RunSpec};
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn main() {
    let spec = RunSpec::new(ClusterConfig::hardware())
        .with_seed(7)
        .with_duration(SimDuration::from_ms(8));

    println!("| BSGs | LSG p50 (µs) | LSG p99.9 (µs) | total BSG Gbps |");
    println!("|------|--------------|----------------|----------------|");
    let mut previous_p50 = None;
    for n_bsgs in 0..=5 {
        let out = converged(&spec, n_bsgs, 4096, 1, true, QosMode::SharedSl);
        let lsg = out.lsg.expect("LSG attached").summary;
        println!(
            "| {n_bsgs}    | {:12.2} | {:14.2} | {:14.1} |",
            lsg.p50_us(),
            lsg.p999_us(),
            out.total_gbps
        );
        if let Some(prev) = previous_p50 {
            let delta: f64 = lsg.p50_us() - prev;
            if delta > 2.0 {
                // Eq. 2 of the paper: one more full input buffer ahead of
                // every latency-sensitive packet.
                eprintln!(
                    "  (+{delta:.1} µs — FCFS makes the LSG wait behind \
                     another full input buffer)"
                );
            }
        }
        previous_p50 = Some(lsg.p50_us());
    }
    println!();
    println!(
        "Take-away (paper Section VII): LSG latency grows ~linearly with\n\
         the number of bandwidth flows while their aggregate bandwidth\n\
         stays high — the switch provides no latency isolation."
    );
}
