//! Published reference values, transcribed from the paper's text and
//! figures, for paper-vs-measured comparison in EXPERIMENTS.md.
//!
//! Values quoted in the running text are exact; values only visible in a
//! plot are approximate (marked in comments). Units follow the paper:
//! nanoseconds for Fig. 4, microseconds elsewhere, Gbps for bandwidth.

/// One published latency point: `(x, p50, p99.9)`.
pub type LatPoint = (f64, f64, f64);

/// Fig. 4 — RPerf RTT in **ns** vs payload, without the switch.
pub const FIG4_NO_SWITCH_NS: &[LatPoint] = &[(64.0, 20.0, 47.0), (4096.0, 76.0, 85.0)];

/// Fig. 4 — RPerf RTT in **ns** vs payload, through the switch.
pub const FIG4_WITH_SWITCH_NS: &[LatPoint] = &[(64.0, 432.0, 625.0), (4096.0, 498.0, 688.0)];

/// Fig. 5 — goodput in Gbps `(payload, without switch, with switch)`.
pub const FIG5_GBPS: &[(f64, f64, f64)] = &[
    (64.0, 4.1, 3.9),
    (1024.0, 51.8, 51.2), // "51.8 to 53 Gbps" band; with-switch ≈ −0.6 (plot)
    (4096.0, 53.0, 52.2),
];

/// Fig. 6 — Perftest RTT in **µs** through the switch.
pub const FIG6_PERFTEST_US: &[LatPoint] = &[(64.0, 2.20, 4.11), (4096.0, 5.46, 9.51)];

/// Fig. 6 — QPerf median RTT in **µs** (the tool reports no tail).
pub const FIG6_QPERF_US: &[(f64, f64)] = &[(64.0, 2.82), (4096.0, 5.85)];

/// Fig. 7a — LSG RTT in **µs** vs number of BSGs (hardware, 4096 B BSGs).
pub const FIG7A_US: &[LatPoint] = &[
    (1.0, 0.6, 0.9),
    (2.0, 5.2, 5.7),
    (3.0, 10.7, 12.6),
    // 4 and 5 BSGs: text gives only the increment (4.8–6.1 µs per BSG).
    (4.0, 16.0, 18.0), // approximate (plot)
    (5.0, 21.5, 24.0), // approximate (plot)
];

/// Fig. 7b — total BSG goodput in Gbps vs number of BSGs.
pub const FIG7B_GBPS: &[(f64, f64)] = &[(1.0, 52.2), (2.0, 51.1), (5.0, 48.4)];

/// Fig. 8 — LSG RTT in **µs** vs the BSGs' payload size (5 BSGs).
pub const FIG8_US: &[LatPoint] = &[
    (64.0, 0.4, 0.6),
    (128.0, 0.6, 0.9),
    (512.0, 20.0, 20.6),
    (4096.0, 26.3, 28.2),
];

/// Fig. 9 — total BSG goodput vs the BSGs' payload size (5 BSGs), Gbps.
/// The text quotes utilization of the 56 Gbps destination port.
pub const FIG9_GBPS: &[(f64, f64)] = &[
    (64.0, 0.35 * 56.0),
    (128.0, 0.70 * 56.0),
    (512.0, 0.88 * 56.0),
    (4096.0, 0.93 * 56.0),
];

/// Fig. 10 — simulator LSG RTT in **µs** vs number of BSGs, FCFS policy.
pub const FIG10_FCFS_US: &[LatPoint] = &[
    (0.0, 0.4, 0.4),
    (1.0, 0.6, 0.6),
    (2.0, 4.5, 4.6),
    (5.0, 18.2, 18.3),
];

/// Fig. 10 — simulator LSG RTT in **µs**, Round-Robin policy.
pub const FIG10_RR_US: &[LatPoint] = &[(0.0, 0.4, 0.4), (1.0, 0.6, 0.6), (5.0, 2.5, 2.6)];

/// Fig. 11 — multi-hop LSG RTT in **µs** `(policy, p50, p99.9)`.
pub const FIG11_US: &[(&str, f64, f64)] = &[("FCFS", 18.4, 18.5), ("RR", 14.5, 14.9)];

/// Fig. 12 — LSG RTT in **µs** per QoS setup.
pub const FIG12_US: &[(&str, f64, f64)] = &[
    ("No BSGs", 0.4, 0.6),
    ("Shared SL", 20.2, 22.1),
    ("Dedicated SL", 0.7, 1.1),
    ("Dedicated SL + Pretend LSG", 8.5, 9.1),
];

/// Fig. 13 — per-source goodput in Gbps under the gaming experiment.
pub const FIG13_PRETEND_GBPS: f64 = 21.5;
/// Fig. 13 — each honest BSG's share when gamed (band).
pub const FIG13_HONEST_GBPS: (f64, f64) = (6.7, 7.0);
/// Fig. 13 — totals `(dedicated + pretend, shared)`.
pub const FIG13_TOTALS_GBPS: (f64, f64) = (48.7, 48.4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_internally_consistent() {
        // Monotone latency growth with BSG count.
        for pair in FIG7A_US.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
        // FCFS is always worse than RR at 5 BSGs in the simulator.
        assert!(FIG10_FCFS_US.last().unwrap().1 > FIG10_RR_US.last().unwrap().1);
        // Gaming grabs about 3× an honest share (the paper's headline).
        assert!(FIG13_PRETEND_GBPS / FIG13_HONEST_GBPS.1 > 2.5);
    }
}
