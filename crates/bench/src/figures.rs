//! One generator per paper figure — each figure is **data**: a scenario
//! table from [`rperf::scenario::specs`] swept over its parameter axis.
//!
//! Every figure is a sweep of independent `(point, seed)` simulations,
//! expressed through [`sweep_over_seeds`]: the figure supplies a closure
//! that executes the scenario spec for one `(param, seed)` pair plus a
//! merge that folds the per-seed results into one plotted point. The
//! sweep fans the pairs across `effort.jobs` worker threads and hands the
//! merge its results in seed order, so the emitted series are bit-identical
//! to a serial run for any worker count. All execution goes through the
//! one generic [`execute`] path; nothing here hand-builds a fabric.

use rperf::scenario::{converged_outcome, specs, QosMode};
use rperf::{execute, DeviceProfile, ScenarioOutcome, ScenarioSpec};
use rperf_model::config::SchedPolicy;
use rperf_stats::{Figure, Series};

use crate::{mean, sweep_over_seeds, Effort};

/// The payload sweep used throughout the paper: 64 B – 4096 B.
pub const PAYLOADS: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Executes a scenario table with the figure's measurement window (scaled
/// by the effort level) and the given seed.
///
/// `--shards` is a global knob over scenarios of very different sizes, so
/// it is clamped to each table's device count (specs reject over-sharding
/// outright; a figure sweep just uses as many domains as the fabric has).
fn run(table: ScenarioSpec, effort: &Effort, base_ms: f64, seed: u64) -> ScenarioOutcome {
    let devices = table.topology.hosts() + table.topology.switches();
    execute(
        &table
            .with_duration(effort.window(base_ms))
            .with_shards(effort.shards.min(devices)),
        seed,
    )
}

/// Fig. 4 — RPerf RTT vs payload size, with and without the switch
/// (p50 and p99.9, in **ns**).
pub fn fig4(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig4",
        "RTT calculated by RPerf for different packet sizes with and without the switch",
        "Payload Size (B)",
        "RTT (ns)",
    );
    let mut s50_no = Series::new("50th (w/o switch)");
    let mut s999_no = Series::new("99.9th (w/o switch)");
    let mut s50_sw = Series::new("50th (w/ switch)");
    let mut s999_sw = Series::new("99.9th (w/ switch)");

    let params: Vec<(u64, bool)> = PAYLOADS
        .iter()
        .flat_map(|&p| [(p, false), (p, true)])
        .collect();
    let points = sweep_over_seeds(
        effort,
        &params,
        |&(payload, through), seed| {
            let out = run(specs::one_to_one_rperf(through, payload), effort, 8.0, seed);
            let summary = out.rperf(0).expect("rperf on node 0").summary;
            (summary.p50_ns(), summary.p999_ns())
        },
        |&(payload, through), per_seed| {
            let (p50s, p999s): (Vec<f64>, Vec<f64>) = per_seed.into_iter().unzip();
            (payload, through, mean(&p50s), mean(&p999s))
        },
    );
    for (payload, through, p50, p999) in points {
        let x = payload as f64;
        let (s50, s999) = if through {
            (&mut s50_sw, &mut s999_sw)
        } else {
            (&mut s50_no, &mut s999_no)
        };
        s50.push(x, p50);
        s999.push(x, p999);
    }

    fig.add_series(s50_no);
    fig.add_series(s999_no);
    fig.add_series(s50_sw);
    fig.add_series(s999_sw);
    fig
}

/// Fig. 5 — one-to-one BSG goodput vs payload size, with and without the
/// switch (Gbps).
pub fn fig5(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig5",
        "Bandwidth for different packet sizes with and without the switch",
        "Payload Size (B)",
        "Bandwidth (Gbps)",
    );
    let mut no_sw = Series::new("w/o switch");
    let mut with_sw = Series::new("w/ switch");

    let params: Vec<(u64, bool)> = PAYLOADS
        .iter()
        .flat_map(|&p| [(p, false), (p, true)])
        .collect();
    let points = sweep_over_seeds(
        effort,
        &params,
        |&(payload, through), seed| {
            run(
                specs::one_to_one_bandwidth(through, payload),
                effort,
                4.0,
                seed,
            )
            .gbps(0)
            .expect("bsg on node 0")
        },
        |&(payload, through), gbps| (payload, through, mean(&gbps)),
    );
    for (payload, through, gbps) in points {
        let series = if through { &mut with_sw } else { &mut no_sw };
        series.push(payload as f64, gbps);
    }

    fig.add_series(no_sw);
    fig.add_series(with_sw);
    fig
}

/// Fig. 6 — end-to-end RTT reported by the baseline tools, through the
/// switch (µs): Perftest p50/p99.9 and QPerf average.
pub fn fig6(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "End-to-end RTT calculated by Perftest and Qperf with the switch",
        "Payload Size (B)",
        "RTT (us)",
    );
    let mut pf50 = Series::new("50th (Perftest)");
    let mut pf999 = Series::new("99.9th (Perftest)");
    let mut qp50 = Series::new("50th (Qperf)");

    let points = sweep_over_seeds(
        effort,
        &PAYLOADS,
        |&payload, seed| {
            let pf = run(specs::one_to_one_perftest(payload), effort, 8.0, seed);
            let pf = pf.latency(0).expect("perftest client on node 0");
            let qp = run(specs::one_to_one_qperf(payload), effort, 8.0, seed);
            let qp = *qp.qperf(0).expect("qperf client on node 0");
            (pf.p50_us(), pf.p999_us(), qp.avg_us)
        },
        |&payload, per_seed| {
            let n = per_seed.len();
            let mut p50s = Vec::with_capacity(n);
            let mut p999s = Vec::with_capacity(n);
            let mut avgs = Vec::with_capacity(n);
            for (a, b, c) in per_seed {
                p50s.push(a);
                p999s.push(b);
                avgs.push(c);
            }
            (payload, mean(&p50s), mean(&p999s), mean(&avgs))
        },
    );
    for (payload, p50, p999, avg) in points {
        let x = payload as f64;
        pf50.push(x, p50);
        pf999.push(x, p999);
        qp50.push(x, avg);
    }

    fig.add_series(pf50);
    fig.add_series(pf999);
    fig.add_series(qp50);
    fig
}

/// The per-seed result of one converged-traffic run, as the LSG-centric
/// figures consume it.
struct ConvergedPoint {
    p50_us: f64,
    p999_us: f64,
    total_gbps: f64,
}

/// Executes a converged scenario table and extracts the LSG-centric view.
fn converged_point(
    table: ScenarioSpec,
    effort: &Effort,
    base_ms: f64,
    seed: u64,
) -> ConvergedPoint {
    let out = converged_outcome(&run(table, effort, base_ms, seed));
    let lsg = out.lsg.expect("LSG present").summary;
    ConvergedPoint {
        p50_us: lsg.p50_us(),
        p999_us: lsg.p999_us(),
        total_gbps: out.total_gbps,
    }
}

fn merge_converged(per_seed: Vec<ConvergedPoint>) -> (f64, f64, f64) {
    let n = per_seed.len();
    let mut p50s = Vec::with_capacity(n);
    let mut p999s = Vec::with_capacity(n);
    let mut bws = Vec::with_capacity(n);
    for p in per_seed {
        p50s.push(p.p50_us);
        p999s.push(p.p999_us);
        bws.push(p.total_gbps);
    }
    (mean(&p50s), mean(&p999s), mean(&bws))
}

/// Figs. 7a and 7b — converged traffic on the hardware profile: LSG RTT
/// (µs) and total BSG goodput (Gbps) vs the number of 4096 B BSGs.
pub fn fig7(effort: &Effort) -> (Figure, Figure) {
    let mut fig_a = Figure::new(
        "fig7a",
        "RTT of LSG under converged traffic",
        "Number of BSGs",
        "RTT of LSG (us)",
    );
    let mut fig_b = Figure::new(
        "fig7b",
        "Total bandwidth of all BSGs under converged traffic",
        "Number of BSGs",
        "Total Bandwidth (Gbps)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let mut total = Series::new("total");

    let params: Vec<usize> = (0..=5).collect();
    let points = sweep_over_seeds(
        effort,
        &params,
        |&n, seed| {
            converged_point(
                specs::converged(n, 4096, 1, true, QosMode::SharedSl),
                effort,
                40.0,
                seed,
            )
        },
        |&n, per_seed| (n, merge_converged(per_seed)),
    );
    for (n, (p50, p999, bw)) in points {
        s50.push(n as f64, p50);
        s999.push(n as f64, p999);
        if n >= 1 {
            total.push(n as f64, bw);
        }
    }

    fig_a.add_series(s50);
    fig_a.add_series(s999);
    fig_b.add_series(total);
    (fig_a, fig_b)
}

/// Figs. 8 and 9 — five BSGs with varying payload (batched for small
/// payloads) plus the LSG: LSG RTT (µs) and total BSG goodput (Gbps).
pub fn fig8_fig9(effort: &Effort) -> (Figure, Figure) {
    let mut fig8 = Figure::new(
        "fig8",
        "RTT of the LSG as a function of the BSGs' message size",
        "Payload Size of BSGs (B)",
        "RTT of LSG (us)",
    );
    let mut fig9 = Figure::new(
        "fig9",
        "Total bandwidth achieved by BSGs as a function of the message size",
        "Payload Size of BSGs (B)",
        "Total Bandwidth (Gbps)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let mut total = Series::new("total");

    let points = sweep_over_seeds(
        effort,
        &PAYLOADS,
        |&payload, seed| {
            // "We also use batching with small payload sizes to improve the
            // bandwidth utilization."
            let batch = if payload <= 1024 { 16 } else { 1 };
            converged_point(
                specs::converged(5, payload, batch, true, QosMode::SharedSl),
                effort,
                15.0,
                seed,
            )
        },
        |&payload, per_seed| (payload, merge_converged(per_seed)),
    );
    for (payload, (p50, p999, bw)) in points {
        s50.push(payload as f64, p50);
        s999.push(payload as f64, p999);
        total.push(payload as f64, bw);
    }

    fig8.add_series(s50);
    fig8.add_series(s999);
    fig9.add_series(total);
    (fig8, fig9)
}

/// Fig. 10 — the IB simulator profile: LSG RTT vs number of BSGs under
/// FCFS and Round-Robin scheduling (µs).
pub fn fig10(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Impact of the number of BSGs on RTT of LSG in the simulator",
        "Number of BSGs",
        "RTT of LSG (us)",
    );
    for policy in [SchedPolicy::Fcfs, SchedPolicy::RoundRobin] {
        let name = match policy {
            SchedPolicy::Fcfs => "FCFS",
            SchedPolicy::RoundRobin => "RR",
            SchedPolicy::FairShare => "FairShare",
        };
        let mut s50 = Series::new(format!("50th ({name})"));
        let mut s999 = Series::new(format!("99.9th ({name})"));

        let params: Vec<usize> = (0..=5).collect();
        let points = sweep_over_seeds(
            effort,
            &params,
            |&n, seed| {
                converged_point(
                    specs::converged(n, 4096, 1, true, QosMode::SharedSl)
                        .with_profile(DeviceProfile::OmnetSimulator)
                        .with_policy(policy),
                    effort,
                    40.0,
                    seed,
                )
            },
            |&n, per_seed| (n, merge_converged(per_seed)),
        );
        for (n, (p50, p999, _)) in points {
            s50.push(n as f64, p50);
            s999.push(n as f64, p999);
        }

        fig.add_series(s50);
        fig.add_series(s999);
    }
    fig
}

/// Fig. 11 — the multi-hop topology: LSG RTT under FCFS vs RR (µs).
pub fn fig11(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "RTT of LSG in a multi-hop setup",
        "Packet Scheduling Policy (0 = FCFS, 1 = RR)",
        "RTT of LSG (us)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");

    let params = [(0.0, SchedPolicy::Fcfs), (1.0, SchedPolicy::RoundRobin)];
    let points = sweep_over_seeds(
        effort,
        &params,
        |&(_, policy), seed| {
            let out = run(
                specs::multihop(policy).with_profile(DeviceProfile::OmnetSimulator),
                effort,
                40.0,
                seed,
            );
            let lsg = converged_outcome(&out).lsg.expect("LSG present").summary;
            (lsg.p50_us(), lsg.p999_us())
        },
        |&(x, _), per_seed| {
            let (p50s, p999s): (Vec<f64>, Vec<f64>) = per_seed.into_iter().unzip();
            (x, mean(&p50s), mean(&p999s))
        },
    );
    for (x, p50, p999) in points {
        s50.push(x, p50);
        s999.push(x, p999);
    }

    fig.add_series(s50);
    fig.add_series(s999);
    fig
}

/// The four QoS setups of Fig. 12.
pub const FIG12_SETUPS: [&str; 4] = [
    "No BSGs",
    "Shared SL",
    "Dedicated SL",
    "Dedicated SL + Pretend LSG",
];

/// Fig. 12 — LSG RTT across QoS setups (x = setup index into
/// [`FIG12_SETUPS`], µs).
pub fn fig12(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "RTT of the real LSG in different setups",
        "Setup",
        "RTT of LSG (us)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let setups: [(usize, QosMode); 4] = [
        (0, QosMode::SharedSl), // no BSGs
        (5, QosMode::SharedSl),
        (5, QosMode::DedicatedSl),
        (5, QosMode::DedicatedSlWithPretend),
    ];

    let points = sweep_over_seeds(
        effort,
        &setups,
        |&(n_bsgs, qos), seed| {
            // The gaming experiment keeps five sources total: four honest
            // BSGs plus the pretend LSG.
            let honest = if qos == QosMode::DedicatedSlWithPretend {
                4
            } else {
                n_bsgs
            };
            converged_point(
                specs::converged(honest, 4096, 1, true, qos),
                effort,
                30.0,
                seed,
            )
        },
        |_, per_seed| merge_converged(per_seed),
    );
    for (x, (p50, p999, _)) in points.into_iter().enumerate() {
        s50.push(x as f64, p50);
        s999.push(x as f64, p999);
    }

    fig.add_series(s50);
    fig.add_series(s999);
    fig
}

/// Fig. 13 — per-source goodput under the gaming experiment vs the shared
/// baseline (x = 0 for "Dedicated SL + Pretend LSG", 1 for "Shared SL").
pub fn fig13(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig13",
        "Total bandwidth achieved by BSGs under converged traffic (gaming)",
        "Setup (0 = Dedicated SL + Pretend LSG, 1 = Shared SL)",
        "Bandwidth (Gbps)",
    );
    let mut series: Vec<Series> = (1..=5).map(|i| Series::new(format!("BSG {i}"))).collect();
    let mut total = Series::new("total");

    // x = 0: 4 honest BSGs + the pretend LSG (reported as "BSG 1", the
    // paper's convention of listing the gamer first). x = 1: five honest
    // BSGs sharing SL0.
    let setups = [
        (0.0, QosMode::DedicatedSlWithPretend),
        (1.0, QosMode::SharedSl),
    ];
    let points = sweep_over_seeds(
        effort,
        &setups,
        |&(_, qos), seed| {
            let gaming = qos == QosMode::DedicatedSlWithPretend;
            let n_bsgs = if gaming { 4 } else { 5 };
            let out = converged_outcome(&run(
                specs::converged(n_bsgs, 4096, 1, true, qos),
                effort,
                30.0,
                seed,
            ));
            let mut shares = [0.0f64; 5];
            if gaming {
                shares[0] = out.pretend_gbps.expect("gaming run");
                for (i, &g) in out.per_bsg_gbps.iter().enumerate() {
                    shares[i + 1] = g;
                }
            } else {
                for (i, &g) in out.per_bsg_gbps.iter().enumerate() {
                    shares[i] = g;
                }
            }
            (shares, out.total_gbps)
        },
        |&(x, _), per_seed| {
            let k = per_seed.len() as f64;
            let mut shares = [0.0f64; 5];
            let mut tot = 0.0;
            for (s, t) in per_seed {
                for (acc, v) in shares.iter_mut().zip(s) {
                    *acc += v;
                }
                tot += t;
            }
            for acc in &mut shares {
                *acc /= k;
            }
            (x, shares, tot / k)
        },
    );
    for (x, shares, tot) in points {
        for (s, v) in series.iter_mut().zip(shares) {
            s.push(x, v);
        }
        total.push(x, tot);
    }

    for s in series {
        fig.add_series(s);
    }
    fig.add_series(total);
    fig
}

/// The hop depths `fig_clos` probes: same edge switch, same pod, and
/// cross-pod in a 3-tier `k = 4` fat-tree.
pub const CLOS_HOPS: [u32; 3] = [1, 3, 5];

/// `fig_clos` — the Clos scale-out experiment: RTT of an RPerf victim
/// flow crossing 1, 3 or 5 switches of a routed 3-tier `k = 4` fat-tree
/// while 0–4 bulk flows converge on the victim's destination from remote
/// edges. Answers the ROADMAP scale-out question: is the ~5 µs-per-BSG
/// slope measured through one switch additive across hops, or does the
/// last-hop bottleneck dominate regardless of path length?
pub fn fig_clos(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig_clos",
        "RTT of a victim flow at 1/3/5 fat-tree hops under converging BSGs",
        "Number of BSGs",
        "RTT of victim (us)",
    );
    const MAX_BSGS: usize = 4;
    let params: Vec<(u32, usize)> = CLOS_HOPS
        .iter()
        .flat_map(|&h| (0..=MAX_BSGS).map(move |n| (h, n)))
        .collect();
    let points = sweep_over_seeds(
        effort,
        &params,
        |&(hops, n), seed| {
            let out = run(specs::clos_victim(hops, n), effort, 10.0, seed);
            let victim = converged_outcome(&out).lsg.expect("victim present").summary;
            (victim.p50_us(), victim.p999_us())
        },
        |&(hops, n), per_seed| {
            let (p50s, p999s): (Vec<f64>, Vec<f64>) = per_seed.into_iter().unzip();
            (hops, n, mean(&p50s), mean(&p999s))
        },
    );
    let mut by_hop: Vec<(Series, Series)> = CLOS_HOPS
        .iter()
        .map(|h| {
            let unit = if *h == 1 { "hop" } else { "hops" };
            (
                Series::new(format!("50th ({h} {unit})")),
                Series::new(format!("99.9th ({h} {unit})")),
            )
        })
        .collect();
    for (hops, n, p50, p999) in points {
        let idx = CLOS_HOPS.iter().position(|&h| h == hops).unwrap();
        by_hop[idx].0.push(n as f64, p50);
        by_hop[idx].1.push(n as f64, p999);
    }
    for (s50, s999) in by_hop {
        fig.add_series(s50);
        fig.add_series(s999);
    }
    fig
}

/// The 128-host scale row of the `report` binary (not a paper figure
/// and not addressable through [`by_id`]): victim RTT across the spine
/// of a `k = 8`, `o = 2` leaf–spine — 128 hosts, 16 twelve-port leaves,
/// 4 sixteen-port spines — while 0/4/8 bulk flows converge on the
/// victim's destination from remote leaves. Exercises the largest
/// routed fabric in the suite end to end and feeds its events/sec into
/// BENCH_report.json.
pub fn fattree128(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fattree128",
        "Victim RTT across a 128-host leaf-spine (k=8, o=2) under incast",
        "Number of BSGs",
        "RTT of victim (us)",
    );
    const BSGS: [usize; 3] = [0, 4, 8];
    let points = sweep_over_seeds(
        effort,
        &BSGS,
        |&n, seed| {
            let out = run(specs::fattree_incast(8, 2, 2, n), effort, 10.0, seed);
            let victim = converged_outcome(&out).lsg.expect("victim present").summary;
            (victim.p50_us(), victim.p999_us())
        },
        |&n, per_seed| {
            let (p50s, p999s): (Vec<f64>, Vec<f64>) = per_seed.into_iter().unzip();
            (n, mean(&p50s), mean(&p999s))
        },
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    for (n, p50, p999) in points {
        s50.push(n as f64, p50);
        s999.push(n as f64, p999);
    }
    fig.add_series(s50);
    fig.add_series(s999);
    fig
}

/// Runs the generator(s) behind one figure id (`"4"` … `"13"`, or
/// `"clos"` for the fat-tree scale-out experiment).
///
/// Figure 7 produces two figures (7a and 7b) from one sweep; 8 and 9 share
/// a sweep but are addressed separately. Returns `None` for unknown ids.
pub fn by_id(id: &str, effort: &Effort) -> Option<Vec<Figure>> {
    Some(match id {
        "4" => vec![fig4(effort)],
        "5" => vec![fig5(effort)],
        "6" => vec![fig6(effort)],
        "7" => {
            let (a, b) = fig7(effort);
            vec![a, b]
        }
        "8" => vec![fig8_fig9(effort).0],
        "9" => vec![fig8_fig9(effort).1],
        "10" => vec![fig10(effort)],
        "11" => vec![fig11(effort)],
        "12" => vec![fig12(effort)],
        "13" => vec![fig13(effort)],
        "clos" => vec![fig_clos(effort)],
        _ => return None,
    })
}

/// Every figure id [`by_id`] accepts: the paper figures in paper order,
/// then the suite's scale-out extensions.
pub const FIGURE_IDS: [&str; 11] = ["4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "clos"];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Effort {
        Effort {
            seeds: vec![1],
            scale: 0.05,
            jobs: 1,
            shards: 1,
        }
    }

    #[test]
    fn fig5_has_both_series_over_the_sweep() {
        let fig = fig5(&tiny());
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.len(), PAYLOADS.len());
        }
        // Bandwidth grows with payload in both series.
        for s in &fig.series {
            assert!(s.y.windows(2).all(|w| w[1] >= w[0] * 0.95));
        }
    }

    #[test]
    fn fig_clos_probes_every_hop_depth() {
        let fig = fig_clos(&tiny());
        // Two series (p50, p999) per hop depth, five BSG counts each.
        assert_eq!(fig.series.len(), 2 * CLOS_HOPS.len());
        for s in &fig.series {
            assert_eq!(s.len(), 5);
        }
        // Zero-load p50 grows with path length: each extra switch pair
        // adds pipeline + arbitration latency to the round trip.
        let p50_at_zero: Vec<f64> = (0..CLOS_HOPS.len())
            .map(|i| fig.series[2 * i].y[0])
            .collect();
        assert!(
            p50_at_zero[0] < p50_at_zero[1] && p50_at_zero[1] < p50_at_zero[2],
            "zero-load RTT must grow with hops: {p50_at_zero:?}"
        );
    }

    #[test]
    fn fattree128_runs_the_leaf_spine_at_scale() {
        let effort = Effort {
            seeds: vec![1],
            scale: 0.03,
            jobs: 1,
            shards: 1,
        };
        let fig = fattree128(&effort);
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.len(), 3, "three BSG counts");
            assert!(s.y.iter().all(|&y| y > 0.0), "{:?}", s.y);
        }
        // Loaded spine crossings cannot beat the unloaded one.
        let p50 = &fig.series[0].y;
        assert!(
            p50[2] >= p50[0],
            "8-BSG incast cannot speed the victim up: {p50:?}"
        );
    }

    #[test]
    fn fig7_latency_grows_and_bandwidth_is_flat_ish() {
        let (a, b) = fig7(&tiny());
        let p50 = &a.series[0];
        assert!(p50.y.last().unwrap() > &(p50.y[0] + 10.0));
        let total = &b.series[0];
        for y in &total.y {
            assert!((35.0..56.0).contains(y), "total bandwidth {y}");
        }
    }
}
