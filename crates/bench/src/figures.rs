//! One generator per paper figure.

use rperf::scenario::{
    converged, multihop, one_to_one_bandwidth, one_to_one_perftest, one_to_one_qperf,
    one_to_one_rperf, QosMode, RunSpec,
};
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_stats::{Figure, Series};

use crate::Effort;

/// The payload sweep used throughout the paper: 64 B – 4096 B.
pub const PAYLOADS: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

fn spec(effort: &Effort, cfg: ClusterConfig, base_ms: f64, seed: u64) -> RunSpec {
    RunSpec::new(cfg)
        .with_seed(seed)
        .with_duration(effort.window(base_ms))
}

/// Fig. 4 — RPerf RTT vs payload size, with and without the switch
/// (p50 and p99.9, in **ns**).
pub fn fig4(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig4",
        "RTT calculated by RPerf for different packet sizes with and without the switch",
        "Payload Size (B)",
        "RTT (ns)",
    );
    let mut s50_no = Series::new("50th (w/o switch)");
    let mut s999_no = Series::new("99.9th (w/o switch)");
    let mut s50_sw = Series::new("50th (w/ switch)");
    let mut s999_sw = Series::new("99.9th (w/ switch)");
    for &payload in &PAYLOADS {
        let x = payload as f64;
        for (through, s50, s999) in [
            (false, &mut s50_no, &mut s999_no),
            (true, &mut s50_sw, &mut s999_sw),
        ] {
            let mut p50_sum = 0.0;
            let mut p999_sum = 0.0;
            for &seed in &effort.seeds {
                let summary = one_to_one_rperf(
                    &spec(effort, ClusterConfig::hardware(), 8.0, seed),
                    through,
                    payload,
                )
                .summary;
                p50_sum += summary.p50_ns();
                p999_sum += summary.p999_ns();
            }
            let k = effort.seeds.len() as f64;
            s50.push(x, p50_sum / k);
            s999.push(x, p999_sum / k);
        }
    }
    fig.add_series(s50_no);
    fig.add_series(s999_no);
    fig.add_series(s50_sw);
    fig.add_series(s999_sw);
    fig
}

/// Fig. 5 — one-to-one BSG goodput vs payload size, with and without the
/// switch (Gbps).
pub fn fig5(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig5",
        "Bandwidth for different packet sizes with and without the switch",
        "Payload Size (B)",
        "Bandwidth (Gbps)",
    );
    let mut no_sw = Series::new("w/o switch");
    let mut with_sw = Series::new("w/ switch");
    for &payload in &PAYLOADS {
        let x = payload as f64;
        no_sw.push(
            x,
            effort.average(|seed| {
                one_to_one_bandwidth(
                    &spec(effort, ClusterConfig::hardware(), 4.0, seed),
                    false,
                    payload,
                )
            }),
        );
        with_sw.push(
            x,
            effort.average(|seed| {
                one_to_one_bandwidth(
                    &spec(effort, ClusterConfig::hardware(), 4.0, seed),
                    true,
                    payload,
                )
            }),
        );
    }
    fig.add_series(no_sw);
    fig.add_series(with_sw);
    fig
}

/// Fig. 6 — end-to-end RTT reported by the baseline tools, through the
/// switch (µs): Perftest p50/p99.9 and QPerf average.
pub fn fig6(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig6",
        "End-to-end RTT calculated by Perftest and Qperf with the switch",
        "Payload Size (B)",
        "RTT (us)",
    );
    let mut pf50 = Series::new("50th (Perftest)");
    let mut pf999 = Series::new("99.9th (Perftest)");
    let mut qp50 = Series::new("50th (Qperf)");
    for &payload in &PAYLOADS {
        let x = payload as f64;
        let mut pf50_sum = 0.0;
        let mut pf999_sum = 0.0;
        for &seed in &effort.seeds {
            let summary =
                one_to_one_perftest(&spec(effort, ClusterConfig::hardware(), 8.0, seed), payload);
            pf50_sum += summary.p50_us();
            pf999_sum += summary.p999_us();
        }
        let k = effort.seeds.len() as f64;
        pf50.push(x, pf50_sum / k);
        pf999.push(x, pf999_sum / k);
        qp50.push(
            x,
            effort.average(|seed| {
                one_to_one_qperf(&spec(effort, ClusterConfig::hardware(), 8.0, seed), payload)
                    .avg_us
            }),
        );
    }
    fig.add_series(pf50);
    fig.add_series(pf999);
    fig.add_series(qp50);
    fig
}

/// Figs. 7a and 7b — converged traffic on the hardware profile: LSG RTT
/// (µs) and total BSG goodput (Gbps) vs the number of 4096 B BSGs.
pub fn fig7(effort: &Effort) -> (Figure, Figure) {
    let mut fig_a = Figure::new(
        "fig7a",
        "RTT of LSG under converged traffic",
        "Number of BSGs",
        "RTT of LSG (us)",
    );
    let mut fig_b = Figure::new(
        "fig7b",
        "Total bandwidth of all BSGs under converged traffic",
        "Number of BSGs",
        "Total Bandwidth (Gbps)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let mut total = Series::new("total");
    for n in 0..=5usize {
        let mut p50_sum = 0.0;
        let mut p999_sum = 0.0;
        let mut bw_sum = 0.0;
        for &seed in &effort.seeds {
            let out = converged(
                &spec(effort, ClusterConfig::hardware(), 40.0, seed),
                n,
                4096,
                1,
                true,
                QosMode::SharedSl,
            );
            let lsg = out.lsg.expect("LSG present").summary;
            p50_sum += lsg.p50_us();
            p999_sum += lsg.p999_us();
            bw_sum += out.total_gbps;
        }
        let k = effort.seeds.len() as f64;
        s50.push(n as f64, p50_sum / k);
        s999.push(n as f64, p999_sum / k);
        if n >= 1 {
            total.push(n as f64, bw_sum / k);
        }
    }
    fig_a.add_series(s50);
    fig_a.add_series(s999);
    fig_b.add_series(total);
    (fig_a, fig_b)
}

/// Figs. 8 and 9 — five BSGs with varying payload (batched for small
/// payloads) plus the LSG: LSG RTT (µs) and total BSG goodput (Gbps).
pub fn fig8_fig9(effort: &Effort) -> (Figure, Figure) {
    let mut fig8 = Figure::new(
        "fig8",
        "RTT of the LSG as a function of the BSGs' message size",
        "Payload Size of BSGs (B)",
        "RTT of LSG (us)",
    );
    let mut fig9 = Figure::new(
        "fig9",
        "Total bandwidth achieved by BSGs as a function of the message size",
        "Payload Size of BSGs (B)",
        "Total Bandwidth (Gbps)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let mut total = Series::new("total");
    for &payload in &PAYLOADS {
        // "We also use batching with small payload sizes to improve the
        // bandwidth utilization."
        let batch = if payload <= 1024 { 16 } else { 1 };
        let mut p50_sum = 0.0;
        let mut p999_sum = 0.0;
        let mut bw_sum = 0.0;
        for &seed in &effort.seeds {
            let out = converged(
                &spec(effort, ClusterConfig::hardware(), 15.0, seed),
                5,
                payload,
                batch,
                true,
                QosMode::SharedSl,
            );
            let lsg = out.lsg.expect("LSG present").summary;
            p50_sum += lsg.p50_us();
            p999_sum += lsg.p999_us();
            bw_sum += out.total_gbps;
        }
        let k = effort.seeds.len() as f64;
        s50.push(payload as f64, p50_sum / k);
        s999.push(payload as f64, p999_sum / k);
        total.push(payload as f64, bw_sum / k);
    }
    fig8.add_series(s50);
    fig8.add_series(s999);
    fig9.add_series(total);
    (fig8, fig9)
}

/// Fig. 10 — the IB simulator profile: LSG RTT vs number of BSGs under
/// FCFS and Round-Robin scheduling (µs).
pub fn fig10(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Impact of the number of BSGs on RTT of LSG in the simulator",
        "Number of BSGs",
        "RTT of LSG (us)",
    );
    for policy in [SchedPolicy::Fcfs, SchedPolicy::RoundRobin] {
        let name = match policy {
            SchedPolicy::Fcfs => "FCFS",
            SchedPolicy::RoundRobin => "RR",
            SchedPolicy::FairShare => "FairShare",
        };
        let mut s50 = Series::new(format!("50th ({name})"));
        let mut s999 = Series::new(format!("99.9th ({name})"));
        for n in 0..=5usize {
            let mut p50_sum = 0.0;
            let mut p999_sum = 0.0;
            for &seed in &effort.seeds {
                let cfg = ClusterConfig::omnet_simulator().with_policy(policy);
                let out = converged(
                    &spec(effort, cfg, 40.0, seed),
                    n,
                    4096,
                    1,
                    true,
                    QosMode::SharedSl,
                );
                let lsg = out.lsg.expect("LSG present").summary;
                p50_sum += lsg.p50_us();
                p999_sum += lsg.p999_us();
            }
            let k = effort.seeds.len() as f64;
            s50.push(n as f64, p50_sum / k);
            s999.push(n as f64, p999_sum / k);
        }
        fig.add_series(s50);
        fig.add_series(s999);
    }
    fig
}

/// Fig. 11 — the multi-hop topology: LSG RTT under FCFS vs RR (µs).
pub fn fig11(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "RTT of LSG in a multi-hop setup",
        "Packet Scheduling Policy (0 = FCFS, 1 = RR)",
        "RTT of LSG (us)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    for (x, policy) in [(0.0, SchedPolicy::Fcfs), (1.0, SchedPolicy::RoundRobin)] {
        let mut p50_sum = 0.0;
        let mut p999_sum = 0.0;
        for &seed in &effort.seeds {
            let cfg = ClusterConfig::omnet_simulator();
            let out = multihop(&spec(effort, cfg, 40.0, seed), policy);
            let lsg = out.lsg.expect("LSG present").summary;
            p50_sum += lsg.p50_us();
            p999_sum += lsg.p999_us();
        }
        let k = effort.seeds.len() as f64;
        s50.push(x, p50_sum / k);
        s999.push(x, p999_sum / k);
    }
    fig.add_series(s50);
    fig.add_series(s999);
    fig
}

/// The four QoS setups of Fig. 12.
pub const FIG12_SETUPS: [&str; 4] = [
    "No BSGs",
    "Shared SL",
    "Dedicated SL",
    "Dedicated SL + Pretend LSG",
];

/// Fig. 12 — LSG RTT across QoS setups (x = setup index into
/// [`FIG12_SETUPS`], µs).
pub fn fig12(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "RTT of the real LSG in different setups",
        "Setup",
        "RTT of LSG (us)",
    );
    let mut s50 = Series::new("50th");
    let mut s999 = Series::new("99.9th");
    let setups: [(usize, QosMode); 4] = [
        (0, QosMode::SharedSl), // no BSGs
        (5, QosMode::SharedSl),
        (5, QosMode::DedicatedSl),
        (5, QosMode::DedicatedSlWithPretend),
    ];
    for (x, (n_bsgs, qos)) in setups.into_iter().enumerate() {
        // The gaming experiment keeps five sources total: four honest
        // BSGs plus the pretend LSG.
        let honest = if qos == QosMode::DedicatedSlWithPretend {
            4
        } else {
            n_bsgs
        };
        let mut p50_sum = 0.0;
        let mut p999_sum = 0.0;
        for &seed in &effort.seeds {
            let out = converged(
                &spec(effort, ClusterConfig::hardware(), 30.0, seed),
                honest,
                4096,
                1,
                true,
                qos,
            );
            let lsg = out.lsg.expect("LSG present").summary;
            p50_sum += lsg.p50_us();
            p999_sum += lsg.p999_us();
        }
        let k = effort.seeds.len() as f64;
        s50.push(x as f64, p50_sum / k);
        s999.push(x as f64, p999_sum / k);
    }
    fig.add_series(s50);
    fig.add_series(s999);
    fig
}

/// Fig. 13 — per-source goodput under the gaming experiment vs the shared
/// baseline (x = 0 for "Dedicated SL + Pretend LSG", 1 for "Shared SL").
pub fn fig13(effort: &Effort) -> Figure {
    let mut fig = Figure::new(
        "fig13",
        "Total bandwidth achieved by BSGs under converged traffic (gaming)",
        "Setup (0 = Dedicated SL + Pretend LSG, 1 = Shared SL)",
        "Bandwidth (Gbps)",
    );
    let mut series: Vec<Series> = (1..=5)
        .map(|i| Series::new(format!("BSG {i}")))
        .collect();
    let mut total = Series::new("total");

    // Setup 0: 4 honest BSGs + the pretend LSG (reported as "BSG 1", the
    // paper's convention of listing the gamer first).
    {
        let mut shares = [0.0f64; 5];
        let mut tot = 0.0;
        for &seed in &effort.seeds {
            let out = converged(
                &spec(effort, ClusterConfig::hardware(), 30.0, seed),
                4,
                4096,
                1,
                true,
                QosMode::DedicatedSlWithPretend,
            );
            shares[0] += out.pretend_gbps.expect("gaming run");
            for (i, g) in out.per_bsg_gbps.iter().enumerate() {
                shares[i + 1] += g;
            }
            tot += out.total_gbps;
        }
        let k = effort.seeds.len() as f64;
        for (i, s) in shares.iter().enumerate() {
            series[i].push(0.0, s / k);
        }
        total.push(0.0, tot / k);
    }

    // Setup 1: five honest BSGs sharing SL0.
    {
        let mut shares = [0.0f64; 5];
        let mut tot = 0.0;
        for &seed in &effort.seeds {
            let out = converged(
                &spec(effort, ClusterConfig::hardware(), 30.0, seed),
                5,
                4096,
                1,
                true,
                QosMode::SharedSl,
            );
            for (i, g) in out.per_bsg_gbps.iter().enumerate() {
                shares[i] += g;
            }
            tot += out.total_gbps;
        }
        let k = effort.seeds.len() as f64;
        for (i, s) in shares.iter().enumerate() {
            series[i].push(1.0, s / k);
        }
        total.push(1.0, tot / k);
    }

    for s in series {
        fig.add_series(s);
    }
    fig.add_series(total);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Effort {
        Effort {
            seeds: vec![1],
            scale: 0.05,
        }
    }

    #[test]
    fn fig5_has_both_series_over_the_sweep() {
        let fig = fig5(&tiny());
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.len(), PAYLOADS.len());
        }
        // Bandwidth grows with payload in both series.
        for s in &fig.series {
            assert!(s.y.windows(2).all(|w| w[1] >= w[0] * 0.95));
        }
    }

    #[test]
    fn fig7_latency_grows_and_bandwidth_is_flat_ish() {
        let (a, b) = fig7(&tiny());
        let p50 = &a.series[0];
        assert!(p50.y.last().unwrap() > &(p50.y[0] + 10.0));
        let total = &b.series[0];
        for y in &total.y {
            assert!((35.0..56.0).contains(y), "total bandwidth {y}");
        }
    }
}
