//! Regenerates Fig. 6: Perftest/QPerf end-to-end RTT vs payload.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig6(&effort).to_markdown());
}
