//! Regenerates Fig. 6: Perftest/QPerf end-to-end RTT vs payload.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig6(&effort).to_markdown());
}
