//! Regenerates Fig. 11: multi-hop LSG RTT under FCFS vs RR.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig11(&effort).to_markdown());
}
