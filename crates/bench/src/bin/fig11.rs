//! Regenerates Fig. 11: multi-hop LSG RTT under FCFS vs RR.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig11(&effort).to_markdown());
}
