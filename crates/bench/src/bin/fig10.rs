//! Regenerates Fig. 10: simulator FCFS vs RR, LSG RTT vs number of BSGs.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig10(&effort).to_markdown());
}
