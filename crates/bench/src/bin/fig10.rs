//! Regenerates Fig. 10: simulator FCFS vs RR, LSG RTT vs number of BSGs.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig10(&effort).to_markdown());
}
