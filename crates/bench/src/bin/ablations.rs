//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation switches one modelled mechanism off (or sweeps it) and
//! shows which published observation disappears — evidence that the model
//! attributes effects to the right causes.
//!
//! Usage: `cargo run --release -p rperf-bench --bin ablations [--quick]`

#![forbid(unsafe_code)]

use rperf::scenario::{converged, one_to_one_rperf, QosMode, RunSpec};
use rperf_bench::Effort;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

fn spec(effort: &Effort, cfg: ClusterConfig, base_ms: f64, seed: u64) -> RunSpec {
    RunSpec::new(cfg)
        .with_seed(seed)
        .with_duration(effort.window(base_ms))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);

    println!("# Ablations\n");

    // 1. Switch µarch jitter → the zero-load tail of Fig. 4.
    {
        let with = ClusterConfig::hardware();
        let mut without = ClusterConfig::hardware();
        without.switch.jitter = None;
        let r_with = one_to_one_rperf(&spec(&effort, with, 8.0, 1), true, 64);
        let r_without = one_to_one_rperf(&spec(&effort, without, 8.0, 1), true, 64);
        println!("## Switch µarch jitter (zero-load tail)\n");
        println!("| jitter | p50 (ns) | p99.9 (ns) | tail − median |");
        println!("|---|---|---|---|");
        for (name, r) in [("on", &r_with), ("off", &r_without)] {
            let s = &r.summary;
            println!(
                "| {name} | {:.0} | {:.0} | {:.0} |",
                s.p50_ns(),
                s.p999_ns(),
                s.p999_ns() - s.p50_ns()
            );
        }
        println!("\nWithout the jitter model the switch shows the simulator's");
        println!("flat distribution — the paper's ~200 ns hardware tail is a");
        println!("µarch property, not a queueing one.\n");
    }

    // 2. Arbitration scan cost → the Fig. 7b bandwidth droop.
    {
        println!("## Arbitration scan cost (converged bandwidth droop)\n");
        println!("| scan/port | total Gbps @1 BSG | @5 BSGs | droop |");
        println!("|---|---|---|---|");
        for scan_ns in [0u64, 10, 20] {
            let mut cfg = ClusterConfig::hardware();
            cfg.switch.arb_scan_per_port = SimDuration::from_ns(scan_ns);
            let one = converged(
                &spec(&effort, cfg.clone(), 20.0, 1),
                1,
                4096,
                1,
                false,
                QosMode::SharedSl,
            );
            let five = converged(
                &spec(&effort, cfg, 20.0, 1),
                5,
                4096,
                1,
                false,
                QosMode::SharedSl,
            );
            println!(
                "| {scan_ns} ns | {:.1} | {:.1} | {:.1} |",
                one.total_gbps,
                five.total_gbps,
                one.total_gbps - five.total_gbps
            );
        }
        println!("\nThe droop scales with the per-port scan cost; with a free");
        println!("arbiter the total is flat in the number of sources.\n");
    }

    // 3. Input-buffer size → Eq. 2's slope.
    {
        println!("## Input-buffer size (Eq. 2: W_t = N·Buf/BW)\n");
        println!("| buffer | LSG p50 @5 BSGs (µs) | predicted N·Buf/BW + base (µs) |");
        println!("|---|---|---|");
        for kib in [16u64, 32, 64] {
            let mut cfg = ClusterConfig::hardware();
            cfg.switch.input_buffer_bytes = kib * 1024;
            let rate = cfg.link.data_rate();
            let out = converged(
                &spec(&effort, cfg, 30.0, 1),
                5,
                4096,
                1,
                true,
                QosMode::SharedSl,
            );
            let w = rperf_model::analytic::fcfs_waiting_time(5, kib * 1024, rate);
            println!(
                "| {kib} KiB | {:.1} | {:.1} |",
                out.lsg.unwrap().summary.p50_us(),
                w.as_us_f64() + 0.43
            );
        }
        println!("\nThe LSG's latency tracks the credit advertisement linearly,");
        println!("as Eq. 2 predicts — the mechanism behind Figs. 7a/8/10.\n");
    }

    // 4. Pretender posting rate → the gaming attack threshold.
    {
        println!("## Pretender posting rate (gaming attack threshold)\n");
        println!("| WQE engine | pretend demand | real-LSG p50 (µs) | pretend Gbps |");
        println!("|---|---|---|---|");
        // The high-priority lane has finite arbitration capacity (the
        // Limit-of-High-Priority alternation). A pretender below that
        // capacity steals bandwidth but leaves the real LSG intact; once
        // its posting rate crosses the lane capacity, the lane backlogs
        // and the real LSG pays double-digit microseconds.
        for engine_ns in [110u64, 80, 65, 50] {
            let (lsg_us, gbps) = converged_with_pretend_engine(&effort, engine_ns);
            let demand = 256.0 * 8.0 / (engine_ns + 25) as f64; // Gbps
            println!("| {engine_ns} ns | {demand:.1} Gbps | {lsg_us:.1} | {gbps:.1} |");
        }
        println!("\nThe attack has a threshold: the real LSG is only harmed");
        println!("once the pretender saturates the latency lane's arbitration");
        println!("share — below that, QoS still protects it (at the cost of");
        println!("bandwidth fairness, which degrades immediately).\n");
    }
}

/// Runs the gaming scenario with a given pretender WQE-engine speed;
/// returns (real LSG p50 µs, pretend goodput Gbps).
fn converged_with_pretend_engine(effort: &Effort, engine_ns: u64) -> (f64, f64) {
    use rperf::{RPerf, RPerfConfig};
    use rperf_fabric::{FabricBuilder, Sim};
    use rperf_model::ServiceLevel;
    use rperf_workloads::{Bsg, BsgConfig, Sink};

    let cfg = ClusterConfig::hardware().with_dedicated_sl();
    let warmup = SimDuration::from_us(200);
    let duration = effort.window(30.0);
    let mut hot = cfg.rnic.clone();
    hot.wqe_engine = SimDuration::from_ns(engine_ns);
    let fabric = FabricBuilder::new(cfg, 1)
        .with_rnic_override(4, hot)
        .single_switch(7);
    let mut sim = Sim::new(fabric);
    for b in 0..4 {
        sim.add_app(
            b,
            Box::new(Bsg::new(BsgConfig::new(6, 4096).with_warmup(warmup))),
        );
    }
    // The pretender: 256 B on the latency SL with the swept burst size.
    sim.add_app(
        4,
        Box::new(Bsg::new(
            BsgConfig::new(6, 256)
                .with_sl(ServiceLevel::new(1))
                .with_batch(32)
                .with_window(512)
                .with_warmup(warmup),
        )),
    );
    sim.add_app(
        5,
        Box::new(RPerf::new(
            RPerfConfig::new(6)
                .with_sl(ServiceLevel::new(1))
                .with_warmup(warmup),
        )),
    );
    sim.add_app(6, Box::new(Sink::new()));
    sim.start();
    let end = rperf_sim::SimTime::ZERO + warmup + duration;
    sim.run_until(end);
    let lsg = sim.app_as::<RPerf>(5).report().summary.p50_us();
    let pretend = sim.app_as::<Bsg>(4).gbps_until(end.as_ps());
    (lsg, pretend)
}
