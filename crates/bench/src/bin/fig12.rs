//! Regenerates Fig. 12: LSG RTT across QoS setups.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    let fig = figures::fig12(&effort);
    println!("{}", fig.to_markdown());
    for (i, name) in figures::FIG12_SETUPS.iter().enumerate() {
        println!("  setup {i} = {name}");
    }
}
