//! Regenerates Fig. 12: LSG RTT across QoS setups.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    let fig = figures::fig12(&effort);
    println!("{}", fig.to_markdown());
    for (i, name) in figures::FIG12_SETUPS.iter().enumerate() {
        println!("  setup {i} = {name}");
    }
}
