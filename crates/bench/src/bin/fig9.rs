//! Regenerates Fig. 9: total BSG bandwidth vs the BSGs' payload size.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    let (_, fig9) = figures::fig8_fig9(&effort);
    println!("{}", fig9.to_markdown());
}
