//! Regenerates Fig. 9: total BSG bandwidth vs the BSGs' payload size.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    let (_, fig9) = figures::fig8_fig9(&effort);
    println!("{}", fig9.to_markdown());
}
