//! Regenerates Fig. 13: per-source bandwidth shares under QoS gaming.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig13(&effort).to_markdown());
    println!("  (setup 0: BSG 1 is the pretend LSG on the latency SL)");
}
