//! Regenerates Fig. 13: per-source bandwidth shares under QoS gaming.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig13(&effort).to_markdown());
    println!("  (setup 0: BSG 1 is the pretend LSG on the latency SL)");
}
