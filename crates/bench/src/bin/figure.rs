//! Regenerates any paper figure from one binary.
//!
//! Usage: `figure --fig <4..13|clos|all> [--quick] [--jobs N] [--seeds N]
//!         [--scale F] [--json]`
//!
//! Replaces the former per-figure binaries (`fig4` … `fig13`); the
//! Makefile keeps `make figN` aliases. `--json` emits the deterministic
//! JSON form used by the golden-equivalence tests instead of Markdown.

#![forbid(unsafe_code)]

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::from_args(&args);
    let mut fig: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args.get(i + 1).cloned();
                i += 2;
            }
            "--seeds" => {
                let n: u64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--seeds needs a positive integer");
                        std::process::exit(2);
                    });
                effort.seeds = (1..=n).collect();
                i += 2;
            }
            "--scale" => {
                effort.scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &f64| s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a positive number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            _ => i += 1, // --quick / --jobs already consumed by from_args
        }
    }

    let Some(fig) = fig else {
        eprintln!(
            "usage: figure --fig <4..13|clos|all> [--quick] [--jobs N] [--seeds N] [--scale F] [--json]"
        );
        std::process::exit(2);
    };
    let ids: Vec<&str> = if fig == "all" {
        figures::FIGURE_IDS.to_vec()
    } else {
        vec![fig.as_str()]
    };

    for id in ids {
        let Some(figs) = figures::by_id(id, &effort) else {
            eprintln!("unknown figure id `{id}` (expected 4..13, clos, or all)");
            std::process::exit(2);
        };
        for f in figs {
            if json {
                println!("{}", f.to_json());
            } else {
                println!("{}", f.to_markdown());
            }
        }
        if id == "12" && !json {
            for (i, name) in figures::FIG12_SETUPS.iter().enumerate() {
                println!("  setup {i} = {name}");
            }
        }
    }
}
