//! Regenerates Fig. 4: RPerf RTT vs payload, with/without the switch.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig4(&effort).to_markdown());
}
