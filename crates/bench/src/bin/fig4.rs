//! Regenerates Fig. 4: RPerf RTT vs payload, with/without the switch.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig4(&effort).to_markdown());
}
