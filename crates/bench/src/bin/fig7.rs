//! Regenerates Figs. 7a/7b: converged traffic, LSG RTT and BSG bandwidth.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    let (a, b) = figures::fig7(&effort);
    println!("{}", a.to_markdown());
    println!("{}", b.to_markdown());
}
