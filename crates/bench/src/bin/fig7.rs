//! Regenerates Figs. 7a/7b: converged traffic, LSG RTT and BSG bandwidth.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    let (a, b) = figures::fig7(&effort);
    println!("{}", a.to_markdown());
    println!("{}", b.to_markdown());
}
