//! Extension experiments beyond the paper: the proportionally fair
//! scheduler the paper sketches but could not test.
//!
//! Section VIII-B: "We consider a policy to be fair if the time each flow
//! spends in the switch is proportional to the size of the flow." The
//! paper's switch offers only FCFS and RR; `SchedPolicy::FairShare`
//! implements the sketched policy as byte-deficit fairness across ingress
//! ports. This binary reruns Figs. 10 and 11 with all three policies.
//!
//! Usage: `cargo run --release -p rperf-bench --bin extensions [--quick]`

#![forbid(unsafe_code)]

use rperf::scenario::{chain_latency, converged, multihop, QosMode, RunSpec};
use rperf_bench::Effort;
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;

const POLICIES: [(&str, SchedPolicy); 3] = [
    ("FCFS", SchedPolicy::Fcfs),
    ("RR", SchedPolicy::RoundRobin),
    ("FairShare", SchedPolicy::FairShare),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);

    println!("# Extension: proportionally fair packet scheduling\n");

    println!("## Single hop — Fig. 10 with a third policy (LSG RTT, µs)\n");
    println!("| BSGs | FCFS p50 | RR p50 | FairShare p50 |");
    println!("|---|---|---|---|");
    for n in 0..=5usize {
        let mut row = format!("| {n} |");
        for (_, policy) in POLICIES {
            let p50 = effort.average(|seed| {
                let spec = RunSpec::new(ClusterConfig::omnet_simulator().with_policy(policy))
                    .with_seed(seed)
                    .with_duration(effort.window(30.0));
                converged(&spec, n, 4096, 1, true, QosMode::SharedSl)
                    .lsg
                    .expect("LSG present")
                    .summary
                    .p50_us()
            });
            row.push_str(&format!(" {p50:.2} |"));
        }
        println!("{row}");
    }
    println!();
    println!(
        "FairShare serves the byte-starved LSG port first, so the probe\n\
         waits only for the in-flight packet — tighter than RR's one-per-\n\
         port bound, exactly the proportional-fairness the paper sketches.\n"
    );

    println!("## Two hops — Fig. 11 with a third policy (LSG RTT, µs)\n");
    println!("| policy | p50 | p99.9 |");
    println!("|---|---|---|");
    for (name, policy) in POLICIES {
        let mut p50_sum = 0.0;
        let mut p999_sum = 0.0;
        for &seed in &effort.seeds {
            let spec = RunSpec::new(ClusterConfig::omnet_simulator())
                .with_seed(seed)
                .with_duration(effort.window(30.0));
            let lsg = multihop(&spec, policy).lsg.expect("LSG present").summary;
            p50_sum += lsg.p50_us();
            p999_sum += lsg.p999_us();
        }
        let k = effort.seeds.len() as f64;
        println!("| {name} | {:.2} | {:.2} |", p50_sum / k, p999_sum / k);
    }
    println!();
    println!(
        "No output-side policy survives the trunk: once the latency flow\n\
         shares an input FIFO with bulk flows, fairness at the arbiter is\n\
         irrelevant — the packets ahead of it are already committed. The\n\
         paper's conclusion stands: isolation needs per-class lanes\n\
         (SL/VL), not smarter scheduling.\n"
    );

    println!("## Bandwidth fairness under asymmetric demand (extension)\n");
    // Two 4096 B bulk flows vs one 512 B bulk flow: FairShare should give
    // byte-equal shares; RR gives packet-equal shares (biased by size).
    println!("| policy | 4096 B flow | 4096 B flow | 512 B flow |");
    println!("|---|---|---|---|");
    for (name, policy) in POLICIES {
        let spec = RunSpec::new(ClusterConfig::omnet_simulator().with_policy(policy))
            .with_seed(effort.seeds[0])
            .with_duration(effort.window(30.0));
        // Build manually: nodes 0,1 big flows; node 2 small flow; dest 3.
        use rperf_fabric::{Fabric, Sim};
        use rperf_sim::SimTime;
        use rperf_workloads::{Bsg, BsgConfig, Sink};
        let mut sim = Sim::new(Fabric::single_switch(spec.cfg.clone(), 4, spec.seed));
        sim.add_app(
            0,
            Box::new(Bsg::new(BsgConfig::new(3, 4096).with_warmup(spec.warmup))),
        );
        sim.add_app(
            1,
            Box::new(Bsg::new(BsgConfig::new(3, 4096).with_warmup(spec.warmup))),
        );
        sim.add_app(
            2,
            Box::new(Bsg::new(
                BsgConfig::new(3, 512)
                    .with_batch(8)
                    .with_warmup(spec.warmup),
            )),
        );
        sim.add_app(3, Box::new(Sink::new()));
        sim.start();
        let end = SimTime::ZERO + spec.warmup + spec.duration;
        sim.run_until(end);
        let g: Vec<f64> = (0..3)
            .map(|n| sim.app_as::<Bsg>(n).gbps_until(end.as_ps()))
            .collect();
        println!("| {name} | {:.1} | {:.1} | {:.1} |", g[0], g[1], g[2]);
    }
    println!();
    println!(
        "RR equalizes packet slots, so the 512 B flow gets an eighth of a\n\
         4096 B flow's bytes; FairShare equalizes bytes across ports."
    );

    println!("\n## Latency vs hop count (switch-chain extension)\n");
    println!("| switches in path | zero-load p50 (µs) | p50 with 3 tail BSGs (µs) |");
    println!("|---|---|---|");
    for n_switches in 1..=4usize {
        let quiet = effort.average(|seed| {
            let spec = RunSpec::new(ClusterConfig::omnet_simulator())
                .with_seed(seed)
                .with_duration(effort.window(10.0));
            chain_latency(&spec, n_switches, 0).summary.p50_us()
        });
        let loaded = effort.average(|seed| {
            let spec = RunSpec::new(ClusterConfig::omnet_simulator())
                .with_seed(seed)
                .with_duration(effort.window(20.0));
            chain_latency(&spec, n_switches, 3).summary.p50_us()
        });
        println!("| {n_switches} | {quiet:.2} | {loaded:.2} |");
    }
    println!();
    println!(
        "Each switch adds ~0.4 µs of pipeline RTT at zero load, but once\n\
         the destination is congested the path length is noise: the last\n\
         hop's buffers dominate end-to-end latency."
    );
}
