//! Regenerates Fig. 8: LSG RTT vs the BSGs' payload size.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    let (fig8, _) = figures::fig8_fig9(&effort);
    println!("{}", fig8.to_markdown());
}
