//! Regenerates Fig. 8: LSG RTT vs the BSGs' payload size.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    let (fig8, _) = figures::fig8_fig9(&effort);
    println!("{}", fig8.to_markdown());
}
