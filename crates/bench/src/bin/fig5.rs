//! Regenerates Fig. 5: one-to-one goodput vs payload, with/without switch.

use rperf_bench::{figures, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    println!("{}", figures::fig5(&effort).to_markdown());
}
