//! Regenerates Fig. 5: one-to-one goodput vs payload, with/without switch.

use rperf_bench::{figures, Effort};

fn main() {
    let effort = if std::env::args().any(|a| a == "--quick") {
        Effort::quick()
    } else {
        Effort::full()
    };
    println!("{}", figures::fig5(&effort).to_markdown());
}
