//! Runs every figure and writes EXPERIMENTS.md (paper vs measured) plus
//! BENCH_report.json (per-figure wall-clock and simulator throughput).
//!
//! Usage: `cargo run --release -p rperf-bench --bin report
//!         [--quick] [--jobs N] [--out PATH] [--gate [PCT]] [--bless] [--prof]`
//!
//! `--gate` turns the run into a perf-regression gate: after the report is
//! written, every figure's events/sec — and the aggregate — is compared
//! against the committed BENCH_baseline.json, and the process exits
//! non-zero if any drops more than PCT percent (default 10) below it.
//! The gate additionally enforces a *balance floor*: the latency figures
//! (fig4, fig11, fig12) must each reach at least 60% of this run's
//! aggregate events/sec, so an optimization that feeds the long bandwidth
//! sweeps while starving the short latency sweeps cannot pass. The
//! converged incast figure (fig8_fig9) carries its own 45% floor — its
//! event mix is inherently denser than the wake-dominated sweeps (see
//! `FLOOR_FIGS`), so it runs slower by construction, but a collapse
//! below half the aggregate would still mean the packet/credit/CQE
//! paths regressed.
//!
//! `--bless` re-blesses the baseline: the run's per-figure throughput is
//! min-merged into BENCH_baseline.json (missing baseline: the run is
//! written as-is). `make bench-bless` deletes the old baseline and runs
//! this several times, leaving the per-figure minimum over N runs — a
//! conservative floor that keeps the gate from flaking on scheduler
//! noise.
//!
//! `--prof` (requires building with `--features sim-prof`) writes the
//! per-event-kind dispatch counters to BENCH_prof.json next to the
//! report. Profiled builds pay for two atomic adds and a wall-clock read
//! per event, so BENCH_report.json numbers from a profiled run are NOT
//! comparable with the gate baseline; the sidecar is diagnostic only.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use rperf_bench::{figures, paper, Effort};
use rperf_stats::{json, Figure};

/// One event kind's dispatch count and handler time for one figure
/// (populated only in `--features sim-prof` builds).
struct ProfRow {
    kind: &'static str,
    count: u64,
    nanos: u64,
}

/// Wall-clock and event-count attribution for one figure sweep.
struct FigStat {
    id: &'static str,
    wall_s: f64,
    events: u64,
    prof: Vec<ProfRow>,
}

#[cfg(feature = "sim-prof")]
fn prof_delta(before: &[rperf_fabric::prof::ProfEntry]) -> Vec<ProfRow> {
    rperf_fabric::prof::snapshot()
        .iter()
        .zip(before)
        .map(|(after, b)| ProfRow {
            kind: after.kind,
            count: after.count - b.count,
            nanos: after.nanos - b.nanos,
        })
        .collect()
}

/// Figures whose first run finishes below this wall time are re-run (up
/// to [`TIMED_MAX_RUNS`] total) and credited with their fastest run: a
/// sweep over in tens of milliseconds is dominated by scheduler noise
/// and first-touch effects, not by dispatch throughput, and the
/// per-figure floor check in `--gate` needs a stable rate. Min-over-N is
/// the same estimator `--bless` uses across whole report runs.
const TIMED_RERUN_BELOW_S: f64 = 0.25;
const TIMED_MAX_RUNS: u32 = 5;

/// Runs one figure generator, attributing wall-clock time and processed
/// simulation events (summed over all worker threads) to it.
fn timed<T>(stats: &mut Vec<FigStat>, id: &'static str, f: impl Fn() -> T) -> T {
    eprintln!("running {id}...");
    let one = || {
        let events_before = rperf_fabric::events_processed_total();
        #[cfg(feature = "sim-prof")]
        let prof_before = rperf_fabric::prof::snapshot();
        let start = Instant::now();
        let out = f();
        let wall_s = start.elapsed().as_secs_f64();
        let events = rperf_fabric::events_processed_total() - events_before;
        #[cfg(feature = "sim-prof")]
        let prof = prof_delta(&prof_before);
        #[cfg(not(feature = "sim-prof"))]
        let prof = Vec::new();
        (out, wall_s, events, prof)
    };
    let (mut out, mut wall_s, events, mut prof) = one();
    let mut runs = 1;
    while wall_s < TIMED_RERUN_BELOW_S && runs < TIMED_MAX_RUNS {
        let (rerun_out, rerun_wall, rerun_events, rerun_prof) = one();
        // The sweep is deterministic; a drifting event count across
        // back-to-back runs means a real bug, not timing noise.
        assert_eq!(
            rerun_events, events,
            "{id}: event count changed across identical re-runs"
        );
        out = rerun_out;
        if rerun_wall < wall_s {
            wall_s = rerun_wall;
            prof = rerun_prof;
        }
        runs += 1;
    }
    eprintln!(
        "  {id}: {wall_s:.2} s, {events} events, {:.2} Mev/s (best of {runs})",
        events as f64 / wall_s / 1e6
    );
    stats.push(FigStat {
        id,
        wall_s,
        events,
        prof,
    });
    out
}

/// One figure's committed throughput plus the wall time it was measured
/// over (the latter sets how much timing noise to tolerate).
struct BaselineFig {
    id: String,
    wall_s: f64,
    events_per_sec: f64,
}

/// Per-figure and aggregate simulator throughput from a previously
/// written BENCH_baseline.json (same schema as BENCH_report.json).
struct Baseline {
    total_events_per_sec: f64,
    figures: Vec<BaselineFig>,
}

/// Loads the committed baseline next to the report, if any. A baseline
/// that exists but fails to parse is reported and treated as absent.
fn load_baseline(path: &std::path::Path) -> Option<Baseline> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("warning: {}: {e}; ignoring baseline", path.display());
            return None;
        }
    };
    let total_events_per_sec = doc.get("total_events_per_sec")?.as_f64()?;
    let figures = doc
        .get("figures")?
        .as_array()?
        .iter()
        .filter_map(|f| {
            Some(BaselineFig {
                id: f.get("id")?.as_str()?.to_string(),
                wall_s: f.get("wall_s")?.as_f64()?,
                events_per_sec: f.get("events_per_sec")?.as_f64()?,
            })
        })
        .collect();
    Some(Baseline {
        total_events_per_sec,
        figures,
    })
}

/// Timing noise on a throughput measured over a short window scales
/// roughly with 1/sqrt(wall seconds): back-to-back runs of a 30 ms
/// figure swing ±15% while multi-second figures repeat within a couple
/// percent. Widen the tolerance accordingly so the gate catches real
/// regressions on the figures long enough to measure them, instead of
/// flaking on scheduler jitter. Figures at or above one second — and the
/// aggregate — are gated at the requested percentage exactly.
fn noise_adjusted_pct(pct: f64, baseline_wall_s: f64) -> f64 {
    (pct * (1.0 / baseline_wall_s.max(1e-3)).sqrt().max(1.0)).min(50.0)
}

/// Prints one gate line and reports whether `measured` fell more than
/// `tol_pct` percent below `base`.
fn gate_line(id: &str, measured: f64, base: f64, tol_pct: f64) -> bool {
    let ratio = measured / base;
    let regressed = ratio < 1.0 - tol_pct / 100.0;
    eprintln!(
        "  {id:>9}: {:8.2} Mev/s vs {:8.2} Mev/s baseline ({ratio:.3}x, tol {tol_pct:.0}%){}",
        measured / 1e6,
        base / 1e6,
        if regressed { "  REGRESSED" } else { "" }
    );
    regressed
}

/// The figures the balance floor protects, each with the fraction of the
/// run's aggregate events/sec it must reach.
///
/// fig4/fig11/fig12 are the latency figures — dominated by short sweeps
/// and timer churn rather than saturated links, i.e. the first to regress
/// when an optimization trades wheel-advance latency for bulk throughput.
///
/// fig8_fig9 guards the *other* failure mode. The wake-dominated sweeps
/// (fig5/fig7/fig10) are ~99% rearm-only `rnic_wake`s at ~45 ns each,
/// which is what sets the aggregate rate; fig8_fig9's converged incast is
/// a balanced mix (~10% each of switch/rnic packets, credits, and CQEs at
/// 65–175 ns, only ~20% cheap wakes), so ~55% of aggregate is its natural
/// ceiling — the sim-prof attribution shows no single hot kind to shave.
/// Its 45% floor is headroom below that ceiling, not a target: dropping
/// under it means the packet/credit/CQE handler paths themselves
/// regressed, which the wake-heavy figures would barely notice.
const FLOOR_FIGS: [(&str, f64); 4] = [
    ("fig4", 0.6),
    ("fig11", 0.6),
    ("fig12", 0.6),
    ("fig8_fig9", 0.45),
];

/// The floor fraction for `id`, if it is a floor figure.
fn floor_frac(id: &str) -> Option<f64> {
    FLOOR_FIGS.iter().find(|(f, _)| *f == id).map(|&(_, p)| p)
}

/// Checks the per-figure balance floor against this run's own aggregate;
/// returns the number of figures below it.
fn gate_figure_floors(stats: &[FigStat]) -> usize {
    let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    let aggregate = total_events as f64 / total_wall;
    let mut below = 0;
    for s in stats.iter() {
        let Some(frac) = floor_frac(s.id) else {
            continue;
        };
        let floor = aggregate * frac;
        let eps = s.events as f64 / s.wall_s;
        let ok = eps >= floor;
        eprintln!(
            "  {:>9}: {:8.2} Mev/s vs {:8.2} Mev/s floor ({:.0}% of aggregate){}",
            s.id,
            eps / 1e6,
            floor / 1e6,
            frac * 100.0,
            if ok { "" } else { "  BELOW FLOOR" }
        );
        if !ok {
            below += 1;
        }
    }
    below
}

/// Extra chances a floor figure gets if its recorded rate sits below the
/// balance floor when a gate is requested. `timed`'s best-of-N re-runs
/// are back-to-back, so one multi-second background load spike can
/// depress every sample of a 20 ms figure at once; by gate time —
/// seconds later — the spike has usually passed. Min-wall is a one-sided
/// estimator: retries only strip noise, they cannot hide a real
/// regression (slower code stays below the floor on every retry).
const FLOOR_RETRIES: u32 = 3;

/// Re-measures floor figures that sit below the balance floor, keeping
/// the fastest wall time. The floor is recomputed from the updated stats
/// before each attempt (shorter walls nudge the aggregate up slightly).
fn retry_floor_figures(stats: &mut [FigStat], reruns: &[(&str, &dyn Fn())]) {
    for (id, rerun) in reruns {
        let frac = floor_frac(id).expect("rerun list names a floor figure");
        for _ in 0..FLOOR_RETRIES {
            let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
            let total_events: u64 = stats.iter().map(|s| s.events).sum();
            let floor = total_events as f64 / total_wall * frac;
            let stat = stats
                .iter_mut()
                .find(|s| s.id == *id)
                .expect("floor figure was measured");
            if stat.events as f64 / stat.wall_s >= floor {
                break;
            }
            let events_before = rperf_fabric::events_processed_total();
            let start = Instant::now();
            rerun();
            let wall_s = start.elapsed().as_secs_f64();
            let events = rperf_fabric::events_processed_total() - events_before;
            assert_eq!(
                events, stat.events,
                "{id}: event count changed on floor retry"
            );
            eprintln!(
                "  {id}: below balance floor, retried: {:.2} Mev/s",
                events as f64 / wall_s / 1e6
            );
            if wall_s < stat.wall_s {
                stat.wall_s = wall_s;
            }
        }
    }
}

/// Compares the measured run against the committed baseline, printing
/// one line per figure plus the aggregate; returns the regression count.
fn gate_against_baseline(baseline: &Baseline, stats: &[FigStat], pct: f64) -> usize {
    let mut regressions = 0;
    for s in stats {
        match baseline.figures.iter().find(|f| f.id == s.id) {
            Some(base) => {
                let tol = noise_adjusted_pct(pct, base.wall_s);
                if gate_line(s.id, s.events as f64 / s.wall_s, base.events_per_sec, tol) {
                    regressions += 1;
                }
            }
            None => {
                eprintln!(
                    "  {:>9}: missing from baseline — re-bless BENCH_baseline.json",
                    s.id
                );
                regressions += 1;
            }
        }
    }
    let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    if gate_line(
        "total",
        total_events as f64 / total_wall,
        baseline.total_events_per_sec,
        pct,
    ) {
        regressions += 1;
    }
    regressions
}

/// Serializes the per-figure stats deterministically (modulo the timings
/// themselves, which are wall-clock measurements).
fn bench_report_json(effort: &Effort, stats: &[FigStat], baseline: Option<f64>) -> String {
    let figures: Vec<String> = stats
        .iter()
        .map(|s| {
            json::object([
                ("id", json::string(s.id)),
                ("wall_s", json::num(s.wall_s)),
                ("events", json::num(s.events as f64)),
                ("events_per_sec", json::num(s.events as f64 / s.wall_s)),
            ])
        })
        .collect();
    let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    let events_per_sec = total_events as f64 / total_wall;
    json::object([
        ("jobs", json::num(effort.jobs as f64)),
        ("seeds", json::num(effort.seeds.len() as f64)),
        ("scale", json::num(effort.scale)),
        ("total_wall_s", json::num(total_wall)),
        ("total_events", json::num(total_events as f64)),
        ("total_events_per_sec", json::num(events_per_sec)),
        (
            "baseline_events_per_sec",
            json::num(baseline.unwrap_or(f64::NAN)),
        ),
        (
            "speedup_vs_baseline",
            json::num(baseline.map_or(f64::NAN, |b| events_per_sec / b)),
        ),
        (
            "slab_high_water",
            json::num(rperf_fabric::slab_high_water_total() as f64),
        ),
        (
            "packets_leaked",
            json::num(rperf_fabric::packets_leaked_total() as f64),
        ),
        ("shards", json::num(effort.shards as f64)),
        ("figures", json::array(figures)),
    ])
}

/// Baseline re-blessing: this run's per-figure throughput min-merged with
/// the existing baseline (absent baseline: the run as-is). Repeated
/// invocations converge on the per-figure minimum over N runs.
fn bless_baseline_json(stats: &[FigStat], existing: Option<&Baseline>) -> String {
    let figures: Vec<String> = stats
        .iter()
        .map(|s| {
            let cur_eps = s.events as f64 / s.wall_s;
            let (eps, wall_s) = match existing.and_then(|b| b.figures.iter().find(|f| f.id == s.id))
            {
                Some(base) if base.events_per_sec < cur_eps => (base.events_per_sec, base.wall_s),
                _ => (cur_eps, s.wall_s),
            };
            json::object([
                ("id", json::string(s.id)),
                ("wall_s", json::num(wall_s)),
                ("events_per_sec", json::num(eps)),
            ])
        })
        .collect();
    let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    let mut total_eps = total_events as f64 / total_wall;
    if let Some(b) = existing {
        total_eps = total_eps.min(b.total_events_per_sec);
    }
    json::object([
        ("total_events_per_sec", json::num(total_eps)),
        ("figures", json::array(figures)),
    ])
}

/// Serializes the per-shard execution counters accumulated over the whole
/// report run (events handled, wall-clock nanoseconds blocked at window
/// barriers, mailbox messages exchanged). Empty unless the run was
/// sharded (`--shards N`, N > 1): the sequential engine never records
/// shard rows.
#[cfg(feature = "sim-prof")]
fn prof_shard_rows() -> Vec<String> {
    rperf_fabric::prof::shard_snapshot()
        .iter()
        .map(|s| {
            json::object([
                ("shard", json::num(s.shard as f64)),
                ("events", json::num(s.events as f64)),
                ("barrier_wait_nanos", json::num(s.barrier_ns as f64)),
                ("mailbox_msgs", json::num(s.mailbox_msgs as f64)),
            ])
        })
        .collect()
}

/// Serializes the per-figure sim-prof counter breakdown plus the
/// per-shard execution counters (the BENCH_prof sidecar; see `--prof`).
fn prof_report_json(stats: &[FigStat]) -> String {
    let figures: Vec<String> = stats
        .iter()
        .map(|s| {
            let kinds: Vec<String> = s
                .prof
                .iter()
                .map(|r| {
                    json::object([
                        ("kind", json::string(r.kind)),
                        ("count", json::num(r.count as f64)),
                        ("handler_nanos", json::num(r.nanos as f64)),
                    ])
                })
                .collect();
            json::object([("id", json::string(s.id)), ("kinds", json::array(kinds))])
        })
        .collect();
    #[cfg(feature = "sim-prof")]
    let shards = prof_shard_rows();
    #[cfg(not(feature = "sim-prof"))]
    let shards = Vec::new();
    json::object([
        ("figures", json::array(figures)),
        ("shards", json::array(shards)),
    ])
}

fn nearest(series_x: &[f64], series_y: &[f64], x: f64) -> Option<f64> {
    series_x
        .iter()
        .position(|&xi| (xi - x).abs() < 1e-9)
        .map(|i| series_y[i])
}

fn compare_rows(fig: &Figure, series_label: &str, refs: &[(f64, f64)], unit: &str) -> String {
    let mut out = String::new();
    let Some(series) = fig.series.iter().find(|s| s.label == series_label) else {
        return format!("  (series `{series_label}` missing)\n");
    };
    for &(x, published) in refs {
        match nearest(&series.x, &series.y, x) {
            Some(measured) => {
                let ratio = if published != 0.0 {
                    measured / published
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    out,
                    "| {x} | {published:.2} | {measured:.2} | {ratio:.2}× |"
                );
                let _ = unit;
            }
            None => {
                let _ = writeln!(out, "| {x} | {published:.2} | - | - |");
            }
        }
    }
    out
}

fn comparison_table(
    title: &str,
    fig: &Figure,
    series: &str,
    refs: &[(f64, f64)],
    unit: &str,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "**{title}** (`{series}`, {unit})\n");
    let _ = writeln!(out, "| x | paper | measured | ratio |");
    let _ = writeln!(out, "|---|---|---|---|");
    out.push_str(&compare_rows(fig, series, refs, unit));
    let _ = writeln!(out);
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = Effort::from_args(&args);
    let mut stats: Vec<FigStat> = Vec::new();
    let out_path: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md"));
    // `--gate` alone gates at 10%; `--gate PCT` overrides the threshold.
    let gate_pct: Option<f64> = args.iter().position(|a| a == "--gate").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|p| *p > 0.0 && *p < 100.0)
            .unwrap_or(10.0)
    });
    let bless = args.iter().any(|a| a == "--bless");
    let want_prof = args.iter().any(|a| a == "--prof");

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# EXPERIMENTS — paper vs. measured\n\n\
         Regenerated by `cargo run --release -p rperf-bench --bin report`\n\
         (effort: {} seed(s), window scale {}). Absolute numbers come from a\n\
         calibrated simulation, not the authors' testbed; the claims under\n\
         test are the *shapes*: who wins, slopes, crossovers, isolation\n\
         factors. Each figure below shows the full measured series followed\n\
         by a side-by-side comparison at the points the paper quotes in its\n\
         text.\n\n\
         Every figure is produced by sweeping declarative scenario specs\n\
         (`rperf::ScenarioSpec`) through the generic executor\n\
         (`rperf::execute`); see DESIGN.md §4.1. Golden tests pin the\n\
         spec-driven output byte-for-byte to the pre-IR harness, and the\n\
         tables are byte-identical for any `--jobs`/`--shards` setting —\n\
         parallelism (across simulations or, via conservative-lookahead\n\
         sharding, inside one; DESIGN.md §3.7) is an execution strategy,\n\
         never part of the result.\n",
        effort.seeds.len(),
        effort.scale
    );

    // Fig. 4.
    let fig4 = timed(&mut stats, "fig4", || figures::fig4(&effort));
    md.push_str(&fig4.to_markdown());
    for (label, refs) in [
        (
            "50th (w/o switch)",
            paper::FIG4_NO_SWITCH_NS
                .iter()
                .map(|&(x, p50, _)| (x, p50))
                .collect::<Vec<_>>(),
        ),
        (
            "99.9th (w/o switch)",
            paper::FIG4_NO_SWITCH_NS
                .iter()
                .map(|&(x, _, p999)| (x, p999))
                .collect(),
        ),
        (
            "50th (w/ switch)",
            paper::FIG4_WITH_SWITCH_NS
                .iter()
                .map(|&(x, p50, _)| (x, p50))
                .collect(),
        ),
        (
            "99.9th (w/ switch)",
            paper::FIG4_WITH_SWITCH_NS
                .iter()
                .map(|&(x, _, p999)| (x, p999))
                .collect(),
        ),
    ] {
        md.push_str(&comparison_table("Fig. 4 check", &fig4, label, &refs, "ns"));
    }

    // Fig. 5.
    let fig5 = timed(&mut stats, "fig5", || figures::fig5(&effort));
    md.push_str(&fig5.to_markdown());
    let refs_no: Vec<(f64, f64)> = paper::FIG5_GBPS.iter().map(|&(x, a, _)| (x, a)).collect();
    let refs_sw: Vec<(f64, f64)> = paper::FIG5_GBPS.iter().map(|&(x, _, b)| (x, b)).collect();
    md.push_str(&comparison_table(
        "Fig. 5 check",
        &fig5,
        "w/o switch",
        &refs_no,
        "Gbps",
    ));
    md.push_str(&comparison_table(
        "Fig. 5 check",
        &fig5,
        "w/ switch",
        &refs_sw,
        "Gbps",
    ));

    // Fig. 6.
    let fig6 = timed(&mut stats, "fig6", || figures::fig6(&effort));
    md.push_str(&fig6.to_markdown());
    let pf50: Vec<(f64, f64)> = paper::FIG6_PERFTEST_US
        .iter()
        .map(|&(x, p, _)| (x, p))
        .collect();
    let pf999: Vec<(f64, f64)> = paper::FIG6_PERFTEST_US
        .iter()
        .map(|&(x, _, t)| (x, t))
        .collect();
    md.push_str(&comparison_table(
        "Fig. 6 check",
        &fig6,
        "50th (Perftest)",
        &pf50,
        "µs",
    ));
    md.push_str(&comparison_table(
        "Fig. 6 check",
        &fig6,
        "99.9th (Perftest)",
        &pf999,
        "µs",
    ));
    md.push_str(&comparison_table(
        "Fig. 6 check",
        &fig6,
        "50th (Qperf)",
        paper::FIG6_QPERF_US,
        "µs",
    ));

    // Figs. 7a/7b.
    let (fig7a, fig7b) = timed(&mut stats, "fig7", || figures::fig7(&effort));
    md.push_str(&fig7a.to_markdown());
    md.push_str(&fig7b.to_markdown());
    let f7a50: Vec<(f64, f64)> = paper::FIG7A_US.iter().map(|&(x, p, _)| (x, p)).collect();
    md.push_str(&comparison_table(
        "Fig. 7a check",
        &fig7a,
        "50th",
        &f7a50,
        "µs",
    ));
    md.push_str(&comparison_table(
        "Fig. 7b check",
        &fig7b,
        "total",
        paper::FIG7B_GBPS,
        "Gbps",
    ));

    // Figs. 8/9.
    let (fig8, fig9) = timed(&mut stats, "fig8_fig9", || figures::fig8_fig9(&effort));
    md.push_str(&fig8.to_markdown());
    md.push_str(&fig9.to_markdown());
    let f8: Vec<(f64, f64)> = paper::FIG8_US.iter().map(|&(x, p, _)| (x, p)).collect();
    md.push_str(&comparison_table("Fig. 8 check", &fig8, "50th", &f8, "µs"));
    md.push_str(&comparison_table(
        "Fig. 9 check",
        &fig9,
        "total",
        paper::FIG9_GBPS,
        "Gbps",
    ));

    // Fig. 10.
    let fig10 = timed(&mut stats, "fig10", || figures::fig10(&effort));
    md.push_str(&fig10.to_markdown());
    let fcfs: Vec<(f64, f64)> = paper::FIG10_FCFS_US
        .iter()
        .map(|&(x, p, _)| (x, p))
        .collect();
    let rr: Vec<(f64, f64)> = paper::FIG10_RR_US.iter().map(|&(x, p, _)| (x, p)).collect();
    md.push_str(&comparison_table(
        "Fig. 10 check",
        &fig10,
        "50th (FCFS)",
        &fcfs,
        "µs",
    ));
    md.push_str(&comparison_table(
        "Fig. 10 check",
        &fig10,
        "50th (RR)",
        &rr,
        "µs",
    ));

    // Fig. 11.
    let fig11 = timed(&mut stats, "fig11", || figures::fig11(&effort));
    md.push_str(&fig11.to_markdown());
    let f11: Vec<(f64, f64)> = paper::FIG11_US
        .iter()
        .enumerate()
        .map(|(i, &(_, p50, _))| (i as f64, p50))
        .collect();
    md.push_str(&comparison_table(
        "Fig. 11 check",
        &fig11,
        "50th",
        &f11,
        "µs",
    ));

    // Fig. 12.
    let fig12 = timed(&mut stats, "fig12", || figures::fig12(&effort));
    md.push_str(&fig12.to_markdown());
    let _ = writeln!(md, "Setups: {:?}\n", figures::FIG12_SETUPS);
    let f12: Vec<(f64, f64)> = paper::FIG12_US
        .iter()
        .enumerate()
        .map(|(i, &(_, p50, _))| (i as f64, p50))
        .collect();
    md.push_str(&comparison_table(
        "Fig. 12 check",
        &fig12,
        "50th",
        &f12,
        "µs",
    ));

    // Fig. 13.
    let fig13 = timed(&mut stats, "fig13", || figures::fig13(&effort));
    md.push_str(&fig13.to_markdown());
    let _ = writeln!(
        md,
        "Paper: pretend LSG {:.1} Gbps, honest BSGs {:.1}–{:.1} Gbps, totals \
         {:.1} (gamed) vs {:.1} (shared).\n",
        paper::FIG13_PRETEND_GBPS,
        paper::FIG13_HONEST_GBPS.0,
        paper::FIG13_HONEST_GBPS.1,
        paper::FIG13_TOTALS_GBPS.0,
        paper::FIG13_TOTALS_GBPS.1
    );

    // Clos scale-out extension (no paper reference values: the paper
    // stops at two switches; these figures answer its open question at
    // fabric scale).
    let fig_clos = timed(&mut stats, "fig_clos", || figures::fig_clos(&effort));
    md.push_str(&fig_clos.to_markdown());
    let slope = |series_idx: usize| {
        let s = &fig_clos.series[series_idx];
        // Per-BSG latency slope over the contended points (>= 1 BSG),
        // where queueing rather than propagation dominates.
        (s.y.last().unwrap() - s.y[1]) / (s.x.last().unwrap() - s.x[1]).max(1.0)
    };
    let _ = writeln!(
        md,
        "**Multi-hop slope check** — the paper measures ~5 µs of victim\n\
         latency per added BSG through *one* switch and leaves deeper\n\
         fabrics open. Above, the same victim/BSG mix runs at 1, 3 and 5\n\
         hops of a routed 3-tier k = 4 fat-tree (destination-based\n\
         forwarding tables programmed by the subnet planner):\n\n\
         - zero-load RTT is additive in path length ({:.2} → {:.2} →\n\
           {:.2} µs p50 at 1/3/5 hops);\n\
         - under load the *last-hop* incast still dominates: the p50\n\
           slope per BSG beyond the first is {:.2} / {:.2} / {:.2}\n\
           µs/BSG at 1/3/5 hops — converging traffic, not path length,\n\
           sets the contended latency, consistent with the paper's\n\
           single-switch mechanism.\n",
        fig_clos.series[0].y[0],
        fig_clos.series[2].y[0],
        fig_clos.series[4].y[0],
        slope(0),
        slope(2),
        slope(4),
    );

    // 128-host leaf-spine scale row (throughput accounting for
    // BENCH_report.json; the figure doubles as a sanity table here).
    let ft128 = timed(&mut stats, "fattree_k8", || figures::fattree128(&effort));
    md.push_str(&ft128.to_markdown());
    let _ = writeln!(
        md,
        "The k = 8, o = 2 leaf-spine (128 hosts, 16 leaves, 4 spines) is\n\
         the largest routed fabric in the suite; the row above is its\n\
         events/sec entry in BENCH_report.json.\n"
    );

    let _ = writeln!(
        md,
        "## Take-away scorecard\n\n\
         | Paper claim | Holds here? |\n|---|---|\n\
         | Back-to-back RTT well under 100 ns at all payloads (Fig. 4) | yes |\n\
         | Switch adds ~400 ns RTT and a ~200 ns tail even unloaded (Fig. 4) | yes |\n\
         | >90 % of link capacity with large payloads, <10 % at 64 B (Fig. 5) | yes |\n\
         | Existing tools overstate switch latency ~5–10× (Fig. 6 vs Fig. 4) | yes |\n\
         | Each added BSG costs the LSG ~5 µs; no latency isolation (Fig. 7a) | yes |\n\
         | Aggregate bandwidth droops as BSGs converge (Fig. 7b) | yes |\n\
         | Small BSG payloads save latency or large ones save bandwidth, not both (Figs. 8–9) | yes |\n\
         | FCFS explains the hardware; RR protects the LSG single-hop (Fig. 10) | yes |\n\
         | RR fails once the LSG shares a trunk (Fig. 11) | yes |\n\
         | Dedicated SL/VL protects the LSG without bandwidth cost (Fig. 12) | yes |\n\
         | A pretend LSG games QoS for ~3× an honest share (Fig. 13) | yes |\n"
    );

    let _ = writeln!(
        md,
        "## Known deviations\n\n\
         Documented with mechanisms in DESIGN.md §7: the FCFS waiting\n\
         intercept is one buffer (≈5 µs) above the paper's at low BSG\n\
         counts (slope and 5-BSG values match); multi-hop RR shows no\n\
         advantage over FCFS (the paper shows a residual 20 %); absolute\n\
         baseline-tool latencies sit ~10–20 % under the published values.\n"
    );

    // Static snapshot, not measured by this run: EXPERIMENTS.md is
    // byte-diffed between jobs=1 and jobs=4 CI runs, so no live timing
    // may appear here. PR 1/PR 3 figures were recorded on the reference
    // machine at those commits; the PR 7 column is the blessed
    // per-figure floor (min over 3 runs, BENCH_baseline.json). Live
    // numbers for the current build are in BENCH_report.json.
    let _ = writeln!(
        md,
        "## Performance trajectory (quick report, jobs=1, Mevents/s)\n\n\
         Reference-machine snapshots across the optimization PRs: PR 1\n\
         (first full report), PR 3 (flat event dispatch + timer wheel),\n\
         PR 7 (batched delivery, SoA switch buffers, dense QP table,\n\
         busy-wire wake fast path, min-tick cascade jump). The PR 7\n\
         column is the conservative blessed floor — the per-figure\n\
         minimum over three runs that `make bench-bless` committed to\n\
         `BENCH_baseline.json`; single runs on an idle box reach\n\
         20–24 Mevents/s aggregate.\n\n\
         | figure | PR 1 | PR 3 | PR 7 (blessed floor) |\n\
         |---|---|---|---|\n\
         | fig4 | 6.08 | 6.25 | 16.39 |\n\
         | fig5 | 6.04 | 10.43 | 19.54 |\n\
         | fig6 | 6.87 | 6.24 | 17.02 |\n\
         | fig7 | 4.89 | 9.79 | 15.72 |\n\
         | fig8_fig9 | 4.21 | 5.27 | 9.55 |\n\
         | fig10 | 4.93 | 9.69 | 18.81 |\n\
         | fig11 | 5.54 | 4.74 | 13.10 |\n\
         | fig12 | 5.28 | 4.67 | 13.05 |\n\
         | fig13 | 5.33 | 5.38 | 14.71 |\n\
         | **aggregate** | **5.06** | **9.65** | **18.53** |\n"
    );

    let _ = writeln!(
        md,
        "## Cached vs cold results (rperf-serve)\n\n\
         Every number above comes from a cold run. When scenarios are\n\
         submitted through the `rperf-serve` service instead, repeat\n\
         submissions of the same (spec, seed) on the same build are\n\
         answered from a content-addressed cache; the reply is the exact\n\
         byte sequence the cold run produced (enforced by the chaos test\n\
         `cached_replay_is_byte_identical_to_cold_and_local`), so caching\n\
         changes latency only, never results. The cache key folds in the\n\
         code version, so a rebuild never replays stale outcomes. See\n\
         DESIGN.md §8.\n"
    );

    // Gated runs refine floor-figure measurements before anything is
    // written, so the JSON report and the gate see the same numbers.
    if gate_pct.is_some() {
        let floor_reruns: [(&str, &dyn Fn()); 4] = [
            ("fig4", &|| {
                figures::fig4(&effort);
            }),
            ("fig11", &|| {
                figures::fig11(&effort);
            }),
            ("fig12", &|| {
                figures::fig12(&effort);
            }),
            ("fig8_fig9", &|| {
                figures::fig8_fig9(&effort);
            }),
        ];
        retry_floor_figures(&mut stats, &floor_reruns);
    }

    std::fs::write(&out_path, md).expect("write EXPERIMENTS.md");
    eprintln!("wrote {}", out_path.display());

    let bench_path = out_path.with_file_name("BENCH_report.json");
    let baseline_path = out_path.with_file_name("BENCH_baseline.json");
    let baseline = load_baseline(&baseline_path);
    std::fs::write(
        &bench_path,
        bench_report_json(
            &effort,
            &stats,
            baseline.as_ref().map(|b| b.total_events_per_sec),
        ) + "\n",
    )
    .expect("write BENCH_report.json");
    let total_wall: f64 = stats.iter().map(|s| s.wall_s).sum();
    let total_events: u64 = stats.iter().map(|s| s.events).sum();
    let events_per_sec = total_events as f64 / total_wall;
    eprintln!(
        "wrote {} ({} jobs, {total_wall:.2} s wall, {:.2} Mev/s aggregate)",
        bench_path.display(),
        effort.jobs,
        events_per_sec / 1e6
    );
    if let Some(b) = &baseline {
        eprintln!(
            "  vs BENCH_baseline.json: {:.2} Mev/s baseline, {:.2}x",
            b.total_events_per_sec / 1e6,
            events_per_sec / b.total_events_per_sec
        );
    }
    eprintln!(
        "  packet slab: high-water {} live handles, {} leaked",
        rperf_fabric::slab_high_water_total(),
        rperf_fabric::packets_leaked_total()
    );

    if want_prof {
        #[cfg(feature = "sim-prof")]
        {
            let prof_path = out_path.with_file_name("BENCH_prof.json");
            std::fs::write(&prof_path, prof_report_json(&stats) + "\n")
                .expect("write BENCH_prof.json");
            eprintln!(
                "wrote {} (per-event-kind dispatch counters)",
                prof_path.display()
            );
            for row in rperf_fabric::prof::shard_snapshot() {
                eprintln!(
                    "  shard {}: {} events, {:.1} ms barrier wait, {} mailbox msgs",
                    row.shard,
                    row.events,
                    row.barrier_ns as f64 / 1e6,
                    row.mailbox_msgs
                );
            }
        }
        #[cfg(not(feature = "sim-prof"))]
        eprintln!(
            "warning: --prof requires a `--features sim-prof` build; no BENCH_prof.json written"
        );
    }
    #[cfg(not(feature = "sim-prof"))]
    let _ = prof_report_json; // referenced only by profiled builds

    // A leaked handle means some packet was injected but never freed at
    // its destination — a correctness bug, not a performance detail.
    if rperf_fabric::packets_leaked_total() > 0 {
        eprintln!("error: packet handles leaked; failing the report");
        std::process::exit(1);
    }

    if bless {
        std::fs::write(
            &baseline_path,
            bless_baseline_json(&stats, baseline.as_ref()) + "\n",
        )
        .expect("write BENCH_baseline.json");
        eprintln!(
            "blessed {} (per-figure min with any prior baseline)",
            baseline_path.display()
        );
    }

    if let Some(pct) = gate_pct {
        let Some(base) = &baseline else {
            eprintln!(
                "error: --gate needs a committed baseline at {}",
                baseline_path.display()
            );
            std::process::exit(1);
        };
        eprintln!("perf gate: fail if any figure or the total drops >{pct}% below baseline");
        let regressions = gate_against_baseline(base, &stats, pct);
        eprintln!("perf gate: per-figure balance floors (fractions of this run's aggregate)");
        let below = gate_figure_floors(&stats);
        if regressions + below > 0 {
            eprintln!(
                "error: {regressions} perf regression(s) beyond {pct}% and {below} figure(s) \
                 below the balance floor; if the slowdown is intentional, re-bless with \
                 `make bench-bless`"
            );
            std::process::exit(1);
        }
        eprintln!("perf gate: ok (all figures within {pct}% of baseline and above the floor)");
    }
}
