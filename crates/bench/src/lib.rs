//! The figure-regeneration harness: every table/figure in the paper's
//! evaluation, reproduced from the simulation.
//!
//! The paper's evaluation consists of Figures 4–13 (it has no numbered
//! tables). Each `figN` function in [`figures`] runs the corresponding
//! scenario sweep — averaged over seeds, as the paper averages three
//! runs — and returns [`rperf_stats::Figure`] series ready to print as
//! Markdown or serialize as JSON.
//!
//! Sweeps execute through [`sweep_over_seeds`], which fans the independent
//! `(point, seed)` simulations across threads (`rperf-runner`) while
//! keeping the output bit-identical to a serial run for any worker count.
//!
//! [`paper`] holds the published numbers for side-by-side comparison in
//! EXPERIMENTS.md; we reproduce *shape* (who wins, slopes, crossovers),
//! not the authors' absolute nanoseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod paper;

use rperf_runner::Sweep;
use rperf_sim::SimDuration;

/// How much simulated time, how many seeds, and how many worker threads
/// to spend per figure sweep.
#[derive(Debug, Clone)]
pub struct Effort {
    /// Seeds to average over (the paper runs each test three times).
    pub seeds: Vec<u64>,
    /// Scale factor on per-figure base durations.
    pub scale: f64,
    /// Worker threads for the `(point, seed)` fan-out (`--jobs`). Any
    /// value produces identical output; see [`sweep_over_seeds`].
    pub jobs: usize,
    /// Worker domains *inside* each simulation (`--shards`): every
    /// scenario runs on `shards` conservatively-synchronized shards of
    /// one fabric. Any value produces identical output — sharding is an
    /// execution strategy, not part of scenario identity.
    pub shards: usize,
}

impl Effort {
    /// Full effort: three seeds, full measurement windows, all cores.
    /// This is what the `fig*` binaries and the report use.
    pub fn full() -> Self {
        Effort {
            seeds: vec![1, 2, 3],
            scale: 1.0,
            jobs: rperf_runner::available_parallelism(),
            shards: 1,
        }
    }

    /// Quick effort for iteration: one seed, 20 % windows, all cores.
    pub fn quick() -> Self {
        Effort {
            seeds: vec![1],
            scale: 0.2,
            jobs: rperf_runner::available_parallelism(),
            shards: 1,
        }
    }

    /// Minimal effort for micro-benchmarking the harness itself: one
    /// seed, 4 % windows, single-threaded (so the number under test is
    /// the simulator's, not the thread pool's).
    pub fn bench() -> Self {
        Effort {
            seeds: vec![1],
            scale: 0.04,
            jobs: 1,
            shards: 1,
        }
    }

    /// Parses the effort flags shared by every bench binary:
    /// `--quick` (1 seed, 20 % windows), `--jobs N` (worker threads;
    /// default: available parallelism) and `--shards N` (worker domains
    /// inside each simulation; default 1).
    pub fn from_args(args: &[String]) -> Self {
        let mut effort = if args.iter().any(|a| a == "--quick") {
            Effort::quick()
        } else {
            Effort::full()
        };
        if let Some(i) = args.iter().position(|a| a == "--jobs") {
            let jobs = args
                .get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                });
            effort.jobs = jobs.max(1);
        }
        if let Some(i) = args.iter().position(|a| a == "--shards") {
            let shards = args
                .get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&s| (1..=64).contains(&s))
                .unwrap_or_else(|| {
                    eprintln!("--shards needs an integer in 1..=64");
                    std::process::exit(2);
                });
            effort.shards = shards;
        }
        effort
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the per-simulation shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// A measurement window of `base_ms` milliseconds under this effort.
    pub fn window(&self, base_ms: f64) -> SimDuration {
        SimDuration::from_secs_f64(base_ms * 1e-3 * self.scale)
    }

    /// Averages `f(seed)` over the configured seeds, serially.
    ///
    /// For sweeps over many points prefer [`sweep_over_seeds`], which
    /// parallelizes across points × seeds.
    pub fn average<F>(&self, mut f: F) -> f64
    where
        F: FnMut(u64) -> f64,
    {
        let sum: f64 = self.seeds.iter().map(|&s| f(s)).sum();
        sum / self.seeds.len() as f64
    }
}

/// The arithmetic mean of an f64 slice (NaN on empty input).
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Runs `run(param, seed)` for every `(param, seed)` pair across
/// `effort.jobs` worker threads, then reduces each point's per-seed
/// results with `merge(param, results)` **in parameter order**.
///
/// Every simulation is an independent deterministic `World`, and results
/// are collected keyed by job index, so the returned `Vec` is
/// bit-identical for any worker count — series, Markdown tables, and JSON
/// artifacts built from it do not change when `--jobs` does. The per-seed
/// results arrive at `merge` in seed order (also independent of worker
/// count or scheduling).
///
/// When the effort also shards each simulation (`--shards N`), the
/// `--jobs` budget is *divided* between the two dimensions via
/// [`rperf_runner::plan_parallelism`] — `jobs / shards` sweep workers,
/// each job running `shards` domain threads — so the total thread count
/// stays at the budget instead of multiplying past it.
pub fn sweep_over_seeds<P, R, T, F, M>(
    effort: &Effort,
    params: &[P],
    run: F,
    mut merge: M,
) -> Vec<T>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
    M: FnMut(&P, Vec<R>) -> T,
{
    assert!(!effort.seeds.is_empty(), "sweep needs at least one seed");
    let n_seeds = effort.seeds.len();
    let job_indices: Vec<usize> = (0..params.len() * n_seeds).collect();
    let plan = rperf_runner::plan_parallelism(effort.jobs, effort.shards);
    let results = Sweep::new(plan.workers).run(job_indices, |_, job| {
        let param = &params[job / n_seeds];
        let seed = effort.seeds[job % n_seeds];
        run(param, seed)
    });

    let mut out = Vec::with_capacity(params.len());
    let mut iter = results.into_iter();
    for param in params {
        let per_seed: Vec<R> = iter.by_ref().take(n_seeds).collect();
        out.push(merge(param, per_seed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_windows_scale() {
        let full = Effort::full().window(10.0);
        let quick = Effort::quick().window(10.0);
        assert_eq!(full, SimDuration::from_ms(10));
        assert_eq!(quick, SimDuration::from_ms(2));
    }

    #[test]
    fn average_is_arithmetic_mean() {
        let e = Effort {
            seeds: vec![1, 2, 3],
            scale: 1.0,
            jobs: 1,
            shards: 1,
        };
        let avg = e.average(|s| s as f64);
        assert_eq!(avg, 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn from_args_parses_quick_and_jobs() {
        let args: Vec<String> = ["--quick", "--jobs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let e = Effort::from_args(&args);
        assert_eq!(e.seeds, vec![1]);
        assert_eq!(e.jobs, 3);
        let full = Effort::from_args(&[]);
        assert_eq!(full.seeds, vec![1, 2, 3]);
        assert!(full.jobs >= 1);
        // --jobs 0 clamps to 1.
        let clamped = Effort::from_args(&["--jobs".to_string(), "0".to_string()]);
        assert_eq!(clamped.jobs, 1);
    }

    #[test]
    fn from_args_parses_shards() {
        let e = Effort::from_args(&["--shards".to_string(), "4".to_string()]);
        assert_eq!(e.shards, 4);
        assert_eq!(Effort::from_args(&[]).shards, 1);
        assert_eq!(Effort::full().with_shards(0).shards, 1);
    }

    #[test]
    fn sharded_effort_divides_the_jobs_budget() {
        // 4 jobs × 2 shards would be 8 threads; the sweep runs 2 workers
        // instead and the output is unchanged (Sweep is order-stable for
        // any worker count).
        let effort = Effort {
            seeds: vec![10, 20],
            scale: 1.0,
            jobs: 4,
            shards: 2,
        };
        let got = sweep_over_seeds(&effort, &[1u64, 2], |&p, s| p * 100 + s, |_, rs| rs);
        assert_eq!(got, vec![vec![110, 120], vec![210, 220]]);
    }

    #[test]
    fn sweep_preserves_param_and_seed_order() {
        let effort = Effort {
            seeds: vec![10, 20, 30],
            scale: 1.0,
            jobs: 4,
            shards: 1,
        };
        let params = [1u64, 2, 3];
        let got = sweep_over_seeds(
            &effort,
            &params,
            |&p, seed| p * 1000 + seed,
            |&p, rs| (p, rs),
        );
        assert_eq!(
            got,
            vec![
                (1, vec![1010, 1020, 1030]),
                (2, vec![2010, 2020, 2030]),
                (3, vec![3010, 3020, 3030]),
            ]
        );
    }

    #[test]
    fn sweep_output_is_independent_of_worker_count() {
        let params: Vec<u64> = (0..17).collect();
        let run = |&p: &u64, seed: u64| (p as f64).sqrt() * seed as f64;
        let merge = |_: &u64, rs: Vec<f64>| mean(&rs);
        let base = Effort {
            seeds: vec![1, 2, 3],
            scale: 1.0,
            jobs: 1,
            shards: 1,
        };
        let serial = sweep_over_seeds(&base, &params, run, merge);
        for jobs in [2, 4, 9] {
            let e = base.clone().with_jobs(jobs);
            let parallel = sweep_over_seeds(&e, &params, run, merge);
            // Bit-identical, not just approximately equal.
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "jobs = {jobs}");
            }
        }
    }
}
