//! The figure-regeneration harness: every table/figure in the paper's
//! evaluation, reproduced from the simulation.
//!
//! The paper's evaluation consists of Figures 4–13 (it has no numbered
//! tables). Each `figN` function in [`figures`] runs the corresponding
//! scenario sweep — averaged over seeds, as the paper averages three
//! runs — and returns [`rperf_stats::Figure`] series ready to print as
//! Markdown or serialize as JSON.
//!
//! [`paper`] holds the published numbers for side-by-side comparison in
//! EXPERIMENTS.md; we reproduce *shape* (who wins, slopes, crossovers),
//! not the authors' absolute nanoseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod paper;

use rperf_sim::SimDuration;

/// How much simulated time and how many seeds to spend per data point.
#[derive(Debug, Clone)]
pub struct Effort {
    /// Seeds to average over (the paper runs each test three times).
    pub seeds: Vec<u64>,
    /// Scale factor on per-figure base durations.
    pub scale: f64,
}

impl Effort {
    /// Full effort: three seeds, full measurement windows. This is what
    /// the `fig*` binaries and the report use.
    pub fn full() -> Self {
        Effort {
            seeds: vec![1, 2, 3],
            scale: 1.0,
        }
    }

    /// Quick effort for iteration: one seed, 20 % windows.
    pub fn quick() -> Self {
        Effort {
            seeds: vec![1],
            scale: 0.2,
        }
    }

    /// Minimal effort for Criterion benchmarking of the harness itself.
    pub fn bench() -> Self {
        Effort {
            seeds: vec![1],
            scale: 0.04,
        }
    }

    /// A measurement window of `base_ms` milliseconds under this effort.
    pub fn window(&self, base_ms: f64) -> SimDuration {
        SimDuration::from_secs_f64(base_ms * 1e-3 * self.scale)
    }

    /// Averages `f(seed)` over the configured seeds.
    pub fn average<F>(&self, mut f: F) -> f64
    where
        F: FnMut(u64) -> f64,
    {
        let sum: f64 = self.seeds.iter().map(|&s| f(s)).sum();
        sum / self.seeds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_windows_scale() {
        let full = Effort::full().window(10.0);
        let quick = Effort::quick().window(10.0);
        assert_eq!(full, SimDuration::from_ms(10));
        assert_eq!(quick, SimDuration::from_ms(2));
    }

    #[test]
    fn average_is_arithmetic_mean() {
        let e = Effort {
            seeds: vec![1, 2, 3],
            scale: 1.0,
        };
        let avg = e.average(|s| s as f64);
        assert_eq!(avg, 2.0);
    }
}
