//! Criterion benchmarks: one per paper figure.
//!
//! Each benchmark runs a scaled-down version of the figure's workload
//! (single seed, 4 % measurement window) and measures the wall-clock cost
//! of regenerating the data point — i.e. the simulator's throughput on
//! that scenario. Run `cargo run --release -p rperf-bench --bin report`
//! for the full-effort figure data itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rperf_bench::{figures, Effort};

fn bench_effort() -> Effort {
    Effort::bench()
}

fn fig4(c: &mut Criterion) {
    c.bench_function("fig4_rperf_latency_sweep", |b| {
        b.iter(|| figures::fig4(&bench_effort()))
    });
}

fn fig5(c: &mut Criterion) {
    c.bench_function("fig5_bandwidth_sweep", |b| {
        b.iter(|| figures::fig5(&bench_effort()))
    });
}

fn fig6(c: &mut Criterion) {
    c.bench_function("fig6_baseline_tools_sweep", |b| {
        b.iter(|| figures::fig6(&bench_effort()))
    });
}

fn fig7(c: &mut Criterion) {
    c.bench_function("fig7_converged_traffic", |b| {
        b.iter(|| figures::fig7(&bench_effort()))
    });
}

fn fig8_9(c: &mut Criterion) {
    c.bench_function("fig8_fig9_payload_sweep", |b| {
        b.iter(|| figures::fig8_fig9(&bench_effort()))
    });
}

fn fig10(c: &mut Criterion) {
    c.bench_function("fig10_scheduling_policies", |b| {
        b.iter(|| figures::fig10(&bench_effort()))
    });
}

fn fig11(c: &mut Criterion) {
    c.bench_function("fig11_multihop", |b| {
        b.iter(|| figures::fig11(&bench_effort()))
    });
}

fn fig12(c: &mut Criterion) {
    c.bench_function("fig12_qos_setups", |b| {
        b.iter(|| figures::fig12(&bench_effort()))
    });
}

fn fig13(c: &mut Criterion) {
    c.bench_function("fig13_gaming_shares", |b| {
        b.iter(|| figures::fig13(&bench_effort()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig4, fig5, fig6, fig7, fig8_9, fig10, fig11, fig12, fig13
}
criterion_main!(benches);
