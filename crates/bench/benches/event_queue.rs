//! Microbenchmarks for the simulator's event queue: raw schedule+pop
//! throughput, the steady-state churn pattern every simulation runs, the
//! cost of growing an unsized queue vs. pre-sizing it, and a head-to-head
//! of the timer wheel against the retired `BinaryHeap` implementation
//! (kept as [`rperf_sim::reference::HeapEventQueue`]) across queue depths
//! and delay distributions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rperf_sim::reference::HeapEventQueue;
use rperf_sim::{EventQueue, SimDuration, SimTime};

/// A cheap deterministic time source so the heap sees out-of-order
/// arrivals (in-order inserts would never exercise sift-up).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn bench_fill_then_drain(c: &mut Criterion) {
    c.bench_function("event_queue/fill_drain_64k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1 << 16);
            let mut rng = Lcg(1);
            for i in 0..(1u64 << 16) {
                // Increasing base plus jitter: past-scheduling is a panic.
                q.schedule(SimTime::from_ns(i * 8 + rng.next() % 4096), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

fn bench_steady_state_churn(c: &mut Criterion) {
    // The pattern the driver loop actually runs: a small resident set of
    // pending events with one pop and ~one push per handled event.
    c.bench_function("event_queue/churn_1k_resident", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut rng = Lcg(7);
            for i in 0..1024u64 {
                q.schedule(SimTime::from_ns(rng.next() % 10_000), i);
            }
            let mut sum = 0u64;
            for _ in 0..100_000u64 {
                let (now, e) = q.pop().expect("resident set never drains");
                sum = sum.wrapping_add(e);
                q.schedule(
                    now + rperf_sim::SimDuration::from_ns(1 + rng.next() % 1000),
                    e,
                );
            }
            black_box(sum)
        });
    });
}

fn bench_presize_vs_grow(c: &mut Criterion) {
    c.bench_function("event_queue/fill_64k_presized", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1 << 16);
            for i in 0..(1u64 << 16) {
                q.schedule(SimTime::from_ns(i), i);
            }
            black_box(q.len())
        });
    });
    c.bench_function("event_queue/fill_64k_growing", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..(1u64 << 16) {
                q.schedule(SimTime::from_ns(i), i);
            }
            black_box(q.len())
        });
    });
}

/// Delay distribution for the wheel-vs-heap churn comparison.
///
/// `Uniform` spreads reschedules evenly over a 1 µs horizon — every event
/// lands in the wheel's bottom level. `Bimodal` mixes 90% near events
/// (≤ 4 ns, the serialize/propagate pattern) with 10% far events (~1 ms,
/// retransmit-timeout scale) that must cascade down through upper levels.
#[derive(Clone, Copy)]
enum DelayMix {
    Uniform,
    Bimodal,
}

impl DelayMix {
    fn name(self) -> &'static str {
        match self {
            DelayMix::Uniform => "uniform",
            DelayMix::Bimodal => "bimodal",
        }
    }

    fn delay(self, rng: &mut Lcg) -> SimDuration {
        match self {
            DelayMix::Uniform => SimDuration::from_ns(1 + rng.next() % 1000),
            DelayMix::Bimodal => {
                if rng.next().is_multiple_of(10) {
                    SimDuration::from_ns(1_000_000 + rng.next() % 65_536)
                } else {
                    SimDuration::from_ns(1 + rng.next() % 4)
                }
            }
        }
    }
}

/// One churn round on either queue implementation: fill to `depth`, then
/// pop+reschedule `iters` times. This is the simulator's steady-state
/// access pattern, so it is the number that predicts `report` throughput.
macro_rules! churn {
    ($queue:expr, $depth:expr, $iters:expr, $mix:expr, $seed:expr) => {{
        let mut q = $queue;
        let mut rng = Lcg($seed);
        for i in 0..$depth as u64 {
            q.schedule(SimTime::from_ns(rng.next() % 10_000), i);
        }
        let mut sum = 0u64;
        for _ in 0..$iters as u64 {
            let (now, e) = q.pop().expect("resident set never drains");
            sum = sum.wrapping_add(e);
            q.schedule(now + $mix.delay(&mut rng), e);
        }
        black_box(sum)
    }};
}

fn bench_wheel_vs_heap(c: &mut Criterion) {
    // Iteration count shrinks with depth so each benchmark does similar
    // total work; at 64k resident events the heap's log-factor dominates.
    for &(depth, iters) in &[(64usize, 50_000u64), (1 << 10, 50_000), (1 << 16, 20_000)] {
        for &mix in &[DelayMix::Uniform, DelayMix::Bimodal] {
            let label = format!("event_queue/wheel_d{}_{}", depth, mix.name());
            c.bench_function(&label, |b| {
                b.iter(|| churn!(EventQueue::with_capacity(depth), depth, iters, mix, 11))
            });
            let label = format!("event_queue/heap_d{}_{}", depth, mix.name());
            c.bench_function(&label, |b| {
                b.iter(|| churn!(HeapEventQueue::with_capacity(depth), depth, iters, mix, 11))
            });
        }
    }
}

criterion_group!(
    benches,
    bench_fill_then_drain,
    bench_steady_state_churn,
    bench_presize_vs_grow,
    bench_wheel_vs_heap
);
criterion_main!(benches);
