//! Microbenchmarks for the simulator's event queue: raw schedule+pop
//! throughput, the steady-state churn pattern every simulation runs, and
//! the cost of growing an unsized heap vs. pre-sizing it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rperf_sim::{EventQueue, SimTime};

/// A cheap deterministic time source so the heap sees out-of-order
/// arrivals (in-order inserts would never exercise sift-up).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn bench_fill_then_drain(c: &mut Criterion) {
    c.bench_function("event_queue/fill_drain_64k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1 << 16);
            let mut rng = Lcg(1);
            for i in 0..(1u64 << 16) {
                // Increasing base plus jitter: past-scheduling is a panic.
                q.schedule(SimTime::from_ns(i * 8 + rng.next() % 4096), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

fn bench_steady_state_churn(c: &mut Criterion) {
    // The pattern the driver loop actually runs: a small resident set of
    // pending events with one pop and ~one push per handled event.
    c.bench_function("event_queue/churn_1k_resident", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut rng = Lcg(7);
            for i in 0..1024u64 {
                q.schedule(SimTime::from_ns(rng.next() % 10_000), i);
            }
            let mut sum = 0u64;
            for _ in 0..100_000u64 {
                let (now, e) = q.pop().expect("resident set never drains");
                sum = sum.wrapping_add(e);
                q.schedule(
                    now + rperf_sim::SimDuration::from_ns(1 + rng.next() % 1000),
                    e,
                );
            }
            black_box(sum)
        });
    });
}

fn bench_presize_vs_grow(c: &mut Criterion) {
    c.bench_function("event_queue/fill_64k_presized", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1 << 16);
            for i in 0..(1u64 << 16) {
                q.schedule(SimTime::from_ns(i), i);
            }
            black_box(q.len())
        });
    });
    c.bench_function("event_queue/fill_64k_growing", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..(1u64 << 16) {
                q.schedule(SimTime::from_ns(i), i);
            }
            black_box(q.len())
        });
    });
}

criterion_group!(
    benches,
    bench_fill_then_drain,
    bench_steady_state_churn,
    bench_presize_vs_grow
);
criterion_main!(benches);
