//! Differential test for sharded execution: running every paper figure
//! on a partitioned fabric (`--shards N`) must reproduce the sequential
//! engine bit for bit.
//!
//! The golden JSON files under `tests/golden/` are the shards = 1
//! reference (already enforced by `determinism.rs`); here each figure is
//! re-rendered at shards = 2 and shards = 4 and compared byte for byte
//! against those same goldens. This covers every topology, device
//! profile, scheduling policy, and QoS mode the figures exercise —
//! including the jitter RNG draws of the hardware profile, whose order
//! the chronology-major mailbox key must preserve exactly.
//!
//! Both tests are `#[ignore]`d in the default dev-profile suite and run
//! in the release profile by `make shard-smoke` (a `make ci` step): on a
//! small host the conservative-window barriers turn into context
//! switches, and the sparse figure sweeps — nanosecond windows, one
//! in-flight message — pay that price per *window*, which costs tens of
//! dev-profile minutes on one core. The release run is minutes; the
//! always-on dev-profile differential is the random-topology property
//! suite in `crates/core/tests/prop_shard.rs` (seconds).

use rperf_bench::{figures, Effort};

const GOLDEN: [(&str, &str); 11] = [
    ("4", include_str!("golden/fig4.json")),
    ("5", include_str!("golden/fig5.json")),
    ("6", include_str!("golden/fig6.json")),
    ("7", include_str!("golden/fig7.json")),
    ("8", include_str!("golden/fig8.json")),
    ("9", include_str!("golden/fig9.json")),
    ("10", include_str!("golden/fig10.json")),
    ("11", include_str!("golden/fig11.json")),
    ("12", include_str!("golden/fig12.json")),
    ("13", include_str!("golden/fig13.json")),
    ("clos", include_str!("golden/fig_clos.json")),
];

fn tiny(shards: usize) -> Effort {
    Effort {
        seeds: vec![1, 2],
        scale: 0.05,
        jobs: 1,
        shards,
    }
}

fn rendered(id: &str, shards: usize) -> String {
    figures::by_id(id, &tiny(shards))
        .unwrap_or_else(|| panic!("unknown figure id {id}"))
        .iter()
        .map(|f| f.to_json() + "\n")
        .collect()
}

#[test]
#[ignore = "release-profile gate, run by `make shard-smoke`; see module docs"]
fn every_figure_is_byte_identical_at_two_shards() {
    for (id, golden) in GOLDEN {
        assert_eq!(
            rendered(id, 2),
            golden,
            "fig{id} diverged between --shards 1 and --shards 2"
        );
    }
}

#[test]
#[ignore = "release-profile gate, run by `make shard-smoke`; see module docs"]
fn every_figure_is_byte_identical_at_four_shards() {
    for (id, golden) in GOLDEN {
        assert_eq!(
            rendered(id, 4),
            golden,
            "fig{id} diverged between --shards 1 and --shards 4"
        );
    }
}
