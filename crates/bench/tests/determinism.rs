//! Regression test for the parallel sweep runner: fanning `(point, seed)`
//! simulations across worker threads must not change a single output bit.
//!
//! Runs the converged-traffic sweep of Fig. 7 — the heaviest multi-app
//! scenario in the suite — serially and with four workers, and compares
//! the serialized figures byte for byte.

use rperf_bench::{figures, Effort};

fn tiny(jobs: usize) -> Effort {
    Effort {
        seeds: vec![1, 2],
        scale: 0.05,
        jobs,
        shards: 1,
    }
}

#[test]
fn converged_sweep_is_byte_identical_across_worker_counts() {
    let (serial_a, serial_b) = figures::fig7(&tiny(1));
    let (par_a, par_b) = figures::fig7(&tiny(4));
    assert_eq!(
        serial_a.to_json(),
        par_a.to_json(),
        "fig7a diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        serial_b.to_json(),
        par_b.to_json(),
        "fig7b diverged between --jobs 1 and --jobs 4"
    );
    // Sanity: the comparison is over real content, not two empty figures.
    assert!(serial_a.to_json().contains("\"fig7a\""));
    assert!(!serial_a.series.is_empty() && !serial_a.series[0].x.is_empty());
}

/// The pre-refactor JSON of every paper figure, dumped by the `figure`
/// binary at `--seeds 2 --scale 0.05 --jobs 1 --json` before the figures
/// moved onto the declarative scenario-spec path. The spec-driven
/// executor must reproduce each byte, serially and in parallel.
const GOLDEN: [(&str, &str); 11] = [
    ("4", include_str!("golden/fig4.json")),
    ("5", include_str!("golden/fig5.json")),
    ("6", include_str!("golden/fig6.json")),
    ("7", include_str!("golden/fig7.json")),
    ("8", include_str!("golden/fig8.json")),
    ("9", include_str!("golden/fig9.json")),
    ("10", include_str!("golden/fig10.json")),
    ("11", include_str!("golden/fig11.json")),
    ("12", include_str!("golden/fig12.json")),
    ("13", include_str!("golden/fig13.json")),
    ("clos", include_str!("golden/fig_clos.json")),
];

fn rendered(id: &str, jobs: usize) -> String {
    figures::by_id(id, &tiny(jobs))
        .unwrap_or_else(|| panic!("unknown figure id {id}"))
        .iter()
        .map(|f| f.to_json() + "\n")
        .collect()
}

#[test]
fn every_figure_matches_its_pre_refactor_golden_serially() {
    for (id, golden) in GOLDEN {
        assert_eq!(
            rendered(id, 1),
            golden,
            "fig{id} diverged from the pre-refactor output at --jobs 1"
        );
    }
}

#[test]
fn every_figure_matches_its_pre_refactor_golden_in_parallel() {
    for (id, golden) in GOLDEN {
        assert_eq!(
            rendered(id, 4),
            golden,
            "fig{id} diverged from the pre-refactor output at --jobs 4"
        );
    }
}

#[test]
fn one_to_one_sweep_is_byte_identical_across_worker_counts() {
    let effort = Effort {
        seeds: vec![1],
        scale: 0.03,
        jobs: 1,
        shards: 1,
    };
    let serial = figures::fig5(&effort).to_json();
    let parallel = figures::fig5(&effort.clone().with_jobs(3)).to_json();
    assert_eq!(
        serial, parallel,
        "fig5 diverged between --jobs 1 and --jobs 3"
    );
}
