//! Regression test for the parallel sweep runner: fanning `(point, seed)`
//! simulations across worker threads must not change a single output bit.
//!
//! Runs the converged-traffic sweep of Fig. 7 — the heaviest multi-app
//! scenario in the suite — serially and with four workers, and compares
//! the serialized figures byte for byte.

use rperf_bench::{figures, Effort};

fn tiny(jobs: usize) -> Effort {
    Effort {
        seeds: vec![1, 2],
        scale: 0.05,
        jobs,
    }
}

#[test]
fn converged_sweep_is_byte_identical_across_worker_counts() {
    let (serial_a, serial_b) = figures::fig7(&tiny(1));
    let (par_a, par_b) = figures::fig7(&tiny(4));
    assert_eq!(
        serial_a.to_json(),
        par_a.to_json(),
        "fig7a diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        serial_b.to_json(),
        par_b.to_json(),
        "fig7b diverged between --jobs 1 and --jobs 4"
    );
    // Sanity: the comparison is over real content, not two empty figures.
    assert!(serial_a.to_json().contains("\"fig7a\""));
    assert!(!serial_a.series.is_empty() && !serial_a.series[0].x.is_empty());
}

#[test]
fn one_to_one_sweep_is_byte_identical_across_worker_counts() {
    let effort = Effort {
        seeds: vec![1],
        scale: 0.03,
        jobs: 1,
    };
    let serial = figures::fig5(&effort).to_json();
    let parallel = figures::fig5(&effort.clone().with_jobs(3)).to_json();
    assert_eq!(
        serial, parallel,
        "fig5 diverged between --jobs 1 and --jobs 3"
    );
}
