//! Property tests for histograms and meters.

use proptest::prelude::*;
use rperf_stats::{BandwidthMeter, LatencyHistogram, Welford};

fn exact_percentile(sorted: &[u64], pct: f64) -> u64 {
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

proptest! {
    /// Histogram percentiles agree with exact quantiles within the
    /// documented relative error.
    #[test]
    fn percentiles_match_exact_quantiles(
        mut samples in prop::collection::vec(1u64..1_000_000_000, 1..500),
        pct in 1.0f64..100.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let exact = exact_percentile(&samples, pct);
        let approx = h.percentile(pct);
        let err = (approx as f64 - exact as f64).abs() / exact as f64;
        // Bucketing can shift the estimate across one sample boundary;
        // allow the bucket width on either side of the exact value.
        prop_assert!(
            err <= 2.0 * h.relative_error() + 1e-12,
            "pct {} exact {} approx {} err {}",
            pct, exact, approx, err
        );
    }

    /// Count/min/max/mean are exact regardless of bucketing.
    #[test]
    fn exact_moments(samples in prop::collection::vec(0u64..u32::MAX as u64, 1..300)) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6 * mean.max(1.0));
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn merge_is_union(
        a in prop::collection::vec(1u64..1_000_000, 0..200),
        b in prop::collection::vec(1u64..1_000_000, 0..200),
        pct in 0.0f64..=100.0,
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hu = LatencyHistogram::new();
        for &x in &a { ha.record(x); hu.record(x); }
        for &x in &b { hb.record(x); hu.record(x); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.percentile(pct), hu.percentile(pct));
    }

    /// The meter's byte accounting is exact and windowing is monotone.
    #[test]
    fn meter_accounting(
        deliveries in prop::collection::vec((1u64..1_000_000_000, 1u64..10_000), 1..100),
        window_start in 0u64..500_000_000,
    ) {
        let mut m = BandwidthMeter::new();
        m.open_window(window_start);
        let mut expected = 0u64;
        for &(at, bytes) in &deliveries {
            m.record(at, bytes);
            if at >= window_start {
                expected += bytes;
            }
        }
        prop_assert_eq!(m.bytes(), expected);
        // Bandwidth over a longer horizon can only be lower or equal.
        let end = 1_000_000_001;
        prop_assert!(m.gbps_until(end * 2) <= m.gbps_until(end) + 1e-12);
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.population_variance() - var).abs() <= 1e-4 * var.max(1.0));
    }
}
