//! Statistics primitives for the rperf-rs measurement suite.
//!
//! The paper's headline metrics are **tail latency percentiles** (50th and
//! 99.9th) and **achieved bandwidth**; this crate provides the machinery to
//! compute both from millions of samples without storing them:
//!
//! * [`LatencyHistogram`] — a log-linear bucketed histogram (HDR-histogram
//!   style) with configurable relative precision, built for recording
//!   picosecond RTT samples and extracting arbitrary percentiles.
//! * [`BandwidthMeter`] — byte accounting over an interval, reporting Gbps.
//! * [`Welford`] — numerically stable running mean / variance.
//! * [`LatencySummary`] — the percentile digest every experiment reports.
//! * [`Series`], [`Figure`] — labelled data series matching the paper's
//!   figures, with Markdown rendering for EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use rperf_stats::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let p50 = h.percentile(50.0);
//! assert!((495..=505).contains(&p50), "p50 was {p50}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod json;
mod meter;
mod series;
mod summary;
mod welford;

pub use histogram::LatencyHistogram;
pub use meter::{BandwidthMeter, GBPS};
pub use series::{Figure, Series};
pub use summary::LatencySummary;
pub use welford::Welford;
