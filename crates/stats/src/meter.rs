//! Bandwidth accounting.

/// Bits per second in one gigabit per second.
pub const GBPS: f64 = 1e9;

/// Counts payload bytes delivered over a measurement interval and reports
/// the achieved bandwidth in Gbps.
///
/// Timestamps are `u64` picoseconds (matching `rperf_sim::SimTime::as_ps`);
/// the meter itself is unit-agnostic about what the bytes mean (payload vs
/// wire bytes) — the caller decides what to feed it.
///
/// A meter can be windowed: [`BandwidthMeter::open_window`] discards
/// everything recorded before the given instant, which is how experiments
/// exclude warm-up traffic.
///
/// # Examples
///
/// ```
/// use rperf_stats::BandwidthMeter;
///
/// let mut m = BandwidthMeter::new();
/// m.open_window(0);
/// m.record(1_000_000, 125);              // 125 bytes at t = 1 µs
/// let gbps = m.gbps_until(2_000_000);    // over 2 µs: 1000 bits / 2 µs
/// assert!((gbps - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    window_start_ps: u64,
    bytes: u64,
    messages: u64,
    last_ps: u64,
}

impl BandwidthMeter {
    /// Creates an empty meter with the window open at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a fresh measurement window at `now_ps`, discarding all prior
    /// accounting.
    pub fn open_window(&mut self, now_ps: u64) {
        self.window_start_ps = now_ps;
        self.bytes = 0;
        self.messages = 0;
        self.last_ps = now_ps;
    }

    /// Records `bytes` delivered at `now_ps`. Bytes timestamped before the
    /// window start are ignored.
    pub fn record(&mut self, now_ps: u64, bytes: u64) {
        if now_ps < self.window_start_ps {
            return;
        }
        self.bytes += bytes;
        self.messages += 1;
        self.last_ps = self.last_ps.max(now_ps);
    }

    /// Total bytes recorded in the window.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of `record` calls in the window (message/packet count).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Achieved bandwidth in Gbps over `[window_start, end_ps]`.
    ///
    /// Returns 0.0 for an empty or zero-length window.
    pub fn gbps_until(&self, end_ps: u64) -> f64 {
        let span = end_ps.saturating_sub(self.window_start_ps);
        if span == 0 {
            return 0.0;
        }
        let bits = self.bytes as f64 * 8.0;
        let secs = span as f64 / 1e12;
        bits / secs / GBPS
    }

    /// Message rate in million messages per second over the window ending
    /// at `end_ps`.
    pub fn mpps_until(&self, end_ps: u64) -> f64 {
        let span = end_ps.saturating_sub(self.window_start_ps);
        if span == 0 {
            return 0.0;
        }
        let secs = span as f64 / 1e12;
        self.messages as f64 / secs / 1e6
    }

    /// Timestamp of the last recorded delivery.
    pub fn last_record_ps(&self) -> u64 {
        self.last_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_computation() {
        let mut m = BandwidthMeter::new();
        // 7 Gbps = 7e9 bits/s; over 1 ms that is 875_000 bytes.
        m.record(500_000_000, 875_000);
        let gbps = m.gbps_until(1_000_000_000); // 1 ms
        assert!((gbps - 7.0).abs() < 1e-9, "got {gbps}");
    }

    #[test]
    fn window_excludes_warmup() {
        let mut m = BandwidthMeter::new();
        m.record(10, 1_000_000); // warm-up traffic
        m.open_window(1_000_000);
        m.record(500_000, 10); // before new window start: dropped
        m.record(1_500_000, 125);
        assert_eq!(m.bytes(), 125);
        assert_eq!(m.messages(), 1);
    }

    #[test]
    fn zero_span_is_zero() {
        let mut m = BandwidthMeter::new();
        m.open_window(100);
        m.record(100, 10);
        assert_eq!(m.gbps_until(100), 0.0);
        assert_eq!(m.mpps_until(100), 0.0);
    }

    #[test]
    fn mpps_counts_messages() {
        let mut m = BandwidthMeter::new();
        for i in 0..1000u64 {
            m.record(i * 1_000_000, 64);
        }
        // 1000 messages over 1 µs window → 1000 Mpps? No: 1000 msgs / 1e-6 s
        // = 1e9 msg/s = 1000 Mpps.
        let mpps = m.mpps_until(1_000_000_000);
        assert!((mpps - 1.0).abs() < 1e-9, "got {mpps}");
    }

    #[test]
    fn last_record_tracked() {
        let mut m = BandwidthMeter::new();
        m.record(5, 1);
        m.record(3, 1);
        assert_eq!(m.last_record_ps(), 5);
    }
}
