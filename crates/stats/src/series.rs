//! Labelled data series and figure tables.

use std::fmt::Write as _;

use crate::json;

/// One labelled series of `(x, y)` points — e.g. "99.9th (w/ switch)".
///
/// # Examples
///
/// ```
/// use rperf_stats::Series;
///
/// let mut s = Series::new("50th");
/// s.push(64.0, 0.43);
/// s.push(128.0, 0.44);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.y_at(64.0), Some(0.43));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X coordinates (payload size, number of BSGs, …).
    pub x: Vec<f64>,
    /// Y values (RTT in µs, bandwidth in Gbps, …).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The y value at the first point whose x equals `x` exactly.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.x.iter().position(|&xi| xi == x).map(|i| self.y[i])
    }

    /// Serializes the series as deterministic JSON (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        json::object([
            ("label", json::string(&self.label)),
            ("x", json::array(self.x.iter().map(|&v| json::num(v)))),
            ("y", json::array(self.y.iter().map(|&v| json::num(v)))),
        ])
    }
}

/// A reproduction of one paper figure: a set of series over a shared x-axis.
///
/// Renders as a Markdown table for EXPERIMENTS.md and serializes to
/// deterministic JSON ([`Figure::to_json`]) for downstream plotting and
/// for byte-exact comparison of sweep results.
///
/// # Examples
///
/// ```
/// use rperf_stats::{Figure, Series};
///
/// let mut fig = Figure::new("fig4", "RTT vs payload", "Payload (B)", "RTT (ns)");
/// let mut s = Series::new("50th");
/// s.push(64.0, 430.0);
/// fig.add_series(s);
/// let md = fig.to_markdown();
/// assert!(md.contains("| Payload (B) | 50th |"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Short identifier ("fig4").
    pub id: String,
    /// Human title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// The union of all x values across series, sorted ascending.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN x values"));
        xs.dedup();
        xs
    }

    /// Renders the figure as a Markdown table, one row per x value and one
    /// column per series (missing points render as `-`).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let mut header = format!("| {} |", self.x_label);
        let mut rule = String::from("|---|");
        for s in &self.series {
            let _ = write!(header, " {} |", s.label);
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for x in self.x_values() {
            let mut row = if x == x.trunc() && x.abs() < 1e15 {
                format!("| {} |", x as i64)
            } else {
                format!("| {x:.3} |")
            };
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, " {y:.3} |");
                    }
                    None => row.push_str(" - |"),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "Units: x = {}, y = {}.", self.x_label, self.y_label);
        out
    }

    /// Serializes the figure (id, labels, every series) as deterministic
    /// JSON: identical data produces identical bytes, which is what the
    /// parallel-sweep determinism test asserts.
    pub fn to_json(&self) -> String {
        json::object([
            ("id", json::string(&self.id)),
            ("title", json::string(&self.title)),
            ("x_label", json::string(&self.x_label)),
            ("y_label", json::string(&self.y_label)),
            (
                "series",
                json::array(self.series.iter().map(|s| s.to_json())),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut fig = Figure::new("figX", "Test", "Payload (B)", "RTT (us)");
        let mut a = Series::new("50th");
        a.push(64.0, 1.0);
        a.push(128.0, 2.0);
        let mut b = Series::new("99.9th");
        b.push(64.0, 3.0);
        fig.add_series(a);
        fig.add_series(b);
        fig
    }

    #[test]
    fn x_values_are_sorted_union() {
        let fig = sample_figure();
        assert_eq!(fig.x_values(), vec![64.0, 128.0]);
    }

    #[test]
    fn markdown_has_all_rows_and_missing_cells() {
        let md = sample_figure().to_markdown();
        assert!(md.contains("| 64 | 1.000 | 3.000 |"));
        assert!(md.contains("| 128 | 2.000 | - |"));
    }

    #[test]
    fn y_at_exact_match_only() {
        let fig = sample_figure();
        assert_eq!(fig.series[0].y_at(64.0), Some(1.0));
        assert_eq!(fig.series[0].y_at(65.0), None);
    }

    #[test]
    fn figure_serializes_to_deterministic_json() {
        let fig = sample_figure();
        let j = fig.to_json();
        assert!(j.starts_with(r#"{"id":"figX""#), "{j}");
        assert!(
            j.contains(r#""label":"50th","x":[64.0,128.0],"y":[1.0,2.0]"#),
            "{j}"
        );
        // Determinism: same data, same bytes.
        assert_eq!(j, sample_figure().to_json());
    }

    #[test]
    fn empty_series_flags() {
        let s = Series::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
