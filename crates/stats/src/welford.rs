//! Numerically stable running statistics.

/// Welford's online algorithm for mean and variance, plus min/max.
///
/// # Examples
///
/// ```
/// use rperf_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.add(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_stdev(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 if fewer than one observation).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0.0 if fewer than two).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stdev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stdev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Standard error of the mean (0.0 if fewer than two observations).
    pub fn standard_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.sample_stdev() / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_computation() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 50.0 + 100.0).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn empty_is_benign() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
        assert_eq!(w.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.add(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
    }

    #[test]
    fn min_max_track() {
        let mut w = Welford::new();
        for x in [3.0, -1.0, 7.0, 2.0] {
            w.add(x);
        }
        assert_eq!(w.min(), -1.0);
        assert_eq!(w.max(), 7.0);
        assert_eq!(w.count(), 4);
    }
}
