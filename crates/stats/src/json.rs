//! A tiny deterministic JSON writer.
//!
//! The figure artifacts (`*.json` next to EXPERIMENTS.md, the bench
//! report) need a serializer whose byte output is a pure function of the
//! data — the parallel-sweep determinism test compares serialized figures
//! byte-for-byte. `serde`/`serde_json` are unavailable in the offline
//! build environment (DESIGN.md §6), and this writer is all the suite
//! needs: objects, arrays, strings, and numbers.

use std::fmt::Write as _;

/// Formats an `f64` as a JSON token.
///
/// Uses Rust's shortest-roundtrip `Display`, which is deterministic across
/// platforms; non-finite values (which JSON cannot carry) render as `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `Display` omits the decimal point for integral values; keep it
        // so consumers see a float-typed column throughout.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Formats a `u64` as a JSON integer token.
///
/// Counts (iterations, node indices, picosecond instants) serialize as
/// integers — unlike [`num`], which keeps a float shape — so consumers can
/// tell exact quantities from measured ones.
pub fn uint(x: u64) -> String {
    format!("{x}")
}

/// Escapes and quotes a string as a JSON token.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An array of already-serialized JSON tokens.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An object from `(key, already-serialized value)` pairs, in the order
/// given (no reordering: key order is part of the deterministic output).
pub fn object<'a, I: IntoIterator<Item = (&'a str, String)>>(fields: I) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip_and_keep_float_shape() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(2.0), "2.0");
        assert_eq!(num(-0.25), "-0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn uints_are_plain_integers() {
        assert_eq!(uint(0), "0");
        assert_eq!(uint(5_000_000_000), "5000000000");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn containers_compose() {
        let obj = object([("id", string("fig4")), ("xs", array([num(1.0), num(2.5)]))]);
        assert_eq!(obj, r#"{"id":"fig4","xs":[1.0,2.5]}"#);
    }
}
