//! A tiny deterministic JSON writer — and the matching reader.
//!
//! The figure artifacts (`*.json` next to EXPERIMENTS.md, the bench
//! report) need a serializer whose byte output is a pure function of the
//! data — the parallel-sweep determinism test compares serialized figures
//! byte-for-byte. `serde`/`serde_json` are unavailable in the offline
//! build environment (DESIGN.md §6), and this writer is all the suite
//! needs: objects, arrays, strings, and numbers.
//!
//! [`parse`] is the inverse: a recursive-descent reader for the same
//! dialect, used by the perf-regression gate (`report --gate`) to compare
//! a fresh bench run against the committed baseline, and by the serving
//! layer's tests to assert on stats snapshots. Objects keep their fields
//! in document order in a `Vec` — no hash maps (determinism lint D1), no
//! reordering.

use std::fmt::Write as _;

/// Formats an `f64` as a JSON token.
///
/// Uses Rust's shortest-roundtrip `Display`, which is deterministic across
/// platforms; non-finite values (which JSON cannot carry) render as `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        // `Display` omits the decimal point for integral values; keep it
        // so consumers see a float-typed column throughout.
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Formats a `u64` as a JSON integer token.
///
/// Counts (iterations, node indices, picosecond instants) serialize as
/// integers — unlike [`num`], which keeps a float shape — so consumers can
/// tell exact quantities from measured ones.
pub fn uint(x: u64) -> String {
    format!("{x}")
}

/// Escapes and quotes a string as a JSON token.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An array of already-serialized JSON tokens.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An object from `(key, already-serialized value)` pairs, in the order
/// given (no reordering: key order is part of the deterministic output).
pub fn object<'a, I: IntoIterator<Item = (&'a str, String)>>(fields: I) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(k));
        out.push(':');
        out.push_str(&v);
    }
    out.push('}');
    out
}

/// A parsed JSON value.
///
/// Object fields keep document order (`Vec` of pairs, not a map): the
/// writer's key order is part of the deterministic artifact format, and
/// the reader preserves it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; artifact integers fit exactly
    /// up to 2^53, far beyond any counter the suite emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9.007199254740992e15 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset and a short message.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("byte {pos}: trailing characters after document"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        None => Err(format!("byte {pos}: unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("byte {pos}: unexpected character {:?}", *c as char)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("byte {pos}: expected `{word}`"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    token
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("byte {start}: bad number `{token}`: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("byte {pos}: unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("byte {pos}: truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("byte {pos}: non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("byte {pos}: bad \\u escape `{hex}`"))?;
                        // Artifacts only escape control characters (the
                        // writer above); surrogate pairs are out of scope.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("byte {pos}: \\u{hex} is not a char"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("byte {pos}: bad escape {other:?}"));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // encoding is valid by construction).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| format!("byte {pos}: invalid UTF-8: {e}"))?;
                let c = rest.chars().next().expect("non-empty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("byte {pos}: expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("byte {pos}: expected string key in object"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("byte {pos}: expected `:` after object key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("byte {pos}: expected `,` or `}}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip_and_keep_float_shape() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(2.0), "2.0");
        assert_eq!(num(-0.25), "-0.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn uints_are_plain_integers() {
        assert_eq!(uint(0), "0");
        assert_eq!(uint(5_000_000_000), "5000000000");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn containers_compose() {
        let obj = object([("id", string("fig4")), ("xs", array([num(1.0), num(2.5)]))]);
        assert_eq!(obj, r#"{"id":"fig4","xs":[1.0,2.5]}"#);
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let doc = object([
            ("id", string("fig4")),
            ("count", uint(42)),
            ("mean", num(1.5)),
            ("tags", array([string("a\"b"), string("c\nd")])),
            ("nested", object([("ok", "true".to_string())])),
        ]);
        let v = parse(&doc).expect("writer output parses");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("fig4"));
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(1.5));
        let tags = v.get("tags").and_then(Value::as_array).unwrap();
        assert_eq!(tags[0].as_str(), Some("a\"b"));
        assert_eq!(tags[1].as_str(), Some("c\nd"));
        assert_eq!(
            v.get("nested").and_then(|n| n.get("ok")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parser_preserves_object_field_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "\"unterminated",
            "1 2",
            "nul",
            r#"{"a":1} trailing"#,
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_null() {
        let v = parse(r#"["A\t", null, -2.5e3, true, false]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("A\t"));
        assert_eq!(items[1], Value::Null);
        assert_eq!(items[2].as_f64(), Some(-2500.0));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Bool(false));
    }
}
