//! A log-linear bucketed latency histogram.

/// Default precision: 8 mantissa bits, i.e. ≤ 0.4 % relative bucket width.
const DEFAULT_PRECISION_BITS: u32 = 8;

/// A log-linear histogram of `u64` samples (HDR-histogram style).
///
/// Values below `2^p` (where `p` is the precision in bits) are counted
/// exactly; larger values fall into buckets whose relative width is
/// `2^-p`, so percentile estimates carry at most that relative error. With
/// the default `p = 8` the error is below 0.4 %, far tighter than the
/// run-to-run variation of any latency experiment.
///
/// The histogram also tracks exact `min`, `max`, count and sum, so
/// [`LatencyHistogram::mean`] is exact regardless of bucketing.
///
/// Samples are plain `u64`s; the rperf suite records **picoseconds**.
///
/// # Examples
///
/// ```
/// use rperf_stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record(100);
/// h.record(200);
/// h.record(300);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.min(), 100);
/// assert_eq!(h.max(), 300);
/// assert_eq!(h.mean(), 200.0);
/// assert_eq!(h.percentile(50.0), 200);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    precision_bits: u32,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates a histogram with the default precision (8 bits, ≤ 0.4 % error).
    pub fn new() -> Self {
        Self::with_precision(DEFAULT_PRECISION_BITS)
    }

    /// Creates a histogram with `precision_bits` mantissa bits (2–14).
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is outside `2..=14`.
    pub fn with_precision(precision_bits: u32) -> Self {
        assert!(
            (2..=14).contains(&precision_bits),
            "precision_bits must be in 2..=14, got {precision_bits}"
        );
        let sub = 1usize << precision_bits;
        // Exact region [0, 2^p) plus one sub-bucket array per exponent.
        let buckets = sub + (64 - precision_bits as usize) * sub;
        LatencyHistogram {
            precision_bits,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(&self, value: u64) -> usize {
        let p = self.precision_bits;
        let sub = 1u64 << p;
        if value < sub {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // >= p
            let e = msb - p; // exponent bucket, 0-based
            let m = (value >> e) - sub; // top p bits after the implied 1
            (sub + (e as u64) * sub + m) as usize
        }
    }

    /// The representative (midpoint) value of the bucket containing `index`.
    fn value_of(&self, index: usize) -> u64 {
        let p = self.precision_bits;
        let sub = 1u64 << p;
        let index = index as u64;
        if index < sub {
            index
        } else {
            let rel = index - sub;
            let e = rel >> p;
            let m = rel & (sub - 1);
            let lo = (m + sub) << e;
            let width = 1u64 << e;
            lo + width / 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(value);
        self.counts[idx] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at the given percentile (`0.0..=100.0`).
    ///
    /// Returns the representative value of the bucket containing the
    /// percentile rank, clamped to the exact observed `min`/`max`.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not within `0.0..=100.0`.
    pub fn percentile(&self, pct: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile must be in 0..=100, got {pct}"
        );
        if self.count == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: median.
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different precision.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms of different precision"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The maximum relative error of percentile estimates.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.precision_bits) as f64
    }

    /// The empirical CDF as `(value, cumulative fraction)` points, one per
    /// non-empty bucket, in ascending value order. The final point's
    /// fraction is exactly 1.0.
    ///
    /// Useful for plotting full RTT distributions (the paper's Fig. 4
    /// style) rather than isolated percentiles.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                self.value_of(idx).clamp(self.min, self.max),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 0..256u64 {
            h.record(v);
        }
        // Values below 2^8 are exact.
        assert_eq!(h.percentile(100.0), 255);
        assert_eq!(h.min(), 0);
        assert_eq!(h.count(), 256);
    }

    #[test]
    fn relative_error_bound_holds() {
        let mut h = LatencyHistogram::new();
        let value = 1_234_567_890u64;
        h.record(value);
        let got = h.percentile(50.0);
        let err = (got as f64 - value as f64).abs() / value as f64;
        assert!(err <= h.relative_error(), "error {err} too large");
    }

    #[test]
    fn percentiles_monotone() {
        let mut h = LatencyHistogram::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 34);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < previous {last}");
            last = v;
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..1000u64 {
            let v = v * 977 + 13;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.9), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn record_n_counts() {
        let mut h = LatencyHistogram::new();
        h.record_n(10, 5);
        h.record_n(20, 0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10);
        assert_eq!(h.mean(), 10.0);
    }

    #[test]
    fn median_of_bimodal() {
        let mut h = LatencyHistogram::new();
        h.record_n(100, 999);
        h.record_n(1_000_000, 1);
        assert_eq!(h.median(), 100);
        let p999 = h.percentile(99.95);
        assert!(p999 > 990_000, "p99.95 {p999} should catch the outlier");
    }

    #[test]
    #[should_panic(expected = "precision_bits")]
    fn rejects_bad_precision() {
        let _ = LatencyHistogram::with_precision(1);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn rejects_bad_percentile() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new();
        let mut x = 5u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(48271).wrapping_add(11);
            h.record((x >> 20) + 1);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for pair in cdf.windows(2) {
            assert!(pair[1].0 >= pair[0].0, "values ascend");
            assert!(pair[1].1 >= pair[0].1, "fractions ascend");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // The CDF agrees with the percentile estimator at the median.
        let p50 = h.percentile(50.0);
        let at_median = cdf
            .iter()
            .find(|&&(v, _)| v >= p50)
            .expect("median within range");
        assert!(at_median.1 >= 0.5 - h.relative_error() - 0.01);
    }

    #[test]
    fn empty_cdf() {
        assert!(LatencyHistogram::new().cdf().is_empty());
    }

    #[test]
    fn huge_values_do_not_overflow_index() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        let p = h.percentile(100.0);
        let err = (p as f64 - u64::MAX as f64).abs() / u64::MAX as f64;
        assert!(err <= h.relative_error());
    }
}
