//! Percentile digests.

use std::fmt;

use crate::LatencyHistogram;

/// The latency digest every experiment in the suite reports.
///
/// Values are in **picoseconds** (the native unit of recorded samples); the
/// accessor methods convert to microseconds for human consumption, matching
/// the units the paper plots.
///
/// # Examples
///
/// ```
/// use rperf_stats::{LatencyHistogram, LatencySummary};
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u64 {
///     h.record(i * 1_000_000); // 1..=100 µs
/// }
/// let s = LatencySummary::from_histogram(&h);
/// assert_eq!(s.count, 100);
/// assert!((s.p50_us() - 50.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Minimum, in picoseconds.
    pub min_ps: u64,
    /// Arithmetic mean, in picoseconds.
    pub mean_ps: f64,
    /// Median (50th percentile), in picoseconds.
    pub p50_ps: u64,
    /// 90th percentile, in picoseconds.
    pub p90_ps: u64,
    /// 99th percentile, in picoseconds.
    pub p99_ps: u64,
    /// 99.9th percentile — the paper's tail metric — in picoseconds.
    pub p999_ps: u64,
    /// Maximum, in picoseconds.
    pub max_ps: u64,
}

impl LatencySummary {
    /// Extracts the digest from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            min_ps: h.min(),
            mean_ps: h.mean(),
            p50_ps: h.percentile(50.0),
            p90_ps: h.percentile(90.0),
            p99_ps: h.percentile(99.0),
            p999_ps: h.percentile(99.9),
            max_ps: h.max(),
        }
    }

    /// Median in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.p50_ps as f64 / 1e6
    }

    /// 99.9th percentile in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.p999_ps as f64 / 1e6
    }

    /// Median in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.p50_ps as f64 / 1e3
    }

    /// 99.9th percentile in nanoseconds.
    pub fn p999_ns(&self) -> f64 {
        self.p999_ps as f64 / 1e3
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ps / 1e6
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.3}us p90={:.3}us p99={:.3}us p99.9={:.3}us mean={:.3}us max={:.3}us",
            self.count,
            self.p50_ps as f64 / 1e6,
            self.p90_ps as f64 / 1e6,
            self.p99_ps as f64 / 1e6,
            self.p999_ps as f64 / 1e6,
            self.mean_ps / 1e6,
            self.max_ps as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_ordered() {
        let mut h = LatencyHistogram::new();
        let mut x = 99u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            h.record((x >> 40) + 1);
        }
        let s = LatencySummary::from_histogram(&h);
        assert!(s.min_ps <= s.p50_ps);
        assert!(s.p50_ps <= s.p90_ps);
        assert!(s.p90_ps <= s.p99_ps);
        assert!(s.p99_ps <= s.p999_ps);
        assert!(s.p999_ps <= s.max_ps);
    }

    #[test]
    fn unit_conversions() {
        let s = LatencySummary {
            count: 1,
            min_ps: 2_000_000,
            mean_ps: 2_000_000.0,
            p50_ps: 2_000_000,
            p90_ps: 2_000_000,
            p99_ps: 2_000_000,
            p999_ps: 3_000_000,
            max_ps: 3_000_000,
        };
        assert_eq!(s.p50_us(), 2.0);
        assert_eq!(s.p999_us(), 3.0);
        assert_eq!(s.p50_ns(), 2_000.0);
        assert_eq!(s.mean_us(), 2.0);
    }

    #[test]
    fn display_contains_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        let text = LatencySummary::from_histogram(&h).to_string();
        assert!(text.contains("p50="));
        assert!(text.contains("p99.9="));
    }
}
