//! Property tests for units, wire formats and configuration.

use proptest::prelude::*;
use rperf_model::config::{ClusterConfig, Sl2VlTable};
use rperf_model::units::LinkRate;
use rperf_model::wire::HeaderModel;
use rperf_model::{ServiceLevel, Transport, Verb, VirtualLane};

proptest! {
    /// serialize_time is monotone and additive in bytes.
    #[test]
    fn serialization_monotone_additive(
        gbps in 1.0f64..400.0,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let r = LinkRate::from_gbps(gbps);
        let ta = r.serialize_time(a);
        let tb = r.serialize_time(b);
        let tab = r.serialize_time(a + b);
        prop_assert!(tab >= ta.max(tb));
        // Additivity within rounding (±1 ps per operand).
        let sum = ta + tb;
        let diff = sum.as_ps().abs_diff(tab.as_ps());
        prop_assert!(diff <= 1, "additivity violated by {diff} ps");
    }

    /// bytes_in inverts serialize_time within one byte.
    #[test]
    fn serialization_roundtrip(gbps in 1.0f64..400.0, bytes in 1u64..10_000_000) {
        let r = LinkRate::from_gbps(gbps);
        let t = r.serialize_time(bytes);
        let back = r.bytes_in(t);
        prop_assert!(back.abs_diff(bytes) <= 1, "{bytes} → {t} → {back}");
    }

    /// Header overhead bounds: every packet type costs between the bare
    /// LRH+BTH stack and the paper's 52-byte worst case plus extensions.
    #[test]
    fn header_overheads_bounded(
        verb in prop::sample::select(vec![Verb::Send, Verb::Write, Verb::Read]),
        transport in prop::sample::select(vec![Transport::Rc, Transport::Ud]),
        first in any::<bool>(),
    ) {
        let h = HeaderModel::default();
        let oh = h.data_overhead(verb, transport, first);
        prop_assert!(oh >= 26, "below the bare header stack: {oh}");
        prop_assert!(oh <= 56, "beyond any defensible stack: {oh}");
        // RETH appears exactly on first packets of one-sided verbs.
        if verb.is_one_sided() {
            let later = h.data_overhead(verb, transport, false);
            prop_assert_eq!(oh.saturating_sub(later), if first { 16 } else { 0 });
        }
    }

    /// SL2VL tables built from arbitrary assignments stay within range
    /// and validate against a config with enough VLs.
    #[test]
    fn sl2vl_assignments_roundtrip(entries in prop::collection::vec((0u8..16, 0u8..9), 0..32)) {
        let mut t = Sl2VlTable::all_to_vl0();
        for &(sl, vl) in &entries {
            t = t.with(ServiceLevel::new(sl), VirtualLane::new(vl));
        }
        // Last writer wins.
        for &(sl, _) in &entries {
            let vl = t.vl_for(ServiceLevel::new(sl));
            let expected = entries
                .iter()
                .rev()
                .find(|&&(s, _)| s == sl)
                .map(|&(_, v)| v)
                .unwrap();
            prop_assert_eq!(vl.raw(), expected);
        }
        let mut cfg = ClusterConfig::hardware();
        cfg.switch.sl2vl = t;
        prop_assert!(cfg.validate().is_ok());
    }

    /// The goodput predictor is always within (0, data-rate].
    #[test]
    fn predicted_goodput_sane(payload in 1u64..65_536) {
        let cfg = ClusterConfig::hardware();
        let g = rperf_model::analytic::predicted_goodput_gbps(&cfg, payload);
        prop_assert!(g > 0.0);
        prop_assert!(g <= cfg.link.data_rate().as_gbps());
    }

    /// Eq. 2 is linear in both N and buffer size.
    #[test]
    fn eq2_linearity(n in 1u32..32, buf in 1024u64..1_048_576) {
        let rate = LinkRate::from_gbps(56.0);
        let one = rperf_model::analytic::fcfs_waiting_time(1, buf, rate);
        let many = rperf_model::analytic::fcfs_waiting_time(n, buf, rate);
        prop_assert_eq!(many.as_ps(), one.as_ps() * n as u64);
    }
}
