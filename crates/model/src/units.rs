//! Link rates and serialization arithmetic.

use std::fmt;

use rperf_sim::SimDuration;

/// A link (or internal datapath) rate in bits per second.
///
/// All bandwidth arithmetic in the suite goes through this type so that the
/// picosecond rounding is done once, in one place.
///
/// # Examples
///
/// ```
/// use rperf_model::units::LinkRate;
///
/// let r = LinkRate::from_gbps(56.0);
/// assert_eq!(r.as_gbps(), 56.0);
/// // One byte takes 8/56e9 s ≈ 142.9 ps:
/// assert_eq!(r.serialize_time(1).as_ps(), 143);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkRate {
    bits_per_sec: u64,
}

impl LinkRate {
    /// Creates a rate from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_sec` is zero.
    pub fn from_bps(bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        LinkRate { bits_per_sec }
    }

    /// Creates a rate from gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "link rate must be positive, got {gbps}");
        LinkRate {
            bits_per_sec: (gbps * 1e9).round() as u64,
        }
    }

    /// The rate in bits per second.
    pub fn as_bps(self) -> u64 {
        self.bits_per_sec
    }

    /// The rate in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// Time to serialize `bytes` bytes at this rate (rounded to the nearest
    /// picosecond).
    pub fn serialize_time(self, bytes: u64) -> SimDuration {
        // ps = bytes * 8 * 1e12 / bps, computed in u128 to avoid overflow.
        let num = bytes as u128 * 8 * 1_000_000_000_000;
        let ps = (num + self.bits_per_sec as u128 / 2) / self.bits_per_sec as u128;
        SimDuration::from_ps(ps as u64)
    }

    /// Bytes that can be serialized in `d` at this rate (rounded down).
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        let bits = d.as_ps() as u128 * self.bits_per_sec as u128 / 1_000_000_000_000;
        (bits / 8) as u64
    }

    /// Scales the rate by a factor (e.g. to model an internal datapath that
    /// runs slightly faster than the line).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(self, factor: f64) -> LinkRate {
        assert!(factor > 0.0, "scale factor must be positive, got {factor}");
        LinkRate::from_bps(((self.bits_per_sec as f64) * factor).round().max(1.0) as u64)
    }
}

impl fmt::Debug for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps())
    }
}

impl fmt::Display for LinkRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps())
    }
}

/// Computes payload goodput in Gbps given payload bytes delivered over a
/// duration.
pub fn goodput_gbps(payload_bytes: u64, over: SimDuration) -> f64 {
    if over == SimDuration::ZERO {
        return 0.0;
    }
    payload_bytes as f64 * 8.0 / over.as_secs_f64() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times_match_hand_math() {
        let r = LinkRate::from_gbps(56.0);
        // 4148 bytes (4096 + 52 header) at 56 Gbps = 592.571... ns.
        let t = r.serialize_time(4148);
        assert!((t.as_ns_f64() - 592.571).abs() < 0.01, "{t}");
        // 64B message + 26B headers = 90 B → 12.857 ns.
        let t = r.serialize_time(90);
        assert!((t.as_ns_f64() - 12.857).abs() < 0.01, "{t}");
    }

    #[test]
    fn zero_bytes_is_zero_time() {
        assert_eq!(
            LinkRate::from_gbps(56.0).serialize_time(0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bytes_in_inverts_serialize_time() {
        let r = LinkRate::from_gbps(56.0);
        for bytes in [1u64, 64, 4096, 1_000_000] {
            let t = r.serialize_time(bytes);
            let back = r.bytes_in(t);
            let err = (back as i64 - bytes as i64).abs();
            assert!(err <= 1, "bytes {bytes} → {t} → {back}");
        }
    }

    #[test]
    fn scaled_rate() {
        let r = LinkRate::from_gbps(56.0).scaled(1.1);
        assert!((r.as_gbps() - 61.6).abs() < 1e-6);
    }

    #[test]
    fn goodput_math() {
        let g = goodput_gbps(7_000_000_000 / 8, SimDuration::from_secs_f64(1.0));
        assert!((g - 7.0).abs() < 1e-9);
        assert_eq!(goodput_gbps(100, SimDuration::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LinkRate::from_gbps(0.0);
    }

    #[test]
    fn large_values_do_not_overflow() {
        let r = LinkRate::from_gbps(56.0);
        // 1 TB serializes without overflow.
        let t = r.serialize_time(1_000_000_000_000);
        assert!((t.as_secs_f64() - 142.857).abs() < 0.01);
    }
}
