//! Strongly typed identifiers.
//!
//! Each identifier is a newtype so that, for example, a [`PortId`] can never
//! be passed where a [`VirtualLane`] is expected — both are small integers
//! and exactly the kind of thing that gets silently swapped in C codebases.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw value.
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw value.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw value as a `usize`, for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// An end node (host + RNIC) in the cluster.
    NodeId(u16),
    "node"
);

id_type!(
    /// A switch in the fabric.
    SwitchId(u16),
    "switch"
);

id_type!(
    /// A port on a switch (0-based).
    PortId(u8),
    "port"
);

id_type!(
    /// An InfiniBand Local Identifier — the subnet-unique address assigned
    /// to every end port; switch forwarding tables are keyed by LID.
    Lid(u16),
    "lid"
);

id_type!(
    /// A queue-pair number, unique per RNIC.
    QpNum(u32),
    "qp"
);

id_type!(
    /// A flow: one (source, destination, generator) stream of messages.
    FlowId(u32),
    "flow"
);

id_type!(
    /// A message identifier, unique per fabric run.
    MsgId(u64),
    "msg"
);

id_type!(
    /// A packet identifier, unique per fabric run.
    PacketId(u64),
    "pkt"
);

/// An InfiniBand Service Level (0–15), carried in the packet header.
///
/// SLs are the application-visible priority abstraction; switches map them
/// to virtual lanes via their SL2VL tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceLevel(u8);

impl ServiceLevel {
    /// Highest SL value permitted by the IB specification.
    pub const MAX: u8 = 15;

    /// Creates a service level.
    ///
    /// # Panics
    ///
    /// Panics if `raw > 15`.
    pub fn new(raw: u8) -> Self {
        assert!(raw <= Self::MAX, "service level {raw} out of range 0..=15");
        ServiceLevel(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The raw value as a `usize`, for table indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SL{}", self.0)
    }
}

impl fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SL{}", self.0)
    }
}

/// An InfiniBand Virtual Lane (0–15): a logical link slice with dedicated
/// buffering, flow control and arbitration state.
///
/// The IB specification requires 2–16 VLs per port (the paper's switch
/// exposes 9 data VLs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualLane(u8);

impl VirtualLane {
    /// Highest VL value permitted by the IB specification.
    pub const MAX: u8 = 15;

    /// Creates a virtual lane.
    ///
    /// # Panics
    ///
    /// Panics if `raw > 15`.
    pub fn new(raw: u8) -> Self {
        assert!(raw <= Self::MAX, "virtual lane {raw} out of range 0..=15");
        VirtualLane(raw)
    }

    /// The raw value.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The raw value as a `usize`, for table indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VirtualLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VL{}", self.0)
    }
}

impl fmt::Display for VirtualLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VL{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let n = NodeId::new(3);
        assert_eq!(n.raw(), 3);
        assert_eq!(n.index(), 3);
        assert_eq!(NodeId::from(3), n);
        assert_eq!(format!("{n}"), "node3");
        assert_eq!(format!("{n:?}"), "node3");
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // This is a compile-time property; the test documents it.
        let p = PortId::new(1);
        let v = VirtualLane::new(1);
        assert_eq!(p.raw(), v.raw());
    }

    #[test]
    fn sl_vl_bounds() {
        assert_eq!(ServiceLevel::new(15).raw(), 15);
        assert_eq!(VirtualLane::new(0).index(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sl_over_15_panics() {
        let _ = ServiceLevel::new(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vl_over_15_panics() {
        let _ = VirtualLane::new(16);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(Lid::new(1) < Lid::new(2));
        assert!(ServiceLevel::new(0) < ServiceLevel::new(1));
    }
}
