//! Shared InfiniBand domain types for the rperf-rs suite.
//!
//! Everything the device models (RNIC, switch, fabric) and the measurement
//! tools agree on lives here:
//!
//! * [`ids`] — strongly typed identifiers (nodes, ports, LIDs, QPs, service
//!   levels, virtual lanes).
//! * [`units`] — link rates and serialization-time arithmetic.
//! * [`wire`] — IB packet and header size modelling (LRH/BTH/DETH/RETH/AETH
//!   /ICRC/VCRC), the [`wire::Packet`] unit that flows through the fabric.
//! * [`config`] — every calibrated timing constant in the suite, grouped
//!   into [`config::ClusterConfig`] with the two device profiles the paper
//!   uses: the `hardware` testbed profile and the `omnet` simulator profile.
//! * [`analytic`] — closed-form models from the paper, most importantly
//!   Eq. 2 (`W_t = N · BufferSize / LinkBandwidth`).
//! * [`textcfg`] — the dependency-free TOML-subset reader shared by the
//!   scenario-spec text format and `rperf-lint`'s `lint.toml`.
//!
//! # Examples
//!
//! ```
//! use rperf_model::units::LinkRate;
//!
//! let fdr = LinkRate::from_gbps(56.0);
//! // A 4096-byte payload plus 52 bytes of headers at 56 Gbps:
//! let t = fdr.serialize_time(4148);
//! assert!((t.as_ns_f64() - 592.57).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod arena;
pub mod config;
pub mod ids;
pub mod textcfg;
pub mod units;
pub mod wire;

pub use arena::{PacketRef, PacketSlab};
pub use config::ClusterConfig;
pub use ids::{FlowId, Lid, MsgId, NodeId, PortId, QpNum, ServiceLevel, VirtualLane};
pub use units::LinkRate;
pub use wire::{Packet, PacketKind, Transport, Verb};
