//! Closed-form models from the paper, used for validation and as oracles
//! in integration tests.

use rperf_sim::SimDuration;

use crate::config::ClusterConfig;
use crate::units::LinkRate;

/// Eq. 2 of the paper: the minimum FCFS waiting time of a latency-sensitive
/// packet when `n_full_buffers` converged input buffers are full.
///
/// `W_t = N × BufferSize / LinkBandwidth`
///
/// # Examples
///
/// ```
/// use rperf_model::analytic::fcfs_waiting_time;
/// use rperf_model::units::LinkRate;
///
/// // The paper's own instantiation: 32 KB buffers at 56 Gbps ⇒ ~4.7 µs per
/// // buffer (the paper quotes 3.6 µs using a slightly different effective
/// // rate; the slope per BSG is the quantity of interest).
/// let w = fcfs_waiting_time(1, 32 * 1024, LinkRate::from_gbps(56.0));
/// assert!((w.as_us_f64() - 4.68).abs() < 0.01);
/// ```
pub fn fcfs_waiting_time(n_full_buffers: u32, buffer_bytes: u64, rate: LinkRate) -> SimDuration {
    rate.serialize_time(buffer_bytes)
        .times(n_full_buffers as u64)
}

/// The wire-limited payload goodput for a given payload size: the fraction
/// of the data rate left after per-packet header overhead.
pub fn wire_limited_goodput_gbps(cfg: &ClusterConfig, payload: u64) -> f64 {
    let oh =
        cfg.rnic
            .headers
            .data_overhead(crate::wire::Verb::Send, crate::wire::Transport::Rc, true);
    let data_rate = cfg.link.data_rate().as_gbps();
    data_rate * payload as f64 / (payload + oh) as f64
}

/// The message-rate-limited goodput in Gbps for single-packet messages
/// posted one WQE at a time.
pub fn rate_limited_goodput_gbps(cfg: &ClusterConfig, payload: u64) -> f64 {
    let per_msg = cfg.rnic.engine_time(cfg.rnic.packets_for(payload));
    let mpps = 1e6 / per_msg.as_ns_f64() * 1e-3; // messages per microsecond → Mpps
    mpps * 1e6 * payload as f64 * 8.0 / 1e9
}

/// The predicted one-to-one BSG goodput: the tighter of the wire and
/// message-rate limits (Fig. 5's shape).
pub fn predicted_goodput_gbps(cfg: &ClusterConfig, payload: u64) -> f64 {
    wire_limited_goodput_gbps(cfg, payload).min(rate_limited_goodput_gbps(cfg, payload))
}

/// A rough zero-load RTT decomposition for an RPerf-style measurement
/// (used as a sanity oracle, not as the simulation itself): serialization
/// asymmetry between wire and loopback paths, two propagation delays, ACK
/// serialization and turnarounds, minus the extra engine slot the loopback
/// WQE pays.
pub fn rperf_zero_load_rtt_estimate(
    cfg: &ClusterConfig,
    payload: u64,
    through_switch: bool,
) -> SimDuration {
    let rnic = &cfg.rnic;
    let data_rate = cfg.link.data_rate();
    let oh = rnic
        .headers
        .data_overhead(crate::wire::Verb::Send, crate::wire::Transport::Rc, true);
    let wire_size = payload + oh;
    let s_wire = data_rate.serialize_time(wire_size);
    let s_loop = data_rate
        .scaled(rnic.loopback_factor)
        .serialize_time(wire_size);
    let s_ack = data_rate.serialize_time(rnic.headers.ack_overhead());
    let mut rtt = s_wire.saturating_sub(s_loop)
        + cfg.link.propagation * 2
        + s_ack
        + rnic.ack_turnaround
        + rnic.ack_rx
        + rnic.rx_per_packet * 2;
    rtt = rtt.saturating_sub(rnic.wqe_engine + rnic.tx_per_packet);
    rtt = rtt.saturating_sub(rnic.loopback_turnaround);
    if through_switch {
        rtt +=
            (cfg.switch.pipeline_latency + cfg.switch.arb_scan_per_port + cfg.link.propagation) * 2;
    }
    rtt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;

    #[test]
    fn eq2_scales_linearly() {
        let rate = LinkRate::from_gbps(56.0);
        let one = fcfs_waiting_time(1, 32 * 1024, rate);
        let five = fcfs_waiting_time(5, 32 * 1024, rate);
        assert_eq!(five.as_ps(), one.as_ps() * 5);
    }

    #[test]
    fn eq2_paper_magnitude() {
        // 5 full 32 KB buffers at 56 Gbps ≈ 23 µs of waiting — the right
        // order for the ~18–26 µs LSG latencies in Figs. 7–10.
        let w = fcfs_waiting_time(5, 32 * 1024, LinkRate::from_gbps(56.0));
        assert!((20.0..28.0).contains(&w.as_us_f64()), "{w}");
    }

    #[test]
    fn small_payloads_are_rate_limited() {
        let cfg = ClusterConfig::hardware();
        let rate_64 = rate_limited_goodput_gbps(&cfg, 64);
        let wire_64 = wire_limited_goodput_gbps(&cfg, 64);
        assert!(
            rate_64 < wire_64,
            "64 B should be message-rate limited ({rate_64} vs {wire_64})"
        );
        // The paper's Fig. 5 observes ~4.1 Gbps at 64 B.
        assert!((3.0..6.0).contains(&rate_64), "got {rate_64}");
    }

    #[test]
    fn large_payloads_are_wire_limited() {
        let cfg = ClusterConfig::hardware();
        let pred = predicted_goodput_gbps(&cfg, 4096);
        let wire = wire_limited_goodput_gbps(&cfg, 4096);
        assert_eq!(pred, wire);
        // The paper's Fig. 5 observes 52.2–53 Gbps at 4096 B.
        assert!((51.0..55.0).contains(&pred), "got {pred}");
    }

    #[test]
    fn goodput_is_monotone_in_payload() {
        let cfg = ClusterConfig::hardware();
        let mut last = 0.0;
        for payload in [64u64, 128, 256, 512, 1024, 2048, 4096] {
            let g = predicted_goodput_gbps(&cfg, payload);
            assert!(g > last, "goodput should increase with payload size");
            last = g;
        }
    }

    #[test]
    fn zero_load_estimate_matches_paper_band() {
        let cfg = ClusterConfig::hardware();
        let no_switch_64 = rperf_zero_load_rtt_estimate(&cfg, 64, false);
        let no_switch_4k = rperf_zero_load_rtt_estimate(&cfg, 4096, false);
        let with_switch_64 = rperf_zero_load_rtt_estimate(&cfg, 64, true);
        // Paper: ~20 ns and ~76 ns back-to-back; ~432 ns through the switch.
        assert!(
            (5.0..60.0).contains(&no_switch_64.as_ns_f64()),
            "{no_switch_64}"
        );
        assert!(
            (40.0..120.0).contains(&no_switch_4k.as_ns_f64()),
            "{no_switch_4k}"
        );
        assert!(
            (380.0..500.0).contains(&with_switch_64.as_ns_f64()),
            "{with_switch_64}"
        );
        assert!(no_switch_4k > no_switch_64);
    }
}
