//! Calibrated configuration for every device model in the suite.
//!
//! The constants here are the *only* tuning surface of the reproduction.
//! Each is annotated with the observation in the paper (or the component
//! datasheet) it is calibrated against. Two presets mirror the paper's two
//! platforms:
//!
//! * [`ClusterConfig::hardware`] — the rack-scale testbed (ConnectX-4 RNICs,
//!   Mellanox SX6012 switch, 56 Gbps FDR links), including the switch µarch
//!   jitter responsible for the zero-load tail.
//! * [`ClusterConfig::omnet_simulator`] — the Mellanox IB OMNeT++ model the
//!   paper uses for scheduling-policy studies: same rates, 32 KB input
//!   buffers, no µarch jitter ("the switch uArch is not modeled in detail
//!   in the simulator").

use rperf_sim::{SimDuration, SimRng};

use crate::ids::{ServiceLevel, VirtualLane};
use crate::units::LinkRate;
use crate::wire::HeaderModel;

/// A physical link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Signaling rate (56 Gbps for 4×FDR).
    pub signaling_rate: LinkRate,
    /// Line-coding efficiency (64b/66b for FDR). Together with per-packet
    /// header overhead this reproduces the paper's 51.8–53 Gbps peak
    /// goodput on a "56 Gbps" link (Fig. 5).
    pub encoding_efficiency: f64,
    /// One-way propagation delay (≈ 5 ns for a 1 m copper cable).
    pub propagation: SimDuration,
}

impl LinkConfig {
    /// The usable data rate after line coding.
    pub fn data_rate(&self) -> LinkRate {
        self.signaling_rate.scaled(self.encoding_efficiency)
    }
}

/// A two-mode delay-noise model: a small always-present component plus an
/// occasional larger spike.
///
/// Used for the switch arbitration/µarch jitter (zero-load tail ≈
/// median + 200 ns in Fig. 4) and for RNIC engine variability (the
/// ≤ 30 ns back-to-back tail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterConfig {
    /// Upper bound of the uniform base component.
    pub base_max: SimDuration,
    /// Probability of an additional spike.
    pub spike_prob: f64,
    /// Spike lower bound.
    pub spike_min: SimDuration,
    /// Spike upper bound.
    pub spike_max: SimDuration,
}

impl JitterConfig {
    /// Draws one delay sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let mut d = if self.base_max == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            rng.uniform_duration(SimDuration::ZERO, self.base_max)
        };
        if self.spike_prob > 0.0 && rng.chance(self.spike_prob) {
            d += rng.uniform_duration(self.spike_min, self.spike_max);
        }
        d
    }
}

/// Packet scheduling policy of a switch output arbiter (Section VIII-B of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// First Come, First Served: the oldest head-of-buffer packet (by
    /// arrival time at this switch) wins. The paper concludes the SX6012
    /// implements this policy.
    Fcfs,
    /// Round-Robin across ingress ports.
    RoundRobin,
    /// Byte-deficit fair sharing across ingress ports: the candidate whose
    /// ingress has been served the fewest bytes wins.
    ///
    /// This is the policy the paper's Section VIII-B sketches but cannot
    /// test on its gear ("We consider a policy to be fair if the time each
    /// flow spends in the switch is proportional to the size of the flow")
    /// — implemented here as an extension. A small flow's port is almost
    /// always the byte-minimum, so latency probes pass bulk traffic even
    /// more reliably than under RR; like RR, it cannot survive sharing a
    /// trunk buffer (head-of-line blocking is upstream of the arbiter).
    FairShare,
}

/// A Service-Level → Virtual-Lane mapping table (one per port direction in
/// real switches; one per device here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sl2VlTable {
    map: [u8; 16],
}

impl Default for Sl2VlTable {
    /// All SLs map to VL0 (the out-of-the-box subnet-manager default).
    fn default() -> Self {
        Sl2VlTable { map: [0; 16] }
    }
}

impl Sl2VlTable {
    /// The identity-free default: everything on VL0.
    pub fn all_to_vl0() -> Self {
        Self::default()
    }

    /// Maps `sl` to `vl`, returning the modified table (builder style).
    pub fn with(mut self, sl: ServiceLevel, vl: VirtualLane) -> Self {
        self.map[sl.index()] = vl.raw();
        self
    }

    /// Looks up the VL for a service level.
    pub fn vl_for(&self, sl: ServiceLevel) -> VirtualLane {
        VirtualLane::new(self.map[sl.index()])
    }

    /// The highest VL index referenced by the table.
    pub fn max_vl(&self) -> u8 {
        self.map.iter().copied().max().unwrap_or(0)
    }
}

/// One VL arbitration table entry: a VL and its weight in 64-byte units
/// (IB spec semantics: the VL may transmit up to `weight × 64` bytes each
/// time the entry is visited).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlArbEntry {
    /// The virtual lane.
    pub vl: VirtualLane,
    /// Weight in units of 64 bytes (0 is treated as 1).
    pub weight: u8,
}

/// VL arbitration configuration: a high-priority table, a low-priority
/// table, and the spec's *Limit of High Priority*.
///
/// High-priority entries are served ahead of low-priority ones, but after
/// `limit_high × 4096` bytes of consecutive high-priority data the arbiter
/// must offer one low-priority opportunity — this is the IB mechanism that
/// prevents complete starvation, and the knob whose side effects Section
/// VIII-C of the paper probes ("imposing such a limit will hurt the latency
/// of the LSG").
#[derive(Debug, Clone, PartialEq)]
pub struct VlArbConfig {
    /// High-priority entries.
    pub high: Vec<VlArbEntry>,
    /// Low-priority entries.
    pub low: Vec<VlArbEntry>,
    /// Consecutive high-priority budget, in 4096-byte units. `u8::MAX`
    /// means effectively unlimited.
    pub limit_high: u8,
}

impl Default for VlArbConfig {
    /// Everything on the low-priority table with equal weight — matches the
    /// shared-SL experiments.
    fn default() -> Self {
        VlArbConfig {
            high: Vec::new(),
            low: vec![VlArbEntry {
                vl: VirtualLane::new(0),
                weight: 64,
            }],
            limit_high: 0,
        }
    }
}

impl VlArbConfig {
    /// The QoS configuration of Section VIII-C: SL1/VL1 traffic
    /// high-priority, SL0/VL0 low-priority, with a high-priority limit of
    /// one 4 KB block so bulk traffic cannot be fully starved.
    pub fn dedicated_high_vl1() -> Self {
        VlArbConfig {
            high: vec![VlArbEntry {
                vl: VirtualLane::new(1),
                weight: 64,
            }],
            low: vec![VlArbEntry {
                vl: VirtualLane::new(0),
                weight: 64,
            }],
            limit_high: 1,
        }
    }

    /// `true` if `vl` appears in the high-priority table.
    pub fn is_high(&self, vl: VirtualLane) -> bool {
        self.high.iter().any(|e| e.vl == vl)
    }
}

/// Switch device parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Number of ports (SX6012: 12 QSFP ports).
    pub ports: u8,
    /// Number of data VLs (SX6012: 9).
    pub vls: u8,
    /// Advertised input-buffer capacity per (ingress port, VL), in bytes.
    ///
    /// The real switch has megabytes of packet memory, but the *credit
    /// advertisement* per VL is what bounds upstream injection; the paper's
    /// own Eq. 2 analysis infers ~32 KB of effective buffering per input
    /// from the ~3.6–5 µs per-BSG latency step. The hardware profile uses
    /// 36 KB (5.3 µs per buffer at FDR data rate), the simulator profile
    /// the paper's 32 KB.
    pub input_buffer_bytes: u64,
    /// Ingress-to-egress pipeline latency (SX6012 datasheet: ~200 ns
    /// port-to-port).
    pub pipeline_latency: SimDuration,
    /// Arbitration scan cost per *contending* ingress port, paid once per
    /// forwarded packet. Reproduces the total-bandwidth droop with more
    /// converging flows (Fig. 7b: 52.2 → 48.4 Gbps from 1 → 5 BSGs).
    pub arb_scan_per_port: SimDuration,
    /// µarch jitter applied per traversal (hardware profile only).
    pub jitter: Option<JitterConfig>,
    /// Packet scheduling policy of the output arbiters.
    pub policy: SchedPolicy,
    /// SL → VL mapping.
    pub sl2vl: Sl2VlTable,
    /// VL arbitration tables.
    pub vlarb: VlArbConfig,
}

/// RNIC device parameters (ConnectX-4 class).
#[derive(Debug, Clone, PartialEq)]
pub struct RnicConfig {
    /// Host → RNIC MMIO doorbell latency.
    pub mmio_post: SimDuration,
    /// WQE fetch + processing engine occupancy per message. Together with
    /// [`RnicConfig::tx_per_packet`] this caps the message rate at ~8 Mpps,
    /// reproducing the 4.1 Gbps at 64 B of Fig. 5 (the paper: "the RNIC
    /// must be capable of processing ≈ 110 M packets/s … beyond the RNIC's
    /// capability").
    pub wqe_engine: SimDuration,
    /// Additional TX engine occupancy per packet.
    pub tx_per_packet: SimDuration,
    /// Inter-packet gap on the wire (SerDes/flow-control overhead between
    /// back-to-back packets). This is why a single source cannot quite
    /// saturate a switch egress: the paper's 1-BSG converged runs show an
    /// *empty* switch (0.6 µs LSG RTT), so the source must inject slightly
    /// below the forwarding rate.
    pub tx_ipg: SimDuration,
    /// Payloads at or below this size are inlined into the WQE (no payload
    /// DMA read on the post path).
    pub inline_threshold: u64,
    /// PCIe round-trip latency of a payload DMA read.
    pub dma_read_latency: SimDuration,
    /// PCIe posted-write latency (payload delivery and CQE writes).
    pub dma_write_latency: SimDuration,
    /// Sustained PCIe payload streaming rate (x16 Gen3 ≈ 100 Gbps
    /// effective — not a bottleneck at FDR rates, but it shapes large
    /// transfers' DMA time).
    pub pcie_rate: LinkRate,
    /// Internal loopback datapath speed relative to the line data rate.
    /// Slightly above 1.0: loopback bypasses the SerDes. This ratio is what
    /// makes RPerf's measured back-to-back RTT grow mildly with payload
    /// (20 → 76 ns across 64 B → 4 KB in Fig. 4).
    pub loopback_factor: f64,
    /// Loopback completion turnaround after internal delivery.
    pub loopback_turnaround: SimDuration,
    /// Responder-side ACK generation latency for RC SENDs — on packet
    /// receipt, *before* the payload DMA completes (Fig. 1d; the property
    /// RPerf exploits to exclude remote PCIe delays).
    pub ack_turnaround: SimDuration,
    /// Requester-side ACK processing latency.
    pub ack_rx: SimDuration,
    /// RX engine occupancy per received packet.
    pub rx_per_packet: SimDuration,
    /// Path MTU (payload bytes per packet).
    pub mtu: u64,
    /// Receive-buffer credits advertised to the upstream switch, per VL.
    /// Large enough that the destination RNIC is never the converged-traffic
    /// bottleneck (the paper's backlog lives in the switch).
    pub rx_buffer_bytes: u64,
    /// Number of data VLs on the RNIC port.
    pub vls: u8,
    /// SL → VL mapping for injection.
    pub sl2vl: Sl2VlTable,
    /// Responder-side processing variability (applied to ACK turnaround
    /// and receive handling). This is the spread that existing tools cannot
    /// subtract and that gives even back-to-back RNICs a ~30 ns tail.
    pub rx_jitter: Option<JitterConfig>,
    /// Wire header model.
    pub headers: HeaderModel,
}

impl RnicConfig {
    /// Engine occupancy for a whole `n_packets` message.
    pub fn engine_time(&self, n_packets: u64) -> SimDuration {
        self.wqe_engine + self.tx_per_packet * n_packets
    }

    /// Number of MTU-sized packets needed for `bytes` of payload (at least
    /// one packet — zero-byte messages still send a header-only packet).
    pub fn packets_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu)
        }
    }
}

/// Host software/clock parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// TSC frequency (Xeon E5-2630 v4: 2.2 GHz base, constant-rate TSC).
    pub tsc_ghz: f64,
    /// Cost of one `rdtsc` read in wall time.
    pub tsc_read: SimDuration,
    /// Probability of an OS-induced software delay spike per software step
    /// (scheduler interference, cache misses in un-pinned code).
    pub sw_spike_prob: f64,
    /// Software spike lower bound.
    pub sw_spike_min: SimDuration,
    /// Software spike upper bound.
    pub sw_spike_max: SimDuration,
}

/// The complete cluster parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Link parameters.
    pub link: LinkConfig,
    /// Switch parameters.
    pub switch: SwitchConfig,
    /// RNIC parameters.
    pub rnic: RnicConfig,
    /// Host parameters.
    pub host: HostConfig,
}

impl ClusterConfig {
    /// The rack-scale hardware testbed profile (Section V).
    pub fn hardware() -> Self {
        let link = LinkConfig {
            signaling_rate: LinkRate::from_gbps(56.0),
            encoding_efficiency: 64.0 / 66.0,
            propagation: SimDuration::from_ns(5),
        };
        ClusterConfig {
            link,
            switch: SwitchConfig {
                ports: 12,
                vls: 9,
                input_buffer_bytes: 36 * 1024,
                pipeline_latency: SimDuration::from_ns(193),
                arb_scan_per_port: SimDuration::from_ns(10),
                jitter: Some(JitterConfig {
                    base_max: SimDuration::from_ns(6),
                    spike_prob: 0.15,
                    spike_min: SimDuration::from_ns(60),
                    spike_max: SimDuration::from_ns(110),
                }),
                policy: SchedPolicy::Fcfs,
                sl2vl: Sl2VlTable::all_to_vl0(),
                vlarb: VlArbConfig::default(),
            },
            rnic: RnicConfig {
                mmio_post: SimDuration::from_ns(85),
                wqe_engine: SimDuration::from_ns(110),
                tx_per_packet: SimDuration::from_ns(25),
                tx_ipg: SimDuration::from_ns(12),
                inline_threshold: 220,
                dma_read_latency: SimDuration::from_ns(350),
                dma_write_latency: SimDuration::from_ns(275),
                pcie_rate: LinkRate::from_gbps(100.0),
                loopback_factor: 1.1,
                loopback_turnaround: SimDuration::from_ns(5),
                ack_turnaround: SimDuration::from_ns(71),
                ack_rx: SimDuration::from_ns(25),
                rx_per_packet: SimDuration::from_ns(22),
                mtu: 4096,
                rx_buffer_bytes: 128 * 1024,
                vls: 9,
                sl2vl: Sl2VlTable::all_to_vl0(),
                rx_jitter: Some(JitterConfig {
                    base_max: SimDuration::from_ns(4),
                    spike_prob: 0.05,
                    spike_min: SimDuration::from_ns(10),
                    spike_max: SimDuration::from_ns(30),
                }),
                headers: HeaderModel::default(),
            },
            host: HostConfig {
                tsc_ghz: 2.2,
                tsc_read: SimDuration::from_ns(8),
                sw_spike_prob: 0.01,
                sw_spike_min: SimDuration::from_ns(500),
                sw_spike_max: SimDuration::from_ns(2_500),
            },
        }
    }

    /// The IB OMNeT++ simulator profile (Section V): identical rates and
    /// topology parameters, 32 KB input buffers, *no* switch µarch jitter —
    /// which is why the paper's simulator shows nearly identical median and
    /// tail ("the switch uArch is not modeled in detail in the simulator").
    pub fn omnet_simulator() -> Self {
        let mut c = Self::hardware();
        c.switch.input_buffer_bytes = 32 * 1024;
        c.switch.pipeline_latency = SimDuration::from_ns(200);
        c.switch.jitter = None;
        c.switch.arb_scan_per_port = SimDuration::ZERO;
        c.rnic.rx_jitter = None;
        c.host.sw_spike_prob = 0.0;
        c
    }

    /// Applies a scheduling policy to the switch (builder style).
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.switch.policy = policy;
        self
    }

    /// Configures the dedicated-SL QoS setup of Section VIII-C: SL1 → VL1
    /// at high arbitration priority on both RNICs and switch; SL0 → VL0
    /// low priority.
    pub fn with_dedicated_sl(mut self) -> Self {
        let table = Sl2VlTable::all_to_vl0().with(ServiceLevel::new(1), VirtualLane::new(1));
        self.switch.sl2vl = table;
        self.rnic.sl2vl = table;
        self.switch.vlarb = VlArbConfig::dedicated_high_vl1();
        self
    }

    /// Validates internal consistency (table VLs within the configured VL
    /// count, non-empty arbitration tables, sane probabilities).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.switch.vls < 2 || self.switch.vls > 16 {
            return Err(format!(
                "IB requires 2..=16 VLs per port, switch has {}",
                self.switch.vls
            ));
        }
        if self.switch.sl2vl.max_vl() >= self.switch.vls {
            return Err("switch SL2VL table references a VL beyond the port's VL count".into());
        }
        if self.rnic.sl2vl.max_vl() >= self.rnic.vls {
            return Err("RNIC SL2VL table references a VL beyond the port's VL count".into());
        }
        if self.switch.vlarb.high.is_empty() && self.switch.vlarb.low.is_empty() {
            return Err("VL arbitration tables are both empty".into());
        }
        for e in self
            .switch
            .vlarb
            .high
            .iter()
            .chain(self.switch.vlarb.low.iter())
        {
            if e.vl.raw() >= self.switch.vls {
                return Err(format!(
                    "VLArb entry references {} beyond the port's {} VLs",
                    e.vl, self.switch.vls
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.host.sw_spike_prob) {
            return Err("sw_spike_prob must be a probability".into());
        }
        if self.rnic.mtu == 0 {
            return Err("MTU must be positive".into());
        }
        if self.switch.input_buffer_bytes < self.rnic.mtu + 64 {
            return Err("switch input buffer must hold at least one MTU packet".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ClusterConfig::hardware().validate().unwrap();
        ClusterConfig::omnet_simulator().validate().unwrap();
        ClusterConfig::hardware()
            .with_dedicated_sl()
            .with_policy(SchedPolicy::RoundRobin)
            .validate()
            .unwrap();
    }

    #[test]
    fn data_rate_accounts_for_encoding() {
        let c = ClusterConfig::hardware();
        let dr = c.link.data_rate().as_gbps();
        assert!((dr - 54.303).abs() < 0.01, "data rate {dr}");
    }

    #[test]
    fn sl2vl_default_is_vl0() {
        let t = Sl2VlTable::all_to_vl0();
        for sl in 0..=15u8 {
            assert_eq!(t.vl_for(ServiceLevel::new(sl)), VirtualLane::new(0));
        }
    }

    #[test]
    fn sl2vl_with_overrides_one_entry() {
        let t = Sl2VlTable::all_to_vl0().with(ServiceLevel::new(1), VirtualLane::new(1));
        assert_eq!(t.vl_for(ServiceLevel::new(1)), VirtualLane::new(1));
        assert_eq!(t.vl_for(ServiceLevel::new(0)), VirtualLane::new(0));
        assert_eq!(t.max_vl(), 1);
    }

    #[test]
    fn dedicated_sl_builder_wires_both_sides() {
        let c = ClusterConfig::hardware().with_dedicated_sl();
        assert_eq!(
            c.switch.sl2vl.vl_for(ServiceLevel::new(1)),
            VirtualLane::new(1)
        );
        assert_eq!(
            c.rnic.sl2vl.vl_for(ServiceLevel::new(1)),
            VirtualLane::new(1)
        );
        assert!(c.switch.vlarb.is_high(VirtualLane::new(1)));
        assert!(!c.switch.vlarb.is_high(VirtualLane::new(0)));
    }

    #[test]
    fn validation_catches_bad_sl2vl() {
        let mut c = ClusterConfig::hardware();
        c.switch.sl2vl = Sl2VlTable::all_to_vl0().with(ServiceLevel::new(3), VirtualLane::new(12));
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_tiny_buffer() {
        let mut c = ClusterConfig::hardware();
        c.switch.input_buffer_bytes = 1024;
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_time_scales_with_packets() {
        let c = ClusterConfig::hardware();
        let one = c.rnic.engine_time(1);
        let four = c.rnic.engine_time(4);
        assert_eq!(
            four - one,
            c.rnic.tx_per_packet * 3,
            "per-packet cost should be linear"
        );
    }

    #[test]
    fn packets_for_respects_mtu() {
        let c = ClusterConfig::hardware();
        assert_eq!(c.rnic.packets_for(0), 1);
        assert_eq!(c.rnic.packets_for(1), 1);
        assert_eq!(c.rnic.packets_for(4096), 1);
        assert_eq!(c.rnic.packets_for(4097), 2);
        assert_eq!(c.rnic.packets_for(65536), 16);
    }

    #[test]
    fn jitter_sample_within_bounds() {
        let j = JitterConfig {
            base_max: SimDuration::from_ns(6),
            spike_prob: 1.0,
            spike_min: SimDuration::from_ns(60),
            spike_max: SimDuration::from_ns(110),
        };
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let d = j.sample(&mut rng);
            assert!(d >= SimDuration::from_ns(60));
            assert!(d < SimDuration::from_ns(116));
        }
    }

    #[test]
    fn jitter_without_spikes_stays_small() {
        let j = JitterConfig {
            base_max: SimDuration::from_ns(6),
            spike_prob: 0.0,
            spike_min: SimDuration::ZERO,
            spike_max: SimDuration::ZERO,
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            assert!(j.sample(&mut rng) < SimDuration::from_ns(6));
        }
    }

    #[test]
    fn omnet_profile_is_deterministic_devices() {
        let c = ClusterConfig::omnet_simulator();
        assert!(c.switch.jitter.is_none());
        assert!(c.rnic.rx_jitter.is_none());
        assert_eq!(c.host.sw_spike_prob, 0.0);
        assert_eq!(c.switch.input_buffer_bytes, 32 * 1024);
    }
}
