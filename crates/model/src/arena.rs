//! Generational slab arena for in-flight [`Packet`]s.
//!
//! Every figure replays millions of packets through the event loop; moving
//! an 11-field [`Packet`] through every `FabricEvent`, switch ingress queue
//! and VL-arbitration step made event payloads ~100 bytes. With the arena, a
//! packet is allocated exactly once at injection (source RNIC), flows
//! through the fabric as a copyable 8-byte [`PacketRef`] handle, and is
//! freed when the destination RNIC consumes it. Generation counters catch
//! stale handles (use-after-free) immediately instead of silently reading a
//! recycled slot.
//!
//! The slab is deterministic: slots are recycled LIFO, so identical
//! schedule/free sequences — which the engine's FIFO tie-breaking guarantees
//! — produce identical handle values run over run.

use crate::wire::Packet;

/// A copyable handle to a [`Packet`] owned by a [`PacketSlab`].
///
/// Cheap to copy through event payloads and per-VL queues. The `gen` field
/// must match the slab slot's current generation; a mismatch means the
/// packet was already freed (or the handle belongs to a different slab) and
/// every accessor panics rather than returning stale data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    index: u32,
    generation: u32,
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    packet: Option<Packet>,
}

/// A generational slab of in-flight packets.
///
/// # Examples
///
/// ```
/// use rperf_model::arena::PacketSlab;
/// # use rperf_model::wire::{Packet, PacketKind};
/// # use rperf_model::ids::{FlowId, Lid, MsgId, PacketId, QpNum, ServiceLevel};
/// # use rperf_sim::SimTime;
/// # fn mk() -> Packet {
/// #     Packet { id: PacketId::new(1), flow: FlowId::new(0), msg: MsgId::new(0),
/// #         src: Lid::new(1), dst: Lid::new(2), dst_qp: QpNum::new(7),
/// #         sl: ServiceLevel::new(0), kind: PacketKind::Ack, payload: 0,
/// #         overhead: 36, injected_at: SimTime::ZERO }
/// # }
/// let mut slab = PacketSlab::new();
/// let h = slab.alloc(mk());
/// assert_eq!(slab.get(h).wire_size(), 36);
/// assert_eq!(slab.live(), 1);
/// let p = slab.free(h);
/// assert_eq!(p.overhead, 36);
/// assert_eq!(slab.live(), 0);
/// assert_eq!(slab.high_water(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    allocated: u64,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty slab pre-sized for `capacity` concurrently live packets.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            high_water: 0,
            allocated: 0,
        }
    }

    /// Packet conservation: every slot is either live or on the free list.
    #[cfg(feature = "sim-sanitizer")]
    fn check_conservation(&self) {
        debug_assert_eq!(
            self.live + self.free.len(),
            self.slots.len(),
            "sim-sanitizer: packet conservation violated (live {} + free {} != slots {})",
            self.live,
            self.free.len(),
            self.slots.len()
        );
    }

    /// Moves `packet` into the slab, returning its handle.
    pub fn alloc(&mut self, packet: Packet) -> PacketRef {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        self.allocated += 1;
        let handle = match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.packet.is_none());
                slot.packet = Some(packet);
                PacketRef {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("packet slab overflow");
                self.slots.push(Slot {
                    generation: 0,
                    packet: Some(packet),
                });
                PacketRef {
                    index,
                    generation: 0,
                }
            }
        };
        #[cfg(feature = "sim-sanitizer")]
        self.check_conservation();
        handle
    }

    /// The packet behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is stale (its packet was already freed).
    #[inline]
    pub fn get(&self, handle: PacketRef) -> &Packet {
        let slot = &self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale PacketRef: slot {} was recycled",
            handle.index
        );
        slot.packet.as_ref().expect("stale PacketRef: slot freed")
    }

    /// Removes the packet behind `handle` from the slab and returns it,
    /// bumping the slot's generation so surviving copies of the handle are
    /// detected as stale.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is stale (double free).
    pub fn free(&mut self, handle: PacketRef) -> Packet {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "double free: slot {} was already recycled",
            handle.index
        );
        let packet = slot.packet.take().expect("double free: slot empty");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.live -= 1;
        #[cfg(feature = "sim-sanitizer")]
        self.check_conservation();
        packet
    }

    /// Number of packets currently live in the slab.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// `true` if no packets are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The maximum number of simultaneously live packets ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total packets ever allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, Lid, MsgId, PacketId, QpNum, ServiceLevel};
    use crate::wire::PacketKind;
    use rperf_sim::SimTime;

    fn mk(id: u64) -> Packet {
        Packet {
            id: PacketId::new(id),
            flow: FlowId::new(0),
            msg: MsgId::new(0),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(7),
            sl: ServiceLevel::new(0),
            kind: PacketKind::Ack,
            payload: 0,
            overhead: 36,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut slab = PacketSlab::with_capacity(4);
        let a = slab.alloc(mk(1));
        let b = slab.alloc(mk(2));
        assert_eq!(slab.get(a).id, PacketId::new(1));
        assert_eq!(slab.get(b).id, PacketId::new(2));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.free(a).id, PacketId::new(1));
        assert_eq!(slab.free(b).id, PacketId::new(2));
        assert!(slab.is_empty());
        assert_eq!(slab.high_water(), 2);
        assert_eq!(slab.allocated(), 2);
    }

    #[test]
    fn slots_are_recycled_lifo_with_new_generation() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(mk(1));
        slab.free(a);
        let b = slab.alloc(mk(2));
        // Same slot, different generation.
        assert_ne!(a, b);
        assert_eq!(slab.get(b).id, PacketId::new(2));
        assert_eq!(slab.high_water(), 1);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_get_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(mk(1));
        slab.free(a);
        slab.alloc(mk(2));
        slab.get(a);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(mk(1));
        slab.free(a);
        slab.alloc(mk(2)); // recycle the slot
        slab.free(a);
    }

    #[test]
    fn handles_are_deterministic() {
        let run = || {
            let mut slab = PacketSlab::new();
            let a = slab.alloc(mk(1));
            let b = slab.alloc(mk(2));
            slab.free(a);
            let c = slab.alloc(mk(3));
            slab.free(b);
            slab.free(c);
            (a, b, c)
        };
        assert_eq!(run(), run());
    }
}
