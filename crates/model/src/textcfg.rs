//! A dependency-free TOML-subset reader shared by every text config in
//! the suite.
//!
//! The grammar is the one PR 4 introduced for scenario specs — `key =
//! value` lines, `[section]` and `[[array-section]]` headers, `#`
//! comments that respect quoted strings, single-line arrays — factored
//! out of `rperf-core` so other tools (notably `rperf-lint`'s
//! `lint.toml`) parse their configs with the same code and the same
//! line-numbered errors.
//!
//! [`Document::parse`] is purely structural: it records every section in
//! order with its header line and raw header text, and leaves section
//! names, duplicate checks and key validation to the consumer, so each
//! consumer keeps full control over its own error messages.

use std::fmt;

/// A parse failure, locating the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the error.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Shorthand for building an `Err(ParseError)`.
pub fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// A parsed right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `42` or `0x2A`.
    Int(u64),
    /// `1.5`.
    Float(f64),
    /// `"text"`.
    Str(String),
    /// `[1, 2, 3]`.
    List(Vec<u64>),
    /// `[[0, 1], [1, 2]]`.
    Pairs(Vec<(usize, usize)>),
    /// `["a", "b"]`.
    StrList(Vec<String>),
}

impl Value {
    /// A short human name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "integer list",
            Value::Pairs(_) => "pair list",
            Value::StrList(_) => "string list",
        }
    }
}

fn parse_int(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Unescapes the body of a quoted string (only `\"` and `\\` escapes).
fn unescape(line: usize, body: &str) -> Result<String, ParseError> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return err(line, format!("bad escape `\\{:?}`", other)),
            }
        } else if c == '"' {
            return err(line, "unescaped quote inside string");
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Splits a bracket body on top-level commas, respecting quoted strings.
fn split_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
}

/// Parses one right-hand side.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying `line` when the text is not a
/// number, quoted string, or single-line list.
pub fn parse_value(line: usize, raw: &str) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return err(line, "missing value after `=`");
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return err(line, "unterminated string");
        };
        return Ok(Value::Str(unescape(line, body)?));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return err(line, "unterminated list (arrays must fit on one line)");
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(Value::List(Vec::new()));
        }
        if body.starts_with('"') {
            let mut items = Vec::new();
            for item in split_items(body) {
                let item = item.trim();
                let Some(inner) = item
                    .strip_prefix('"')
                    .and_then(|rest| rest.strip_suffix('"'))
                else {
                    return err(line, format!("`{item}` is not a quoted string"));
                };
                items.push(unescape(line, inner)?);
            }
            return Ok(Value::StrList(items));
        }
        if body.starts_with('[') {
            // A list of pairs: split on "]," boundaries.
            let mut pairs = Vec::new();
            for item in body.split("],") {
                let item = item.trim().trim_start_matches('[').trim_end_matches(']');
                let nums: Vec<&str> = item.split(',').map(str::trim).collect();
                if nums.len() != 2 {
                    return err(line, format!("`[{item}]` is not a pair"));
                }
                let a = parse_int(nums[0]);
                let b = parse_int(nums[1]);
                match (a, b) {
                    (Some(a), Some(b)) => pairs.push((a as usize, b as usize)),
                    _ => return err(line, format!("`[{item}]` is not an integer pair")),
                }
            }
            return Ok(Value::Pairs(pairs));
        }
        let mut items = Vec::new();
        for tok in body.split(',') {
            let tok = tok.trim();
            match parse_int(tok) {
                Some(v) => items.push(v),
                None => return err(line, format!("`{tok}` is not an integer")),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(v) = parse_int(raw) {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = raw.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    err(
        line,
        format!("`{raw}` is not a number, string, or list (strings need quotes)"),
    )
}

/// Coerces `v` to a string, naming `key` in the error.
///
/// # Errors
///
/// Returns a [`ParseError`] at `line` on a type mismatch.
pub fn expect_str(line: usize, key: &str, v: &Value) -> Result<String, ParseError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => err(
            line,
            format!("`{key}` expects a quoted string, got {}", other.type_name()),
        ),
    }
}

/// Coerces `v` to an integer, naming `key` in the error.
///
/// # Errors
///
/// Returns a [`ParseError`] at `line` on a type mismatch.
pub fn expect_int(line: usize, key: &str, v: &Value) -> Result<u64, ParseError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => err(
            line,
            format!("`{key}` expects an integer, got {}", other.type_name()),
        ),
    }
}

/// Coerces `v` to an integer list, naming `key` in the error.
///
/// # Errors
///
/// Returns a [`ParseError`] at `line` on a type mismatch.
pub fn expect_list(line: usize, key: &str, v: &Value) -> Result<Vec<u64>, ParseError> {
    match v {
        Value::List(items) => Ok(items.clone()),
        other => err(
            line,
            format!("`{key}` expects an integer list, got {}", other.type_name()),
        ),
    }
}

/// Coerces `v` to a string list (a lone string counts as a 1-list),
/// naming `key` in the error.
///
/// # Errors
///
/// Returns a [`ParseError`] at `line` on a type mismatch.
pub fn expect_str_list(line: usize, key: &str, v: &Value) -> Result<Vec<String>, ParseError> {
    match v {
        Value::StrList(items) => Ok(items.clone()),
        Value::Str(s) => Ok(vec![s.clone()]),
        // An empty `[]` lexes as an empty integer list; accept it.
        Value::List(items) if items.is_empty() => Ok(Vec::new()),
        other => err(
            line,
            format!("`{key}` expects a string list, got {}", other.type_name()),
        ),
    }
}

/// Coerces `v` to a number (integer or float), naming `key` in the error.
///
/// # Errors
///
/// Returns a [`ParseError`] at `line` on a type mismatch.
pub fn expect_number(line: usize, key: &str, v: &Value) -> Result<f64, ParseError> {
    match v {
        Value::Int(n) => Ok(*n as f64),
        Value::Float(f) => Ok(*f),
        other => err(
            line,
            format!("`{key}` expects a number, got {}", other.type_name()),
        ),
    }
}

/// One `key = value` occurrence, with its line for error reporting.
pub type Entry = (usize, String, Value);

/// A `[section]` / `[[section]]` body (or the top-of-file header).
#[derive(Debug, Default, Clone)]
pub struct Section {
    /// The name between the brackets, exactly as written (no trimming,
    /// so `[ foo ]` does *not* match `foo`). Empty for the top section
    /// and for malformed headers.
    pub name: String,
    /// The full header text as written, e.g. `[[role]]` — for error
    /// messages that quote the offending line.
    pub raw_header: String,
    /// `true` for `[[name]]` array-of-table headers.
    pub array: bool,
    /// 1-based line of the header (0 for the top section).
    pub header_line: usize,
    /// The `key = value` entries, in file order.
    pub entries: Vec<Entry>,
}

impl Section {
    /// The first value bound to `key`, with its line.
    pub fn get(&self, key: &str) -> Option<(usize, &Value)> {
        self.entries
            .iter()
            .find(|(_, k, _)| k == key)
            .map(|(l, _, v)| (*l, v))
    }

    /// Rejects any key outside `allowed`, quoting `kind` in the error.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] at the offending entry's line.
    pub fn check_keys(&self, kind: &str, allowed: &[&str]) -> Result<(), ParseError> {
        for (line, key, _) in &self.entries {
            if !allowed.contains(&key.as_str()) {
                return err(
                    *line,
                    format!("`{key}` is not a valid key for {kind} (expected one of {allowed:?})"),
                );
            }
        }
        Ok(())
    }
}

/// A whole parsed file: the headerless top section plus every named
/// section in file order.
#[derive(Debug, Default, Clone)]
pub struct Document {
    /// Entries before the first section header.
    pub top: Section,
    /// Named sections, in file order.
    pub sections: Vec<Section>,
}

impl Document {
    /// Parses `text` into sections without interpreting section names.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for a line that is neither blank, a
    /// section header, nor `key = value`, and for malformed values.
    pub fn parse(text: &str) -> Result<Document, ParseError> {
        let mut doc = Document::default();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                let (name, array) = if let Some(inner) = line
                    .strip_prefix("[[")
                    .and_then(|rest| rest.strip_suffix("]]"))
                {
                    (inner.to_string(), true)
                } else if let Some(inner) = line
                    .strip_prefix('[')
                    .and_then(|rest| rest.strip_suffix(']'))
                {
                    (inner.to_string(), false)
                } else {
                    // Malformed header: keep the raw text so the consumer
                    // can quote it in an "unknown section" error.
                    (String::new(), false)
                };
                doc.sections.push(Section {
                    name,
                    raw_header: line.to_string(),
                    array,
                    header_line: lineno,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(lineno, format!("expected `key = value`, got `{line}`"));
            };
            let key = key.trim().to_string();
            let value = parse_value(lineno, value)?;
            let section = doc.sections.last_mut().unwrap_or(&mut doc.top);
            section.entries.push((lineno, key, value));
        }
        Ok(doc)
    }
}

/// Strips a trailing `#` comment, respecting quoted strings.
pub fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keep_order_and_lines() {
        let doc = Document::parse(
            "top = 1\n# comment\n[alpha]\na = 2\n[[beta]]\nb = \"x\"\n[[beta]]\nb = \"y\"",
        )
        .unwrap();
        assert_eq!(doc.top.entries, vec![(1, "top".into(), Value::Int(1))]);
        assert_eq!(doc.sections.len(), 3);
        assert_eq!(doc.sections[0].name, "alpha");
        assert!(!doc.sections[0].array);
        assert_eq!(doc.sections[0].header_line, 3);
        assert_eq!(doc.sections[1].name, "beta");
        assert!(doc.sections[1].array);
        assert_eq!(doc.sections[2].get("b"), Some((8, &Value::Str("y".into()))));
    }

    #[test]
    fn malformed_headers_keep_raw_text() {
        let doc = Document::parse("[oops\nk = 1").unwrap();
        assert_eq!(doc.sections[0].name, "");
        assert_eq!(doc.sections[0].raw_header, "[oops");
        // `[ x ]` is a section named " x ", not "x": consumers match
        // exact names, preserving the strict PR 4 behaviour.
        let doc = Document::parse("[ x ]").unwrap();
        assert_eq!(doc.sections[0].name, " x ");
    }

    #[test]
    fn string_lists_respect_quotes_and_escapes() {
        let v = parse_value(1, r#"["a, b", "c \"q\"", ""]"#).unwrap();
        assert_eq!(
            v,
            Value::StrList(vec!["a, b".into(), "c \"q\"".into(), String::new()])
        );
        assert_eq!(
            expect_str_list(1, "k", &Value::List(Vec::new())).unwrap(),
            Vec::<String>::new()
        );
        assert!(parse_value(1, r#"["a", 3]"#).is_err());
    }

    #[test]
    fn scalar_values_parse() {
        assert_eq!(parse_value(1, "0x2A").unwrap(), Value::Int(42));
        assert_eq!(parse_value(1, "1.5").unwrap(), Value::Float(1.5));
        assert_eq!(
            parse_value(1, "[[0, 1], [2, 3]]").unwrap(),
            Value::Pairs(vec![(0, 1), (2, 3)])
        );
        let e = parse_value(7, "oops").unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.msg.contains("strings need quotes"), "{e}");
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment(r#"k = "a # b" # real"#), r#"k = "a # b" "#);
        let e = Document::parse("not a kv line").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("key = value"), "{e}");
    }
}
