//! IB wire formats: verbs, transports, header sizes and the [`Packet`]
//! unit that flows through the simulated fabric.

use rperf_sim::SimTime;

use crate::ids::{FlowId, Lid, MsgId, PacketId, QpNum, ServiceLevel};

/// The RDMA operation type ("verb") of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verb {
    /// Two-sided SEND: the remote host must have pre-posted a RECV.
    Send,
    /// One-sided RDMA WRITE into a remote memory region.
    Write,
    /// One-sided RDMA READ from a remote memory region.
    Read,
}

impl Verb {
    /// `true` for one-sided verbs (WRITE, READ).
    pub fn is_one_sided(self) -> bool {
        matches!(self, Verb::Write | Verb::Read)
    }
}

/// The RDMA transport type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Reliable Connection: acknowledged, supports all verbs.
    Rc,
    /// Unreliable Datagram: no ACKs, SEND/RECV only.
    Ud,
}

/// IB header field sizes in bytes.
///
/// These follow the InfiniBand Architecture Specification volume 1; the
/// paper quotes "up to 52 B" of per-packet header, which corresponds to the
/// local-route header stack plus link-level overhead modelled by
/// [`HeaderModel::link_overhead`].
pub mod header {
    /// Local Route Header.
    pub const LRH: u64 = 8;
    /// Base Transport Header.
    pub const BTH: u64 = 12;
    /// Datagram Extended Transport Header (UD only).
    pub const DETH: u64 = 8;
    /// RDMA Extended Transport Header (first packet of WRITE/READ).
    pub const RETH: u64 = 16;
    /// ACK Extended Transport Header.
    pub const AETH: u64 = 4;
    /// Invariant CRC.
    pub const ICRC: u64 = 4;
    /// Variant CRC.
    pub const VCRC: u64 = 2;
}

/// Computes per-packet wire overhead for the various packet types.
///
/// The paper notes IB headers "can be up to 52 B" — that bound includes
/// the optional 40-byte GRH, which LID-routed rack traffic does not carry.
/// The local header stack is LRH+BTH+ICRC+VCRC = 26 B; the model adds a
/// small per-packet link-level pad (symbol/flow-control amortization).
/// Keeping small-packet overhead realistic matters: the paper's Fig. 9
/// pushes 70 % of link capacity with 128-byte messages, which is only
/// possible with the thin header stack.
///
/// # Examples
///
/// ```
/// use rperf_model::wire::{HeaderModel, Transport, Verb};
///
/// let h = HeaderModel::default();
/// // RC SEND data packet: LRH+BTH+ICRC+VCRC plus link overhead.
/// assert_eq!(h.data_overhead(Verb::Send, Transport::Rc, true), 32);
/// // ACK: LRH+BTH+AETH+ICRC+VCRC plus link overhead.
/// assert_eq!(h.ack_overhead(), 36);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeaderModel {
    /// Extra per-packet link-level bytes (symbol overhead, flow-control
    /// amortization expressed in byte-times).
    pub link_overhead: u64,
}

impl Default for HeaderModel {
    fn default() -> Self {
        HeaderModel { link_overhead: 6 }
    }
}

impl HeaderModel {
    /// Overhead of a data packet of the given verb/transport. `first` marks
    /// the first packet of a message (which carries the RETH for one-sided
    /// verbs).
    pub fn data_overhead(&self, verb: Verb, transport: Transport, first: bool) -> u64 {
        let mut oh = header::LRH + header::BTH + header::ICRC + header::VCRC + self.link_overhead;
        if transport == Transport::Ud {
            oh += header::DETH;
        }
        if first && verb.is_one_sided() {
            oh += header::RETH;
        }
        oh
    }

    /// Overhead (= full wire size) of an ACK packet.
    pub fn ack_overhead(&self) -> u64 {
        header::LRH + header::BTH + header::AETH + header::ICRC + header::VCRC + self.link_overhead
    }

    /// Overhead (= full wire size) of a READ request packet.
    pub fn read_request_overhead(&self) -> u64 {
        header::LRH + header::BTH + header::RETH + header::ICRC + header::VCRC + self.link_overhead
    }
}

/// What a packet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data-bearing packet (SEND / WRITE payload, or READ response data).
    Data {
        /// The verb of the parent message.
        verb: Verb,
        /// The transport of the parent message.
        transport: Transport,
        /// Zero-based index of this packet within the message.
        index: u32,
        /// `true` if this is the last packet of the message.
        last: bool,
    },
    /// A transport-level acknowledgment (RC only).
    Ack,
    /// A READ request travelling requester → responder.
    ReadRequest {
        /// Bytes requested.
        bytes: u64,
    },
}

impl PacketKind {
    /// `true` for data packets.
    pub fn is_data(self) -> bool {
        matches!(self, PacketKind::Data { .. })
    }

    /// `true` if this packet completes a message at the receiver.
    pub fn is_last_data(self) -> bool {
        matches!(self, PacketKind::Data { last: true, .. })
    }
}

/// One packet on the wire.
///
/// Packets are passive data (fields public): device models consume and
/// produce them, and never share them — each packet has exactly one owner
/// at any simulated instant, mirroring a real buffer occupancy.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Unique packet id (for tracing).
    pub id: PacketId,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// The message this packet belongs to.
    pub msg: MsgId,
    /// Source end-port LID.
    pub src: Lid,
    /// Destination end-port LID.
    pub dst: Lid,
    /// Destination queue pair (for delivery bookkeeping).
    pub dst_qp: QpNum,
    /// Service level carried in the header.
    pub sl: ServiceLevel,
    /// Packet type.
    pub kind: PacketKind,
    /// Payload bytes in this packet (0 for ACK / ReadRequest).
    pub payload: u64,
    /// Header + link overhead bytes.
    pub overhead: u64,
    /// When the first bit left the source RNIC.
    pub injected_at: SimTime,
}

impl Packet {
    /// Total bytes this packet occupies on a link and in switch buffers.
    pub fn wire_size(&self) -> u64 {
        self.payload + self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(kind: PacketKind, payload: u64, overhead: u64) -> Packet {
        Packet {
            id: PacketId::new(1),
            flow: FlowId::new(0),
            msg: MsgId::new(0),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(7),
            sl: ServiceLevel::new(0),
            kind,
            payload,
            overhead,
            injected_at: SimTime::ZERO,
        }
    }

    #[test]
    fn wire_size_sums_payload_and_overhead() {
        let p = packet(
            PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            4096,
            52,
        );
        assert_eq!(p.wire_size(), 4148);
        assert!(p.kind.is_data());
        assert!(p.kind.is_last_data());
    }

    #[test]
    fn header_model_overheads() {
        let h = HeaderModel::default();
        // UD SEND carries the DETH.
        assert_eq!(
            h.data_overhead(Verb::Send, Transport::Ud, true),
            32 + header::DETH
        );
        // WRITE first packet carries the RETH; later packets do not.
        assert_eq!(
            h.data_overhead(Verb::Write, Transport::Rc, true),
            32 + header::RETH
        );
        assert_eq!(h.data_overhead(Verb::Write, Transport::Rc, false), 32);
        assert_eq!(h.read_request_overhead(), 48);
    }

    #[test]
    fn ack_is_not_data() {
        assert!(!PacketKind::Ack.is_data());
        assert!(!PacketKind::Ack.is_last_data());
        assert!(!PacketKind::ReadRequest { bytes: 64 }.is_data());
    }

    #[test]
    fn non_last_data_does_not_complete() {
        let k = PacketKind::Data {
            verb: Verb::Send,
            transport: Transport::Rc,
            index: 0,
            last: false,
        };
        assert!(k.is_data());
        assert!(!k.is_last_data());
    }

    #[test]
    fn one_sided_classification() {
        assert!(Verb::Write.is_one_sided());
        assert!(Verb::Read.is_one_sided());
        assert!(!Verb::Send.is_one_sided());
    }
}
