//! The latency-sensitive generator skeleton (application-level view).

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_model::{QpNum, ServiceLevel, Transport, Verb};
use rperf_sim::{SimDuration, SimTime};
use rperf_stats::LatencyHistogram;
use rperf_verbs::{Cqe, CqeOpcode, SendWr, WrId};

/// Configuration of a [`ClosedLoopPing`] (and of the RPerf LSG built on
/// the same pattern in the `rperf` crate).
#[derive(Debug, Clone)]
pub struct LsgConfig {
    /// Destination node index.
    pub target: usize,
    /// Payload bytes (the paper's LSG uses 64 B).
    pub payload: u64,
    /// Service level of the flow.
    pub sl: ServiceLevel,
    /// Samples before this instant are discarded (warm-up).
    pub warmup: SimDuration,
    /// Think time between a completion and the next message (0 = back to
    /// back).
    pub think: SimDuration,
}

impl LsgConfig {
    /// The paper's LSG: 64-byte messages, SL0, 100 µs warm-up, no think
    /// time.
    pub fn new(target: usize) -> Self {
        LsgConfig {
            target,
            payload: 64,
            sl: ServiceLevel::new(0),
            warmup: SimDuration::from_us(100),
            think: SimDuration::ZERO,
        }
    }

    /// Sets the payload size (builder style).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }

    /// Sets the service level (builder style).
    pub fn with_sl(mut self, sl: ServiceLevel) -> Self {
        self.sl = sl;
        self
    }

    /// Sets the warm-up horizon (builder style).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }
}

/// A closed-loop latency prober: one outstanding RC SEND at a time,
/// recording post-to-completion times at application level.
///
/// This measures what a naive tool would (including every local-side
/// overhead); the RPerf app in the `rperf` crate applies the paper's
/// loopback-subtraction methodology on top of the same traffic pattern.
#[derive(Debug)]
pub struct ClosedLoopPing {
    cfg: LsgConfig,
    qp: Option<QpNum>,
    iter: u64,
    posted_at: SimTime,
    hist: LatencyHistogram,
}

impl ClosedLoopPing {
    /// Creates the prober.
    pub fn new(cfg: LsgConfig) -> Self {
        ClosedLoopPing {
            cfg,
            qp: None,
            iter: 0,
            posted_at: SimTime::ZERO,
            hist: LatencyHistogram::new(),
        }
    }

    /// The recorded post-to-completion histogram (picoseconds).
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Completed iterations (including warm-up).
    pub fn iterations(&self) -> u64 {
        self.iter
    }

    fn fire(&mut self, ctx: &mut Ctx<'_>) {
        let Some(qp) = self.qp else {
            debug_assert!(false, "fire before start");
            return;
        };
        self.posted_at = ctx.now();
        let wr = SendWr::new(WrId(self.iter), Verb::Send, self.cfg.payload)
            .to(ctx.lid_of(self.cfg.target), QpNum::new(1))
            .with_sl(self.cfg.sl);
        if ctx.post_send(qp, wr).is_err() {
            debug_assert!(false, "invalid LSG work request");
        }
    }
}

impl App for ClosedLoopPing {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.qp = Some(ctx.create_qp(Transport::Rc));
        self.fire(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Send {
            return;
        }
        self.iter += 1;
        let now = ctx.now();
        if now >= SimTime::ZERO + self.cfg.warmup {
            self.hist.record((now - self.posted_at).as_ps());
        }
        if self.cfg.think == SimDuration::ZERO {
            self.fire(ctx);
        } else {
            ctx.set_timer(self.cfg.think, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.fire(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sink;
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::ClusterConfig;

    #[test]
    fn closed_loop_measures_stable_zero_load_latency() {
        let cfg = ClusterConfig::omnet_simulator();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 21));
        sim.add_app(
            0,
            Box::new(ClosedLoopPing::new(
                LsgConfig::new(1).with_warmup(SimDuration::from_us(20)),
            )),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(500));
        let lsg = sim.app_as::<ClosedLoopPing>(0);
        assert!(lsg.iterations() > 100);
        let h = lsg.histogram();
        // Application-level latency includes posting overheads; expect a
        // couple of microseconds at zero load, and a tight distribution in
        // the deterministic simulator profile.
        let p50 = h.percentile(50.0);
        assert!(
            (500_000..4_000_000).contains(&p50),
            "p50 {p50} ps out of the expected zero-load band"
        );
        let spread = h.percentile(99.9) - h.percentile(50.0);
        assert!(
            spread < 200_000,
            "deterministic profile should be tight, spread {spread} ps"
        );
    }

    #[test]
    fn think_time_paces_iterations() {
        let cfg = ClusterConfig::omnet_simulator();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 22));
        let mut lcfg = LsgConfig::new(1).with_warmup(SimDuration::ZERO);
        lcfg.think = SimDuration::from_us(10);
        sim.add_app(0, Box::new(ClosedLoopPing::new(lcfg)));
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(1000));
        let lsg = sim.app_as::<ClosedLoopPing>(0);
        // ~1000 µs / (10 µs think + ~1–2 µs RTT) ⇒ well under 100.
        assert!(
            (50..100).contains(&(lsg.iterations() as i64)),
            "iterations {}",
            lsg.iterations()
        );
    }
}
