//! Declarative workload construction: one factory mapping a role
//! description to a boxed [`App`].
//!
//! The scenario executor in the `rperf` crate attaches every application
//! through role tables rather than hand-written `add_app` sequences; this
//! module is the workload half of that factory (the measurement tools —
//! RPerf, perftest, qperf — are built by the `rperf` crate itself, which
//! sits above this one in the dependency order).

use rperf_fabric::App;
use rperf_model::ServiceLevel;
use rperf_sim::SimDuration;

use crate::{Bsg, BsgConfig, ClosedLoopPing, LsgConfig, PretendLsg, Sink};

/// A plain-data description of one workload application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadRole {
    /// A bandwidth-sensitive generator ([`Bsg`]).
    Bsg {
        /// Destination node index.
        target: usize,
        /// Payload bytes per message.
        payload: u64,
        /// Open-loop posting window.
        window: usize,
        /// Messages per doorbell.
        batch: usize,
        /// Service level of the flow.
        sl: ServiceLevel,
    },
    /// A closed-loop latency prober ([`ClosedLoopPing`]).
    Lsg {
        /// Destination node index.
        target: usize,
        /// Payload bytes per probe.
        payload: u64,
        /// Service level of the flow.
        sl: ServiceLevel,
    },
    /// The QoS-gaming adversary ([`PretendLsg`]).
    PretendLsg {
        /// Destination node index.
        target: usize,
        /// Bytes per segmented message (the paper uses 256 B).
        chunk: u64,
        /// The latency-class service level it masquerades on.
        sl: ServiceLevel,
    },
    /// The destination server ([`Sink`]).
    Sink,
}

/// Builds the application for a workload role.
///
/// `warmup` is the scenario-wide warm-up horizon: samples and bandwidth
/// before it are discarded by every generator.
pub fn build_workload(role: &WorkloadRole, warmup: SimDuration) -> Box<dyn App> {
    match role {
        WorkloadRole::Bsg {
            target,
            payload,
            window,
            batch,
            sl,
        } => Box::new(Bsg::new(
            BsgConfig::new(*target, *payload)
                .with_window(*window)
                .with_batch(*batch)
                .with_sl(*sl)
                .with_warmup(warmup),
        )),
        WorkloadRole::Lsg {
            target,
            payload,
            sl,
        } => Box::new(ClosedLoopPing::new(
            LsgConfig::new(*target)
                .with_payload(*payload)
                .with_sl(*sl)
                .with_warmup(warmup),
        )),
        WorkloadRole::PretendLsg { target, chunk, sl } => {
            Box::new(PretendLsg::new(*target, *chunk, *sl, warmup))
        }
        WorkloadRole::Sink => Box::new(Sink::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_role() {
        let warmup = SimDuration::from_us(50);
        let bsg = build_workload(
            &WorkloadRole::Bsg {
                target: 1,
                payload: 4096,
                window: 128,
                batch: 1,
                sl: ServiceLevel::new(0),
            },
            warmup,
        );
        assert!(bsg.as_any().downcast_ref::<Bsg>().is_some());
        let lsg = build_workload(
            &WorkloadRole::Lsg {
                target: 1,
                payload: 64,
                sl: ServiceLevel::new(0),
            },
            warmup,
        );
        assert!(lsg.as_any().downcast_ref::<ClosedLoopPing>().is_some());
        let hog = build_workload(
            &WorkloadRole::PretendLsg {
                target: 1,
                chunk: 256,
                sl: ServiceLevel::new(1),
            },
            warmup,
        );
        assert!(hog.as_any().downcast_ref::<PretendLsg>().is_some());
        let sink = build_workload(&WorkloadRole::Sink, warmup);
        assert!(sink.as_any().downcast_ref::<Sink>().is_some());
    }
}
