//! The destination server.

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_model::Transport;
use rperf_sim::SimTime;
use rperf_stats::BandwidthMeter;
use rperf_verbs::{Cqe, CqeOpcode, RecvWr, WrId};

/// The receive side of every experiment: keeps the receive queue charged
/// and meters deliveries.
///
/// All generators address QP 1 on the destination, which is the first QP
/// the sink creates.
#[derive(Debug)]
pub struct Sink {
    recvs: u64,
    meter: BandwidthMeter,
    last_at: SimTime,
    qp: Option<rperf_model::QpNum>,
    next_wr: u64,
}

impl Sink {
    /// Creates a sink.
    pub fn new() -> Self {
        Sink {
            recvs: 0,
            meter: BandwidthMeter::new(),
            last_at: SimTime::ZERO,
            qp: None,
            next_wr: 0,
        }
    }

    /// Messages delivered.
    pub fn recvs(&self) -> u64 {
        self.recvs
    }

    /// The delivery meter (windowed from t = 0; deliveries are usually
    /// accounted at the sources instead).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Time of the last delivery.
    pub fn last_at(&self) -> SimTime {
        self.last_at
    }
}

impl Default for Sink {
    fn default() -> Self {
        Self::new()
    }
}

impl App for Sink {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let qp = ctx.create_qp(Transport::Rc);
        self.qp = Some(qp);
        for _ in 0..4096 {
            let id = self.next_wr;
            self.next_wr += 1;
            ctx.post_recv(qp, RecvWr::new(WrId(id), 1 << 20));
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Recv {
            return;
        }
        self.recvs += 1;
        self.last_at = ctx.now();
        self.meter.record(ctx.now().as_ps(), cqe.bytes);
        // Replenish the consumed buffer.
        let Some(qp) = self.qp else {
            debug_assert!(false, "CQE before start");
            return;
        };
        let id = self.next_wr;
        self.next_wr += 1;
        ctx.post_recv(qp, RecvWr::new(WrId(id), 1 << 20));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bsg, BsgConfig};
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::ClusterConfig;
    use rperf_sim::SimDuration;

    #[test]
    fn sink_never_runs_out_of_recvs() {
        let cfg = ClusterConfig::omnet_simulator();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 31));
        sim.add_app(
            0,
            Box::new(Bsg::new(
                BsgConfig::new(1, 4096).with_warmup(SimDuration::ZERO),
            )),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(3000));
        let sink = sim.app_as::<Sink>(1);
        assert!(sink.recvs() > 1000);
        // No auto-filled receives: the sink kept up.
        assert_eq!(sim.fabric().rnic(1).stats().recv_autofills, 0);
    }
}
