//! The bandwidth-sensitive generator.

use std::any::Any;

use rperf_fabric::{App, Ctx};
use rperf_model::{QpNum, ServiceLevel, Transport, Verb};
use rperf_sim::SimDuration;
use rperf_stats::BandwidthMeter;
use rperf_verbs::{Cqe, CqeOpcode, SendWr, WrId};

/// Configuration of a [`Bsg`].
#[derive(Debug, Clone)]
pub struct BsgConfig {
    /// Destination node index.
    pub target: usize,
    /// Payload bytes per message.
    pub payload: u64,
    /// Messages kept in flight (open-loop window).
    pub window: usize,
    /// Messages per doorbell. 1 disables batching; the paper's
    /// small-payload experiments (Section VIII-A) and the pretend LSG use
    /// larger batches.
    pub batch: usize,
    /// Service level of the flow.
    pub sl: ServiceLevel,
    /// Completions before this instant are excluded from the bandwidth
    /// accounting (warm-up).
    pub warmup: SimDuration,
}

impl BsgConfig {
    /// A conventional bulk flow: `payload`-byte messages to `target`,
    /// window 128, no batching, SL0, 100 µs warm-up.
    pub fn new(target: usize, payload: u64) -> Self {
        BsgConfig {
            target,
            payload,
            window: 128,
            batch: 1,
            sl: ServiceLevel::new(0),
            warmup: SimDuration::from_us(100),
        }
    }

    /// Sets the doorbell batch size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Sets the service level (builder style).
    pub fn with_sl(mut self, sl: ServiceLevel) -> Self {
        self.sl = sl;
        self
    }

    /// Sets the in-flight window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        self.window = window;
        self
    }

    /// Sets the warm-up horizon (builder style).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }
}

/// The bandwidth-sensitive generator: keeps `window` RC SENDs in flight
/// and accounts every acknowledged message after warm-up.
///
/// Goodput is measured at the *source* from completions — in steady state
/// this equals delivery at the destination (RC completions are
/// acknowledgment-driven).
#[derive(Debug)]
pub struct Bsg {
    cfg: BsgConfig,
    qp: Option<QpNum>,
    next_wr: u64,
    pending_repost: usize,
    meter: BandwidthMeter,
    completed: u64,
}

impl Bsg {
    /// Creates a generator from its configuration.
    pub fn new(cfg: BsgConfig) -> Self {
        Bsg {
            cfg,
            qp: None,
            next_wr: 0,
            pending_repost: 0,
            meter: BandwidthMeter::new(),
            completed: 0,
        }
    }

    /// The bandwidth meter (windowed at the configured warm-up).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Acknowledged messages since the run started (including warm-up).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Goodput in Gbps over `[warmup, end_ps]`.
    pub fn gbps_until(&self, end_ps: u64) -> f64 {
        self.meter.gbps_until(end_ps)
    }

    fn make_wr(&mut self, ctx: &Ctx<'_>) -> SendWr {
        let id = self.next_wr;
        self.next_wr += 1;
        SendWr::new(WrId(id), Verb::Send, self.cfg.payload)
            .to(ctx.lid_of(self.cfg.target), QpNum::new(1))
            .with_sl(self.cfg.sl)
    }

    fn post_batch(&mut self, ctx: &mut Ctx<'_>, count: usize) {
        let Some(qp) = self.qp else {
            debug_assert!(false, "post_batch before start");
            return;
        };
        let wrs: Vec<SendWr> = (0..count).map(|_| self.make_wr(ctx)).collect();
        if ctx.post_send_batch(qp, wrs).is_err() {
            debug_assert!(false, "invalid BSG work requests");
        }
    }
}

impl App for Bsg {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.qp = Some(ctx.create_qp(Transport::Rc));
        self.meter.open_window(self.cfg.warmup.as_ps());
        // Fill the window in batch-sized doorbells.
        let mut remaining = self.cfg.window;
        while remaining > 0 {
            let n = remaining.min(self.cfg.batch);
            self.post_batch(ctx, n);
            remaining -= n;
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode != CqeOpcode::Send {
            return;
        }
        self.completed += 1;
        self.meter.record(ctx.now().as_ps(), cqe.bytes);
        // Batching: accumulate completions, repost one doorbell per batch.
        self.pending_repost += 1;
        if self.pending_repost >= self.cfg.batch {
            let n = self.pending_repost;
            self.pending_repost = 0;
            self.post_batch(ctx, n);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A bandwidth hog masquerading as latency-sensitive traffic
/// (Section VIII-C "Gaming the dedicated SL/VL setup"): bulk data
/// segmented into 256-byte messages on the latency SL, posted in large
/// batched bursts to maximize throughput.
#[derive(Debug)]
pub struct PretendLsg {
    inner: Bsg,
}

impl PretendLsg {
    /// Creates the adversary: `payload`-byte messages (the paper uses
    /// 256 B — small enough to qualify for the latency SL) on `sl`, batch
    /// 64, a deep window.
    pub fn new(target: usize, payload: u64, sl: ServiceLevel, warmup: SimDuration) -> Self {
        PretendLsg {
            inner: Bsg::new(
                BsgConfig::new(target, payload)
                    .with_sl(sl)
                    .with_batch(32)
                    .with_window(512)
                    .with_warmup(warmup),
            ),
        }
    }

    /// The underlying generator (for metering).
    pub fn bsg(&self) -> &Bsg {
        &self.inner
    }
}

impl App for PretendLsg {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.inner.start(ctx);
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        self.inner.on_cqe(ctx, cqe);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_fabric::{Fabric, Sim};
    use rperf_model::analytic::wire_limited_goodput_gbps;
    use rperf_model::ClusterConfig;
    use rperf_sim::SimTime;

    use crate::Sink;

    fn run_bsg(payload: u64, ms: u64) -> (f64, u64) {
        let cfg = ClusterConfig::omnet_simulator();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 11));
        let warmup = SimDuration::from_us(50);
        sim.add_app(
            0,
            Box::new(Bsg::new(BsgConfig::new(1, payload).with_warmup(warmup))),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        let end = SimTime::ZERO + SimDuration::from_us(ms * 1000);
        sim.run_until(end);
        let bsg = sim.app_as::<Bsg>(0);
        (bsg.gbps_until(end.as_ps()), bsg.completed())
    }

    #[test]
    fn large_payload_reaches_wire_limit() {
        let cfg = ClusterConfig::omnet_simulator();
        let expected = wire_limited_goodput_gbps(&cfg, 4096);
        let (gbps, done) = run_bsg(4096, 2);
        assert!(done > 1000);
        assert!(
            (gbps - expected).abs() / expected < 0.06,
            "goodput {gbps:.2} vs wire limit {expected:.2}"
        );
    }

    #[test]
    fn small_payload_is_message_rate_limited() {
        let cfg = ClusterConfig::omnet_simulator();
        let rate_limit = rperf_model::analytic::rate_limited_goodput_gbps(&cfg, 64);
        let (gbps, _) = run_bsg(64, 2);
        assert!(
            (gbps - rate_limit).abs() / rate_limit < 0.10,
            "goodput {gbps:.2} vs engine limit {rate_limit:.2}"
        );
        // The headline observation of Fig. 5: tiny fraction of the link.
        assert!(gbps < 6.0, "64 B flows must not exceed a few Gbps: {gbps}");
    }

    #[test]
    fn batching_posts_in_bursts() {
        let cfg = ClusterConfig::omnet_simulator();
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 13));
        sim.add_app(
            0,
            Box::new(Bsg::new(
                BsgConfig::new(1, 256)
                    .with_batch(32)
                    .with_window(64)
                    .with_warmup(SimDuration::ZERO),
            )),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_until(SimTime::from_us(500));
        let bsg = sim.app_as::<Bsg>(0);
        assert!(
            bsg.completed() > 100,
            "only {} completions",
            bsg.completed()
        );
    }

    #[test]
    fn pretend_lsg_uses_the_configured_sl() {
        let pretend = PretendLsg::new(1, 256, ServiceLevel::new(1), SimDuration::ZERO);
        assert_eq!(pretend.bsg().cfg.sl, ServiceLevel::new(1));
        assert_eq!(pretend.bsg().cfg.batch, 32);
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn zero_batch_rejected() {
        let _ = BsgConfig::new(1, 64).with_batch(0);
    }
}
