//! Traffic generators: the paper's two workload archetypes plus the
//! QoS-gaming adversary.
//!
//! * [`Bsg`] — the **Bandwidth-Sensitive Generator** (Section V): open-loop
//!   RC SEND flows with a configurable payload size, posting window and
//!   doorbell batching; measures its achieved goodput from acknowledged
//!   messages inside the measurement window.
//! * [`ClosedLoopPing`] — the **Latency-Sensitive Generator** skeleton:
//!   synchronous (closed-loop) small messages, one outstanding at a time.
//!   The paper's LSG measures its RTT with RPerf (crate `rperf`); this app
//!   provides the plain application-level view used for cross-checks.
//! * [`PretendLsg`] — a BSG that games the QoS configuration
//!   (Section VIII-C): bulk data segmented into small high-SL messages,
//!   posted in aggressive bursts.
//! * [`Sink`] — the destination server: keeps receive queues charged and
//!   counts per-run deliveries.
//! * [`pair_at_hops`] / [`incast_sources`] — pod-aware placement over
//!   fat-tree fabrics: victim pairs at a chosen hop distance and incast
//!   source sets spread over remote edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsg;
mod lsg;
mod placement;
mod role;
mod sink;

pub use bsg::{Bsg, BsgConfig, PretendLsg};
pub use lsg::{ClosedLoopPing, LsgConfig};
pub use placement::{incast_sources, pair_at_hops};
pub use role::{build_workload, WorkloadRole};
pub use sink::Sink;
