//! Pod-aware role placement over fat-tree fabrics.
//!
//! The converged-traffic experiments need host pairs at a *chosen* hop
//! distance (the victim flow) and incast source sets that converge on a
//! destination from maximally remote edges (the background load). Both
//! are pure functions of [`FatTreeParams`], so placements are identical
//! across runs, shard counts and job counts.

use rperf_subnet::FatTreeParams;

/// A source/destination host pair whose shortest path crosses exactly
/// `hops` switches, or `None` if the fabric has no such pair.
///
/// Hop counts follow the fat-tree structure: `1` is two hosts on one
/// edge switch, `3` crosses the spine (2-tier) or stays within a pod
/// (3-tier), `5` crosses pods (3-tier only).
pub fn pair_at_hops(ft: &FatTreeParams, hops: u32) -> Option<(usize, usize)> {
    let hpe = ft.hosts_per_edge();
    match hops {
        1 if hpe >= 2 => Some((0, 1)),
        3 => {
            // The first host of edge 0 and of the next edge reachable
            // without leaving the pod (any edge, for 2 tiers).
            let edges_per_pod = if ft.tiers == 2 { ft.edges() } else { ft.k / 2 };
            (edges_per_pod >= 2).then_some((0, hpe))
        }
        5 if ft.tiers == 3 => {
            let hosts_per_pod = hpe * ft.k / 2;
            (ft.k >= 2).then_some((0, hosts_per_pod))
        }
        _ => None,
    }
}

/// `n` incast sources converging on `dst`, spread round-robin over the
/// other edge switches first (remote sources stress the trunk fan-in;
/// `dst`'s own edge is drawn on last within each round).
///
/// # Panics
///
/// Panics if the fabric has fewer than `n` hosts besides `dst`.
pub fn incast_sources(ft: &FatTreeParams, dst: usize, n: usize) -> Vec<usize> {
    assert!(
        n < ft.hosts(),
        "{n} sources requested but only {} hosts exist besides the destination",
        ft.hosts() - 1
    );
    let edges = ft.edges();
    let hpe = ft.hosts_per_edge();
    let dst_edge = ft.edge_of_host(dst);
    let mut out = Vec::with_capacity(n);
    for round in 0..hpe {
        for off in 1..=edges {
            if out.len() == n {
                return out;
            }
            let host = (dst_edge + off) % edges * hpe + round;
            if host != dst {
                out.push(host);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_exist_at_every_advertised_depth() {
        let two = FatTreeParams::new(4, 2, 1);
        assert_eq!(pair_at_hops(&two, 1), Some((0, 1)));
        assert_eq!(pair_at_hops(&two, 3), Some((0, 2)));
        assert_eq!(pair_at_hops(&two, 5), None, "2-tier tops out at 3 hops");

        let three = FatTreeParams::new(4, 3, 1);
        assert_eq!(pair_at_hops(&three, 1), Some((0, 1)));
        // Same pod, different edge: hosts 0 and 2.
        assert_eq!(pair_at_hops(&three, 3), Some((0, 2)));
        // Cross-pod: pod 0 holds hosts 0..4.
        assert_eq!(pair_at_hops(&three, 5), Some((0, 4)));
    }

    #[test]
    fn degenerate_shapes_report_missing_depths() {
        // One host per edge: no same-edge pair.
        let skinny = FatTreeParams::new(2, 2, 1);
        assert_eq!(skinny.hosts_per_edge(), 1);
        assert_eq!(pair_at_hops(&skinny, 1), None);
        // k = 2, 3 tiers: one edge per pod, so no 3-hop pair.
        let tiny = FatTreeParams::new(2, 3, 1);
        assert_eq!(pair_at_hops(&tiny, 3), None);
        assert_eq!(pair_at_hops(&tiny, 5), Some((0, 1)));
    }

    #[test]
    fn incast_spreads_remote_edges_first() {
        let ft = FatTreeParams::new(4, 3, 1); // 8 edges, 2 hosts each
        let sources = incast_sources(&ft, 0, 8);
        // One host per edge, starting from edge 1, before any edge
        // repeats (the destination itself is skipped when its edge comes
        // up); the eighth source starts the second round on edge 1.
        assert_eq!(sources, vec![2, 4, 6, 8, 10, 12, 14, 3]);
        // Exhaustive draw covers every other host exactly once.
        let mut all = incast_sources(&ft, 0, 15);
        all.sort_unstable();
        assert_eq!(all, (1..16).collect::<Vec<_>>());
    }

    #[test]
    fn placement_is_deterministic() {
        let ft = FatTreeParams::new(8, 2, 2);
        assert_eq!(incast_sources(&ft, 5, 12), incast_sources(&ft, 5, 12));
    }

    #[test]
    #[should_panic(expected = "sources requested")]
    fn oversubscribed_incast_panics() {
        let ft = FatTreeParams::new(2, 2, 1);
        let _ = incast_sources(&ft, 0, 2);
    }
}
