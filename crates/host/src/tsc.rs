//! The time-stamp-counter model.

use rperf_sim::{SimDuration, SimTime};

/// A raw TSC reading, in cycles since the host's (arbitrary) counter epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tsc(pub u64);

impl Tsc {
    /// Cycles elapsed since an earlier reading (saturating).
    pub fn cycles_since(self, earlier: Tsc) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// A per-host invariant TSC.
///
/// Models the three properties that matter for latency measurement:
///
/// 1. **Quantization** — readings are whole cycles (≈ 454.5 ps at 2.2 GHz),
///    so sub-cycle intervals are invisible.
/// 2. **Read cost** — `rdtsc` (with the serializing fences Intel
///    recommends) takes tens of cycles of wall time; the caller observes
///    the world as of the *start* of the read but cannot issue another
///    operation until [`TscClock::read_cost`] later.
/// 3. **Epoch offset** — each host's counter starts at an arbitrary value,
///    so timestamps from different hosts are not comparable. This is why
///    RPerf computes RTT from *one* host's clock only (Eq. 1).
///
/// # Examples
///
/// ```
/// use rperf_host::TscClock;
/// use rperf_sim::{SimDuration, SimTime};
///
/// let clock = TscClock::new(2.2, 12345);
/// let a = clock.read(SimTime::ZERO);
/// let b = clock.read(SimTime::ZERO + SimDuration::from_us(1));
/// let d = clock.to_duration(b.cycles_since(a));
/// assert!((d.as_ns_f64() - 1000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TscClock {
    ghz: f64,
    epoch_offset_cycles: u64,
    read_cost: SimDuration,
}

impl TscClock {
    /// Creates a clock at `ghz` gigahertz with an arbitrary epoch offset
    /// (use a per-host seed so hosts differ).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive.
    pub fn new(ghz: f64, epoch_offset_cycles: u64) -> Self {
        assert!(ghz > 0.0, "TSC frequency must be positive, got {ghz}");
        TscClock {
            ghz,
            epoch_offset_cycles,
            read_cost: SimDuration::from_ns(8),
        }
    }

    /// Sets the wall-time cost of one `rdtsc` read (builder style).
    pub fn with_read_cost(mut self, cost: SimDuration) -> Self {
        self.read_cost = cost;
        self
    }

    /// The counter frequency in GHz.
    pub fn ghz(&self) -> f64 {
        self.ghz
    }

    /// The wall-time cost of one read.
    pub fn read_cost(&self) -> SimDuration {
        self.read_cost
    }

    /// Reads the counter at simulated instant `now` (cycle-quantized).
    pub fn read(&self, now: SimTime) -> Tsc {
        let cycles = (now.as_ps() as f64 * self.ghz / 1e3).floor() as u64;
        Tsc(cycles.wrapping_add(self.epoch_offset_cycles))
    }

    /// Converts a cycle count to a duration.
    pub fn to_duration(&self, cycles: u64) -> SimDuration {
        SimDuration::from_ps((cycles as f64 * 1e3 / self.ghz).round() as u64)
    }

    /// Converts a duration to (whole) cycles.
    pub fn to_cycles(&self, d: SimDuration) -> u64 {
        (d.as_ps() as f64 * self.ghz / 1e3).floor() as u64
    }

    /// One cycle, as a duration — the quantization granularity.
    pub fn cycle(&self) -> SimDuration {
        SimDuration::from_ps((1e3 / self.ghz).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_floor() {
        let c = TscClock::new(2.2, 0);
        // One cycle at 2.2 GHz is ~454.5 ps; reading at 400 ps yields 0 cycles.
        assert_eq!(c.read(SimTime::from_ps(400)), Tsc(0));
        assert_eq!(c.read(SimTime::from_ps(500)), Tsc(1));
    }

    #[test]
    fn offset_applies_but_cancels_in_differences() {
        let a = TscClock::new(2.2, 1_000_000);
        let b = TscClock::new(2.2, 0);
        let t = SimTime::from_us(3);
        assert_ne!(a.read(t), b.read(t));
        let d_a = a.read(t).cycles_since(a.read(SimTime::ZERO));
        let d_b = b.read(t).cycles_since(b.read(SimTime::ZERO));
        assert_eq!(d_a, d_b);
    }

    #[test]
    fn roundtrip_duration_conversion() {
        let c = TscClock::new(2.2, 0);
        let d = SimDuration::from_us(5);
        let cycles = c.to_cycles(d);
        let back = c.to_duration(cycles);
        let err = (back.as_ns_f64() - d.as_ns_f64()).abs();
        assert!(err < 1.0, "error {err} ns");
    }

    #[test]
    fn cycle_granularity() {
        let c = TscClock::new(2.2, 0);
        assert_eq!(c.cycle(), SimDuration::from_ps(455));
        let c = TscClock::new(2.0, 0);
        assert_eq!(c.cycle(), SimDuration::from_ps(500));
    }

    #[test]
    fn monotone_readings() {
        let c = TscClock::new(2.2, 42);
        let mut last = c.read(SimTime::ZERO);
        for i in 1..1000u64 {
            let r = c.read(SimTime::from_ps(i * 137));
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = TscClock::new(0.0, 0);
    }
}
