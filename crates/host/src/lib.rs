//! Host-side timing models: the TSC clock and software execution costs.
//!
//! The paper's measurement methodology rests on user-space `rdtsc`
//! timestamping (Section IV, "Additional details"): RPerf pins threads,
//! uses huge pages, and follows Intel's TSC calibration guidance. This
//! crate models exactly the properties that matter for measurement
//! fidelity:
//!
//! * [`TscClock`] — converts simulated time to cycle-quantized timestamps
//!   at a configurable frequency (2.2 GHz for the testbed's Xeon E5-2630
//!   v4), with a per-read cost and an arbitrary per-host epoch offset, so
//!   cross-host timestamp comparison is meaningless — just like real
//!   unsynchronized TSCs, and the reason the paper rejects one-way latency
//!   measurement.
//! * [`SoftwareModel`] — bounded software step costs with occasional
//!   OS-induced spikes, and poll-loop detection latency: a completion is
//!   *visible* when the RNIC's DMA lands, but software only notices it at
//!   its next poll iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod software;
mod tsc;

pub use software::SoftwareModel;
pub use tsc::{Tsc, TscClock};
