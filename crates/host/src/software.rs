//! Software execution-cost models.

use rperf_model::config::HostConfig;
use rperf_sim::{SimDuration, SimRng};

/// Models the software side of a pinned measurement/generator thread:
/// bounded per-step costs with occasional OS-induced spikes, and poll-loop
/// completion-detection latency.
///
/// # Examples
///
/// ```
/// use rperf_host::SoftwareModel;
/// use rperf_model::ClusterConfig;
/// use rperf_sim::{SimDuration, SimRng};
///
/// let cfg = ClusterConfig::hardware().host;
/// let mut sw = SoftwareModel::new(cfg, SimRng::new(7));
/// let cost = sw.step(SimDuration::from_ns(150));
/// assert!(cost >= SimDuration::from_ns(150));
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareModel {
    cfg: HostConfig,
    rng: SimRng,
}

impl SoftwareModel {
    /// Creates a software model from host parameters and a noise stream.
    pub fn new(cfg: HostConfig, rng: SimRng) -> Self {
        SoftwareModel { cfg, rng }
    }

    /// The host parameters.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The cost of one software step with nominal cost `base`: the base
    /// plus, with probability `sw_spike_prob`, an OS interference spike.
    pub fn step(&mut self, base: SimDuration) -> SimDuration {
        let mut cost = base;
        if self.cfg.sw_spike_prob > 0.0 && self.rng.chance(self.cfg.sw_spike_prob) {
            cost += self
                .rng
                .uniform_duration(self.cfg.sw_spike_min, self.cfg.sw_spike_max);
        }
        cost
    }

    /// Poll-loop detection latency: a completion that lands mid-iteration
    /// is noticed at the next poll, uniformly distributed over one poll
    /// period, plus the timestamp-read cost.
    ///
    /// `poll_period` is the tool's spin-loop iteration time — a tight
    /// RPerf loop is a few nanoseconds; heavier tools poll more coarsely.
    pub fn poll_detect(&mut self, poll_period: SimDuration) -> SimDuration {
        let phase = if poll_period == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            self.rng.uniform_duration(SimDuration::ZERO, poll_period)
        };
        phase + self.cfg.tsc_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::ClusterConfig;

    fn model(spike_prob: f64) -> SoftwareModel {
        let mut cfg = ClusterConfig::hardware().host;
        cfg.sw_spike_prob = spike_prob;
        SoftwareModel::new(cfg, SimRng::new(3))
    }

    #[test]
    fn step_without_spikes_is_exact() {
        let mut sw = model(0.0);
        for _ in 0..100 {
            assert_eq!(
                sw.step(SimDuration::from_ns(150)),
                SimDuration::from_ns(150)
            );
        }
    }

    #[test]
    fn spikes_occur_at_configured_rate() {
        let mut sw = model(0.5);
        let base = SimDuration::from_ns(100);
        let spiked = (0..10_000).filter(|_| sw.step(base) > base).count();
        assert!(
            (4_000..6_000).contains(&spiked),
            "expected ~5000 spikes, got {spiked}"
        );
    }

    #[test]
    fn spike_magnitude_bounded() {
        let mut sw = model(1.0);
        let base = SimDuration::from_ns(100);
        let lo = base + sw.config().sw_spike_min;
        let hi = base + sw.config().sw_spike_max;
        for _ in 0..1000 {
            let c = sw.step(base);
            assert!(c >= lo && c < hi, "cost {c} out of [{lo}, {hi})");
        }
    }

    #[test]
    fn poll_detect_within_period_plus_read() {
        let mut sw = model(0.0);
        let period = SimDuration::from_ns(40);
        let read = sw.config().tsc_read;
        for _ in 0..1000 {
            let d = sw.poll_detect(period);
            assert!(d >= read);
            assert!(d < period + read);
        }
    }

    #[test]
    fn zero_period_poll_costs_only_the_read() {
        let mut sw = model(0.0);
        assert_eq!(sw.poll_detect(SimDuration::ZERO), sw.config().tsc_read);
    }
}
