//! Subnet management: the OpenSM role for the simulated fabric.
//!
//! A real IB subnet has a software subnet manager that discovers the
//! topology, assigns a LID to every end port and programs every switch's
//! linear forwarding table. This crate performs the same job for
//! arbitrary multi-switch topologies:
//!
//! * [`TopologySpec`] — declarative description: switches, host
//!   attachments, inter-switch trunks (with convenience constructors for
//!   the paper's setups and for switch chains).
//! * [`FatTreeParams`] — parameterized 2-tier leaf–spine and 3-tier
//!   Clos / fat-tree generators (`k`, tier count, edge oversubscription)
//!   producing plain [`TopologySpec`] graphs.
//! * [`plan`] — validates the spec against the switch port budget,
//!   assigns LIDs and ports, and computes shortest-path forwarding
//!   entries (BFS over the switch graph; equal-cost paths are resolved
//!   per destination LID, deterministically and hash-free).
//! * [`SubnetPlan`] — the programmable result the fabric builder consumes.
//!
//! # Examples
//!
//! ```
//! use rperf_subnet::{plan, TopologySpec};
//!
//! // Three switches in a chain, two hosts on each end.
//! let spec = TopologySpec::chain(3, &[2, 0, 2]);
//! let plan = plan(&spec, 12)?;
//! assert_eq!(plan.lids.len(), 4);
//! # Ok::<(), rperf_subnet::SubnetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fattree;
mod planner;
mod spec;

pub use error::SubnetError;
pub use fattree::FatTreeParams;
pub use planner::{plan, SubnetPlan};
pub use spec::TopologySpec;
