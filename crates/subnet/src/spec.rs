//! Topology specifications.

/// A declarative multi-switch topology: which switch each host attaches
/// to, and which switch pairs are trunked.
///
/// # Examples
///
/// ```
/// use rperf_subnet::TopologySpec;
///
/// // The paper's Fig. 11 setup: 3 hosts upstream, 4 downstream.
/// let spec = TopologySpec::chain(2, &[3, 4]);
/// assert_eq!(spec.switches(), 2);
/// assert_eq!(spec.hosts(), 7);
/// assert_eq!(spec.trunks(), &[(0, 1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySpec {
    switches: usize,
    /// For each host, the switch it attaches to.
    host_attachments: Vec<usize>,
    /// Inter-switch cables (unordered pairs, stored low-high).
    trunks: Vec<(usize, usize)>,
}

impl TopologySpec {
    /// A single switch with `hosts` hosts — the paper's rack.
    pub fn single_switch(hosts: usize) -> Self {
        TopologySpec {
            switches: 1,
            host_attachments: vec![0; hosts],
            trunks: Vec::new(),
        }
    }

    /// A linear chain of `switches` switches, trunked neighbour to
    /// neighbour, with `hosts_per_switch[i]` hosts on switch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `hosts_per_switch.len() != switches` or `switches == 0`.
    pub fn chain(switches: usize, hosts_per_switch: &[usize]) -> Self {
        assert!(switches > 0, "a topology needs at least one switch");
        assert_eq!(
            hosts_per_switch.len(),
            switches,
            "one host count per switch"
        );
        let mut host_attachments = Vec::new();
        for (sw, &n) in hosts_per_switch.iter().enumerate() {
            host_attachments.extend(std::iter::repeat_n(sw, n));
        }
        TopologySpec {
            switches,
            host_attachments,
            trunks: (1..switches).map(|i| (i - 1, i)).collect(),
        }
    }

    /// A star: one core switch (index 0) trunked to `leaves` leaf
    /// switches, each leaf carrying `hosts_per_leaf` hosts.
    pub fn star(leaves: usize, hosts_per_leaf: usize) -> Self {
        let mut host_attachments = Vec::new();
        for leaf in 1..=leaves {
            host_attachments.extend(std::iter::repeat_n(leaf, hosts_per_leaf));
        }
        TopologySpec {
            switches: leaves + 1,
            host_attachments,
            trunks: (1..=leaves).map(|l| (0, l)).collect(),
        }
    }

    /// An explicit topology.
    pub fn custom(
        switches: usize,
        host_attachments: Vec<usize>,
        trunks: Vec<(usize, usize)>,
    ) -> Self {
        let trunks = trunks
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        TopologySpec {
            switches,
            host_attachments,
            trunks,
        }
    }

    /// Number of switches.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.host_attachments.len()
    }

    /// The switch each host attaches to.
    pub fn host_attachments(&self) -> &[usize] {
        &self.host_attachments
    }

    /// The inter-switch cables.
    pub fn trunks(&self) -> &[(usize, usize)] {
        &self.trunks
    }

    /// Ports needed on switch `sw`: its hosts plus its trunks.
    pub fn ports_needed(&self, sw: usize) -> usize {
        let hosts = self.host_attachments.iter().filter(|&&a| a == sw).count();
        let trunks = self
            .trunks
            .iter()
            .filter(|&&(a, b)| a == sw || b == sw)
            .count();
        hosts + trunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_builds_neighbour_trunks() {
        let spec = TopologySpec::chain(4, &[1, 0, 0, 1]);
        assert_eq!(spec.trunks(), &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(spec.hosts(), 2);
        assert_eq!(spec.host_attachments(), &[0, 3]);
    }

    #[test]
    fn star_attaches_hosts_to_leaves() {
        let spec = TopologySpec::star(3, 2);
        assert_eq!(spec.switches(), 4);
        assert_eq!(spec.hosts(), 6);
        assert_eq!(spec.trunks(), &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(spec.ports_needed(0), 3);
        assert_eq!(spec.ports_needed(1), 3);
    }

    #[test]
    fn ports_needed_counts_hosts_and_trunks() {
        let spec = TopologySpec::chain(2, &[3, 4]);
        assert_eq!(spec.ports_needed(0), 4);
        assert_eq!(spec.ports_needed(1), 5);
    }

    #[test]
    fn custom_normalizes_trunk_order() {
        let spec = TopologySpec::custom(3, vec![0, 2], vec![(2, 0), (1, 2)]);
        assert_eq!(spec.trunks(), &[(0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "one host count per switch")]
    fn chain_validates_lengths() {
        let _ = TopologySpec::chain(2, &[1]);
    }
}
