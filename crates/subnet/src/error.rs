//! Subnet planning errors.

use std::error::Error;
use std::fmt;

/// Why a topology could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubnetError {
    /// A switch needs more ports than the hardware provides.
    PortBudgetExceeded {
        /// The overloaded switch.
        switch: usize,
        /// Ports required.
        needed: usize,
        /// Ports available.
        available: usize,
    },
    /// A host references a switch index beyond the topology.
    UnknownSwitch {
        /// The offending switch index.
        switch: usize,
    },
    /// A trunk connects a switch to itself.
    SelfTrunk {
        /// The switch.
        switch: usize,
    },
    /// The switch graph is not connected: some host pairs cannot reach
    /// each other.
    Disconnected {
        /// A switch unreachable from switch 0.
        switch: usize,
    },
    /// The topology has no hosts to route between.
    NoHosts,
}

impl fmt::Display for SubnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubnetError::PortBudgetExceeded {
                switch,
                needed,
                available,
            } => write!(
                f,
                "switch {switch} needs {needed} ports but has only {available}"
            ),
            SubnetError::UnknownSwitch { switch } => {
                write!(f, "reference to nonexistent switch {switch}")
            }
            SubnetError::SelfTrunk { switch } => {
                write!(f, "switch {switch} is trunked to itself")
            }
            SubnetError::Disconnected { switch } => {
                write!(f, "switch {switch} is unreachable from switch 0")
            }
            SubnetError::NoHosts => write!(f, "topology has no hosts"),
        }
    }
}

impl Error for SubnetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_lowercase_prose() {
        let e = SubnetError::PortBudgetExceeded {
            switch: 1,
            needed: 14,
            available: 12,
        };
        assert!(e.to_string().contains("needs 14 ports"));
        assert!(!e.to_string().ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SubnetError>();
    }
}
