//! Parameterized Clos / fat-tree topology generators.
//!
//! Two shapes, both expressed as plain [`TopologySpec`] graphs so the
//! planner, the fabric builder and the forwarding machinery need no
//! topology-specific code:
//!
//! * **2-tier leaf–spine** (`tiers = 2`): `k/2` spines, `o·k` leaves.
//!   Every leaf has one uplink per spine and `o·k/2` hosts, so the
//!   edge oversubscription ratio (host bandwidth : uplink bandwidth) is
//!   exactly `o`. Hosts total `o²k²/2` — `k = 8, o = 2` is the 128-host
//!   fabric whose 12-port leaves match the paper's SX6012.
//! * **3-tier fat-tree** (`tiers = 3`): the classic k-ary Clos — `k`
//!   pods of `k/2` edge and `k/2` aggregation switches plus `(k/2)²`
//!   cores, with `o·k/2` hosts per edge switch. Hosts total `o·k³/4`
//!   (`k = 16, o = 1` → 1024 hosts). Host pairs sit 1 hop apart on the
//!   same edge switch, 3 hops within a pod and 5 hops across pods.
//!
//! Switch indices are laid out tier by tier — edges (leaves) first, then
//! aggregation switches (3-tier only), then spines/cores — and hosts
//! attach in edge-switch order, so host `h` sits on edge switch
//! `h / hosts_per_edge`. The layout is a pure function of the
//! parameters: generating the same `FatTreeParams` twice yields
//! structurally identical specs (and therefore byte-identical plans).

use crate::spec::TopologySpec;

/// Parameters of a Clos / fat-tree fabric.
///
/// # Examples
///
/// ```
/// use rperf_subnet::FatTreeParams;
///
/// // The 128-host leaf-spine fabric with 12-port leaf switches.
/// let ft = FatTreeParams::new(8, 2, 2);
/// assert_eq!(ft.hosts(), 128);
/// assert_eq!(ft.radix(), 16); // spine radix dominates
///
/// // The full 1024-host 3-tier fat-tree.
/// let big = FatTreeParams::new(16, 3, 1);
/// assert_eq!(big.hosts(), 1024);
/// assert_eq!(big.switches(), 320);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeParams {
    /// The arity `k` (must be even and at least 2).
    pub k: usize,
    /// Number of switch tiers: 2 (leaf–spine) or 3 (pods + core).
    pub tiers: usize,
    /// Edge oversubscription ratio `o` (1 = non-blocking edge tier).
    pub oversubscription: usize,
}

impl FatTreeParams {
    /// Creates the parameter set (no validation; see
    /// [`FatTreeParams::validate`]).
    pub const fn new(k: usize, tiers: usize, oversubscription: usize) -> Self {
        FatTreeParams {
            k,
            tiers,
            oversubscription,
        }
    }

    /// Checks the parameters describe a constructible fabric.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation:
    /// odd or zero `k`, a tier count other than 2 or 3, or a zero
    /// oversubscription ratio.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 || !self.k.is_multiple_of(2) {
            return Err(format!(
                "fattree k must be even and positive, got {}",
                self.k
            ));
        }
        if self.tiers != 2 && self.tiers != 3 {
            return Err(format!("fattree tiers must be 2 or 3, got {}", self.tiers));
        }
        if self.oversubscription == 0 {
            return Err("fattree oversubscription must be at least 1".into());
        }
        Ok(())
    }

    fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid fat-tree parameters: {e}");
        }
    }

    /// Hosts attached to each edge (leaf) switch: `o·k/2`.
    pub fn hosts_per_edge(&self) -> usize {
        self.oversubscription * self.k / 2
    }

    /// Number of edge (leaf) switches.
    pub fn edges(&self) -> usize {
        match self.tiers {
            2 => self.oversubscription * self.k,
            _ => self.k * self.k / 2,
        }
    }

    /// Total hosts.
    pub fn hosts(&self) -> usize {
        self.edges() * self.hosts_per_edge()
    }

    /// Total switches across all tiers.
    pub fn switches(&self) -> usize {
        match self.tiers {
            // Leaves + spines.
            2 => self.edges() + self.k / 2,
            // Edges + aggregations + cores.
            _ => self.edges() + self.k * self.k / 2 + (self.k / 2) * (self.k / 2),
        }
    }

    /// The pod a host belongs to (3-tier; a 2-tier fabric is one pod).
    pub fn pod_of_host(&self, host: usize) -> usize {
        if self.tiers == 2 {
            0
        } else {
            host / (self.hosts_per_edge() * self.k / 2)
        }
    }

    /// The edge-switch index (within `0..edges()`) a host attaches to.
    pub fn edge_of_host(&self, host: usize) -> usize {
        host / self.hosts_per_edge()
    }

    /// The largest port count any switch needs: the max over edge radix
    /// (`hosts_per_edge + k/2` uplinks), aggregation radix (`k`) and
    /// spine/core radix.
    pub fn radix(&self) -> usize {
        let edge = self.hosts_per_edge() + self.k / 2;
        let top = match self.tiers {
            // A spine sees one link per leaf.
            2 => self.edges(),
            // Aggregations and cores both have k ports.
            _ => self.k,
        };
        edge.max(top)
    }

    /// Builds the explicit switch graph.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`FatTreeParams::validate`].
    pub fn spec(&self) -> TopologySpec {
        self.assert_valid();
        let half = self.k / 2;
        let edges = self.edges();
        let hosts_per_edge = self.hosts_per_edge();
        let mut attachments = Vec::with_capacity(self.hosts());
        for edge in 0..edges {
            attachments.extend(std::iter::repeat_n(edge, hosts_per_edge));
        }
        let mut trunks = Vec::new();
        match self.tiers {
            2 => {
                // Spines sit after the leaves; every leaf uplinks once to
                // every spine.
                let spine0 = edges;
                for leaf in 0..edges {
                    for s in 0..half {
                        trunks.push((leaf, spine0 + s));
                    }
                }
            }
            _ => {
                // Layout: [edges][aggregations][cores]. Edge e lives in
                // pod e / half; aggregation a = agg0 + pod*half + j is the
                // j-th aggregation of its pod; core i*half + j attaches to
                // aggregation j of every pod.
                let agg0 = edges;
                let core0 = edges + self.k * half;
                for pod in 0..self.k {
                    for e in 0..half {
                        let edge = pod * half + e;
                        for j in 0..half {
                            trunks.push((edge, agg0 + pod * half + j));
                        }
                    }
                    for j in 0..half {
                        let agg = agg0 + pod * half + j;
                        for i in 0..half {
                            trunks.push((agg, core0 + j * half + i));
                        }
                    }
                }
            }
        }
        TopologySpec::custom(self.switches(), attachments, trunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_shape_matches_the_formulas() {
        let ft = FatTreeParams::new(8, 2, 2);
        assert_eq!(ft.hosts(), 128);
        assert_eq!(ft.edges(), 16);
        assert_eq!(ft.switches(), 20);
        // 12-port leaves (8 hosts + 4 uplinks), 16-port spines.
        assert_eq!(ft.hosts_per_edge() + ft.k / 2, 12);
        assert_eq!(ft.radix(), 16);
        let spec = ft.spec();
        assert_eq!(spec.hosts(), 128);
        assert_eq!(spec.switches(), 20);
        for leaf in 0..16 {
            assert_eq!(spec.ports_needed(leaf), 12);
        }
        for spine in 16..20 {
            assert_eq!(spec.ports_needed(spine), 16);
        }
    }

    #[test]
    fn three_tier_shape_matches_the_formulas() {
        let ft = FatTreeParams::new(4, 3, 1);
        assert_eq!(ft.hosts(), 16);
        assert_eq!(ft.edges(), 8);
        assert_eq!(ft.switches(), 20);
        assert_eq!(ft.radix(), 4);
        let spec = ft.spec();
        assert_eq!(spec.hosts(), 16);
        // Every switch in a k=4, o=1 fat-tree has exactly 4 used ports.
        for sw in 0..20 {
            assert_eq!(spec.ports_needed(sw), 4, "switch {sw}");
        }
        // k = 16 scales to the full 1024-host datacenter.
        let big = FatTreeParams::new(16, 3, 1);
        assert_eq!(big.hosts(), 1024);
        assert_eq!(big.switches(), 320);
        assert_eq!(big.radix(), 16);
    }

    #[test]
    fn pod_and_edge_of_host() {
        let ft = FatTreeParams::new(4, 3, 1);
        // 2 hosts per edge, 2 edges per pod -> 4 hosts per pod.
        assert_eq!(ft.pod_of_host(0), 0);
        assert_eq!(ft.pod_of_host(3), 0);
        assert_eq!(ft.pod_of_host(4), 1);
        assert_eq!(ft.edge_of_host(0), 0);
        assert_eq!(ft.edge_of_host(2), 1);
        assert_eq!(ft.edge_of_host(15), 7);
    }

    #[test]
    fn invalid_parameters_are_described() {
        assert!(FatTreeParams::new(3, 2, 1)
            .validate()
            .unwrap_err()
            .contains("even"));
        assert!(FatTreeParams::new(0, 2, 1).validate().is_err());
        assert!(FatTreeParams::new(4, 4, 1)
            .validate()
            .unwrap_err()
            .contains("tiers"));
        assert!(FatTreeParams::new(4, 2, 0)
            .validate()
            .unwrap_err()
            .contains("oversubscription"));
    }

    #[test]
    #[should_panic(expected = "invalid fat-tree parameters")]
    fn spec_panics_on_invalid_parameters() {
        let _ = FatTreeParams::new(5, 2, 1).spec();
    }

    #[test]
    fn generation_is_reproducible() {
        let a = FatTreeParams::new(8, 3, 1).spec();
        let b = FatTreeParams::new(8, 3, 1).spec();
        assert_eq!(a, b);
    }
}
