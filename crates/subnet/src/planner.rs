//! LID assignment, port allocation and forwarding-table computation.

use std::collections::VecDeque;

use rperf_model::{Lid, PortId};

use crate::error::SubnetError;
use crate::spec::TopologySpec;

/// The programmable outcome of subnet planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubnetPlan {
    /// LID of each host (host `i` gets `lids[i]`; LIDs start at 1, LID 0
    /// being reserved in IB).
    pub lids: Vec<Lid>,
    /// Attachment of each host: `(switch, port)`.
    pub host_ports: Vec<(usize, PortId)>,
    /// Trunk cables: `((switch_a, port_a), (switch_b, port_b))`, in the
    /// order of [`TopologySpec::trunks`].
    pub trunk_ports: Vec<((usize, PortId), (usize, PortId))>,
    /// Forwarding entries per switch: for every host LID, the egress port.
    pub routes: Vec<Vec<(Lid, PortId)>>,
    /// Hop count (number of switches traversed) between every host pair,
    /// indexed `[src][dst]`.
    pub hops: Vec<Vec<u32>>,
}

impl SubnetPlan {
    /// The egress port switch `sw` uses for `lid` (for diagnostics).
    pub fn route_of(&self, sw: usize, lid: Lid) -> Option<PortId> {
        self.routes[sw]
            .iter()
            .find(|&&(l, _)| l == lid)
            .map(|&(_, p)| p)
    }
}

/// Validates `spec` against `ports_per_switch` and computes the plan:
/// hosts take the low port numbers on their switch (in host order),
/// trunks take the next ports (in trunk order); forwarding uses BFS
/// shortest paths over the switch graph with deterministic tie-breaking
/// (lower-numbered neighbour wins).
///
/// # Errors
///
/// See [`SubnetError`] — port budget, dangling references, self-trunks,
/// disconnected fabrics and empty topologies are rejected.
pub fn plan(spec: &TopologySpec, ports_per_switch: u8) -> Result<SubnetPlan, SubnetError> {
    let n_sw = spec.switches();
    if spec.hosts() == 0 {
        return Err(SubnetError::NoHosts);
    }
    for &a in spec.host_attachments() {
        if a >= n_sw {
            return Err(SubnetError::UnknownSwitch { switch: a });
        }
    }
    for &(a, b) in spec.trunks() {
        if a == b {
            return Err(SubnetError::SelfTrunk { switch: a });
        }
        if a >= n_sw || b >= n_sw {
            return Err(SubnetError::UnknownSwitch { switch: a.max(b) });
        }
    }
    for sw in 0..n_sw {
        let needed = spec.ports_needed(sw);
        if needed > ports_per_switch as usize {
            return Err(SubnetError::PortBudgetExceeded {
                switch: sw,
                needed,
                available: ports_per_switch as usize,
            });
        }
    }

    // Port allocation: hosts first (host order), then trunks (trunk order).
    let mut next_port = vec![0u8; n_sw];
    let mut host_ports = Vec::with_capacity(spec.hosts());
    let mut lids = Vec::with_capacity(spec.hosts());
    for (i, &sw) in spec.host_attachments().iter().enumerate() {
        let port = PortId::new(next_port[sw]);
        next_port[sw] += 1;
        host_ports.push((sw, port));
        lids.push(Lid::new(i as u16 + 1));
    }
    let mut trunk_ports = Vec::with_capacity(spec.trunks().len());
    // Adjacency: neighbour switch → the local port reaching it.
    let mut adjacency: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); n_sw];
    for &(a, b) in spec.trunks() {
        let pa = PortId::new(next_port[a]);
        next_port[a] += 1;
        let pb = PortId::new(next_port[b]);
        next_port[b] += 1;
        trunk_ports.push(((a, pa), (b, pb)));
        adjacency[a].push((b, pa));
        adjacency[b].push((a, pb));
    }

    // Connectivity + next-hop computation via BFS from every switch.
    // next_hop[from][to] = local port on `from` toward `to`.
    let mut next_hop: Vec<Vec<Option<PortId>>> = vec![vec![None; n_sw]; n_sw];
    let mut dist: Vec<Vec<u32>> = vec![vec![u32::MAX; n_sw]; n_sw];
    for start in 0..n_sw {
        let mut queue = VecDeque::new();
        dist[start][start] = 0;
        queue.push_back(start);
        while let Some(sw) = queue.pop_front() {
            let mut neighbours = adjacency[sw].clone();
            neighbours.sort_by_key(|&(n, _)| n); // deterministic tie-break
            for (n, _port) in neighbours {
                if dist[start][n] == u32::MAX {
                    dist[start][n] = dist[start][sw] + 1;
                    // The first hop from `start` toward `n` goes through
                    // the same port as toward `sw`, unless sw == start.
                    next_hop[start][n] = if sw == start {
                        adjacency[start]
                            .iter()
                            .find(|&&(nb, _)| nb == n)
                            .map(|&(_, p)| p)
                    } else {
                        next_hop[start][sw]
                    };
                    queue.push_back(n);
                }
            }
        }
    }
    if n_sw > 1 {
        if let Some(sw) = (1..n_sw).find(|&sw| dist[0][sw] == u32::MAX) {
            return Err(SubnetError::Disconnected { switch: sw });
        }
    }

    // Forwarding tables: local hosts → their port; remote hosts → the
    // next hop toward their switch.
    let mut routes: Vec<Vec<(Lid, PortId)>> = vec![Vec::new(); n_sw];
    for (host, &(attached, port)) in host_ports.iter().enumerate() {
        let lid = lids[host];
        for (sw, table) in routes.iter_mut().enumerate() {
            if sw == attached {
                table.push((lid, port));
            } else {
                let hop =
                    next_hop[sw][attached].expect("connectivity verified: a next hop must exist");
                table.push((lid, hop));
            }
        }
    }

    // Host-pair hop counts: switches on the path (1 for same switch).
    let hosts = spec.hosts();
    let mut hops = vec![vec![0u32; hosts]; hosts];
    for (a, &(sw_a, _)) in host_ports.iter().enumerate() {
        for (b, &(sw_b, _)) in host_ports.iter().enumerate() {
            hops[a][b] = if a == b { 0 } else { dist[sw_a][sw_b] + 1 };
        }
    }

    Ok(SubnetPlan {
        lids,
        host_ports,
        trunk_ports,
        routes,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_plan_matches_the_rack() {
        let plan = plan(&TopologySpec::single_switch(7), 12).unwrap();
        assert_eq!(plan.lids.len(), 7);
        for (i, &(sw, port)) in plan.host_ports.iter().enumerate() {
            assert_eq!(sw, 0);
            assert_eq!(port, PortId::new(i as u8));
        }
        assert!(plan.trunk_ports.is_empty());
        // Every LID routes to its own port.
        for (i, &lid) in plan.lids.iter().enumerate() {
            assert_eq!(plan.route_of(0, lid), Some(PortId::new(i as u8)));
        }
        assert_eq!(plan.hops[0][1], 1);
        assert_eq!(plan.hops[0][0], 0);
    }

    #[test]
    fn two_switch_plan_routes_over_the_trunk() {
        let plan = plan(&TopologySpec::chain(2, &[3, 4]), 12).unwrap();
        // Trunk ports come after host ports: 3 hosts on switch 0 → trunk
        // port 3; 4 hosts on switch 1 → trunk port 4.
        assert_eq!(
            plan.trunk_ports[0],
            ((0, PortId::new(3)), (1, PortId::new(4)))
        );
        // Host 0 (switch 0): switch 1 routes its LID over the trunk.
        let lid0 = plan.lids[0];
        assert_eq!(plan.route_of(1, lid0), Some(PortId::new(4)));
        // Host 3 (switch 1): switch 0 routes over its trunk port.
        let lid3 = plan.lids[3];
        assert_eq!(plan.route_of(0, lid3), Some(PortId::new(3)));
        assert_eq!(plan.hops[0][3], 2);
        assert_eq!(plan.hops[0][1], 1);
    }

    #[test]
    fn chain_routes_multi_hop() {
        let plan = plan(&TopologySpec::chain(4, &[1, 0, 0, 1]), 12).unwrap();
        let last = plan.lids[1];
        // Switch 0 must send the far host's traffic toward switch 1.
        let toward = plan.route_of(0, last).unwrap();
        // Switch 0 has 1 host (port 0) and 1 trunk (port 1).
        assert_eq!(toward, PortId::new(1));
        assert_eq!(plan.hops[0][1], 4);
    }

    #[test]
    fn star_routes_through_the_core() {
        let plan = plan(&TopologySpec::star(3, 2), 12).unwrap();
        // Host 0 on leaf 1, host 2 on leaf 2: 3 switches on the path.
        assert_eq!(plan.hops[0][2], 3);
        assert_eq!(plan.hops[0][1], 1, "same leaf");
    }

    #[test]
    fn port_budget_enforced() {
        let err = plan(&TopologySpec::single_switch(13), 12).unwrap_err();
        assert!(matches!(
            err,
            SubnetError::PortBudgetExceeded { needed: 13, .. }
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let spec = TopologySpec::custom(3, vec![0, 2], vec![(0, 1)]);
        let err = plan(&spec, 12).unwrap_err();
        assert_eq!(err, SubnetError::Disconnected { switch: 2 });
    }

    #[test]
    fn self_trunk_rejected() {
        let spec = TopologySpec::custom(2, vec![0, 1], vec![(1, 1)]);
        assert_eq!(
            plan(&spec, 12).unwrap_err(),
            SubnetError::SelfTrunk { switch: 1 }
        );
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            plan(&TopologySpec::single_switch(0), 12).unwrap_err(),
            SubnetError::NoHosts
        );
    }

    #[test]
    fn unknown_switch_rejected() {
        let spec = TopologySpec::custom(2, vec![0, 5], vec![(0, 1)]);
        assert_eq!(
            plan(&spec, 12).unwrap_err(),
            SubnetError::UnknownSwitch { switch: 5 }
        );
    }
}
