//! LID assignment, port allocation and forwarding-table computation.

use std::collections::VecDeque;

use rperf_model::{Lid, PortId};

use crate::error::SubnetError;
use crate::spec::TopologySpec;

/// The programmable outcome of subnet planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubnetPlan {
    /// LID of each host (host `i` gets `lids[i]`; LIDs start at 1, LID 0
    /// being reserved in IB).
    pub lids: Vec<Lid>,
    /// Attachment of each host: `(switch, port)`.
    pub host_ports: Vec<(usize, PortId)>,
    /// Trunk cables: `((switch_a, port_a), (switch_b, port_b))`, in the
    /// order of [`TopologySpec::trunks`].
    pub trunk_ports: Vec<((usize, PortId), (usize, PortId))>,
    /// Forwarding entries per switch: for every host LID, the egress port.
    pub routes: Vec<Vec<(Lid, PortId)>>,
    /// Hop count (number of switches traversed) between every host pair,
    /// indexed `[src][dst]`.
    pub hops: Vec<Vec<u32>>,
}

impl SubnetPlan {
    /// The egress port switch `sw` uses for `lid` (for diagnostics).
    pub fn route_of(&self, sw: usize, lid: Lid) -> Option<PortId> {
        self.routes[sw]
            .iter()
            .find(|&&(l, _)| l == lid)
            .map(|&(_, p)| p)
    }
}

/// Validates `spec` against `ports_per_switch` and computes the plan:
/// hosts take the low port numbers on their switch (in host order),
/// trunks take the next ports (in trunk order); forwarding uses BFS
/// shortest paths over the switch graph.
///
/// When several equal-cost shortest paths exist (Clos fabrics, parallel
/// trunks), the egress port is chosen **per destination LID**: the
/// candidate ports — neighbours exactly one hop closer to the
/// destination switch, sorted by `(neighbour, port)` — are indexed by
/// `lid mod candidates`. The selection is a pure function of the
/// topology and the LID (no hashing, no iteration-order dependence), so
/// repeated plans are byte-identical, and distinct destinations spread
/// deterministically across the equal-cost fan — the ECMP-free
/// destination-based routing of a statically routed IB subnet. A
/// topology with unique shortest paths gets exactly the single
/// candidate the BFS tree would have picked.
///
/// # Errors
///
/// See [`SubnetError`] — port budget, dangling references, self-trunks,
/// disconnected fabrics and empty topologies are rejected.
pub fn plan(spec: &TopologySpec, ports_per_switch: u8) -> Result<SubnetPlan, SubnetError> {
    let n_sw = spec.switches();
    if spec.hosts() == 0 {
        return Err(SubnetError::NoHosts);
    }
    for &a in spec.host_attachments() {
        if a >= n_sw {
            return Err(SubnetError::UnknownSwitch { switch: a });
        }
    }
    for &(a, b) in spec.trunks() {
        if a == b {
            return Err(SubnetError::SelfTrunk { switch: a });
        }
        if a >= n_sw || b >= n_sw {
            return Err(SubnetError::UnknownSwitch { switch: a.max(b) });
        }
    }
    for sw in 0..n_sw {
        let needed = spec.ports_needed(sw);
        if needed > ports_per_switch as usize {
            return Err(SubnetError::PortBudgetExceeded {
                switch: sw,
                needed,
                available: ports_per_switch as usize,
            });
        }
    }

    // Port allocation: hosts first (host order), then trunks (trunk order).
    let mut next_port = vec![0u8; n_sw];
    let mut host_ports = Vec::with_capacity(spec.hosts());
    let mut lids = Vec::with_capacity(spec.hosts());
    for (i, &sw) in spec.host_attachments().iter().enumerate() {
        let port = PortId::new(next_port[sw]);
        next_port[sw] += 1;
        host_ports.push((sw, port));
        lids.push(Lid::new(i as u16 + 1));
    }
    let mut trunk_ports = Vec::with_capacity(spec.trunks().len());
    // Adjacency: neighbour switch → the local port reaching it.
    let mut adjacency: Vec<Vec<(usize, PortId)>> = vec![Vec::new(); n_sw];
    for &(a, b) in spec.trunks() {
        let pa = PortId::new(next_port[a]);
        next_port[a] += 1;
        let pb = PortId::new(next_port[b]);
        next_port[b] += 1;
        trunk_ports.push(((a, pa), (b, pb)));
        adjacency[a].push((b, pa));
        adjacency[b].push((a, pb));
    }

    // Connectivity + distance computation via BFS from every switch.
    let mut dist: Vec<Vec<u32>> = vec![vec![u32::MAX; n_sw]; n_sw];
    for (start, dist) in dist.iter_mut().enumerate() {
        let mut queue = VecDeque::new();
        dist[start] = 0;
        queue.push_back(start);
        while let Some(sw) = queue.pop_front() {
            for &(n, _port) in &adjacency[sw] {
                if dist[n] == u32::MAX {
                    dist[n] = dist[sw] + 1;
                    queue.push_back(n);
                }
            }
        }
    }
    if n_sw > 1 {
        if let Some(sw) = (1..n_sw).find(|&sw| dist[0][sw] == u32::MAX) {
            return Err(SubnetError::Disconnected { switch: sw });
        }
    }

    // Equal-cost candidate egress ports per (switch, destination switch):
    // every local port whose neighbour is exactly one hop closer, sorted
    // by (neighbour, port) so selection is independent of trunk
    // declaration order. Only switches that actually host endpoints are
    // forwarding destinations.
    let mut sorted_adj = adjacency;
    for neigh in &mut sorted_adj {
        neigh.sort_by_key(|&(n, p)| (n, p.raw()));
    }
    let mut is_dest = vec![false; n_sw];
    for &(sw, _) in &host_ports {
        is_dest[sw] = true;
    }
    // candidates[sw * n_sw + dst]: empty unless dst hosts endpoints.
    let mut candidates: Vec<Vec<PortId>> = vec![Vec::new(); n_sw * n_sw];
    for sw in 0..n_sw {
        for dst in 0..n_sw {
            if sw == dst || !is_dest[dst] {
                continue;
            }
            let toward = &mut candidates[sw * n_sw + dst];
            for &(n, p) in &sorted_adj[sw] {
                if dist[n][dst] != u32::MAX && dist[n][dst] + 1 == dist[sw][dst] {
                    toward.push(p);
                }
            }
        }
    }

    // Forwarding tables: local hosts → their port; remote hosts → the
    // LID-selected equal-cost next hop toward their switch.
    let mut routes: Vec<Vec<(Lid, PortId)>> = vec![Vec::new(); n_sw];
    for (host, &(attached, port)) in host_ports.iter().enumerate() {
        let lid = lids[host];
        for (sw, table) in routes.iter_mut().enumerate() {
            if sw == attached {
                table.push((lid, port));
            } else {
                let toward = &candidates[sw * n_sw + attached];
                debug_assert!(!toward.is_empty(), "connectivity verified above");
                let hop = toward[lid.index() % toward.len()];
                table.push((lid, hop));
            }
        }
    }

    // Host-pair hop counts: switches on the path (1 for same switch).
    let hosts = spec.hosts();
    let mut hops = vec![vec![0u32; hosts]; hosts];
    for (a, &(sw_a, _)) in host_ports.iter().enumerate() {
        for (b, &(sw_b, _)) in host_ports.iter().enumerate() {
            hops[a][b] = if a == b { 0 } else { dist[sw_a][sw_b] + 1 };
        }
    }

    Ok(SubnetPlan {
        lids,
        host_ports,
        trunk_ports,
        routes,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_plan_matches_the_rack() {
        let plan = plan(&TopologySpec::single_switch(7), 12).unwrap();
        assert_eq!(plan.lids.len(), 7);
        for (i, &(sw, port)) in plan.host_ports.iter().enumerate() {
            assert_eq!(sw, 0);
            assert_eq!(port, PortId::new(i as u8));
        }
        assert!(plan.trunk_ports.is_empty());
        // Every LID routes to its own port.
        for (i, &lid) in plan.lids.iter().enumerate() {
            assert_eq!(plan.route_of(0, lid), Some(PortId::new(i as u8)));
        }
        assert_eq!(plan.hops[0][1], 1);
        assert_eq!(plan.hops[0][0], 0);
    }

    #[test]
    fn two_switch_plan_routes_over_the_trunk() {
        let plan = plan(&TopologySpec::chain(2, &[3, 4]), 12).unwrap();
        // Trunk ports come after host ports: 3 hosts on switch 0 → trunk
        // port 3; 4 hosts on switch 1 → trunk port 4.
        assert_eq!(
            plan.trunk_ports[0],
            ((0, PortId::new(3)), (1, PortId::new(4)))
        );
        // Host 0 (switch 0): switch 1 routes its LID over the trunk.
        let lid0 = plan.lids[0];
        assert_eq!(plan.route_of(1, lid0), Some(PortId::new(4)));
        // Host 3 (switch 1): switch 0 routes over its trunk port.
        let lid3 = plan.lids[3];
        assert_eq!(plan.route_of(0, lid3), Some(PortId::new(3)));
        assert_eq!(plan.hops[0][3], 2);
        assert_eq!(plan.hops[0][1], 1);
    }

    #[test]
    fn chain_routes_multi_hop() {
        let plan = plan(&TopologySpec::chain(4, &[1, 0, 0, 1]), 12).unwrap();
        let last = plan.lids[1];
        // Switch 0 must send the far host's traffic toward switch 1.
        let toward = plan.route_of(0, last).unwrap();
        // Switch 0 has 1 host (port 0) and 1 trunk (port 1).
        assert_eq!(toward, PortId::new(1));
        assert_eq!(plan.hops[0][1], 4);
    }

    #[test]
    fn star_routes_through_the_core() {
        let plan = plan(&TopologySpec::star(3, 2), 12).unwrap();
        // Host 0 on leaf 1, host 2 on leaf 2: 3 switches on the path.
        assert_eq!(plan.hops[0][2], 3);
        assert_eq!(plan.hops[0][1], 1, "same leaf");
    }

    #[test]
    fn fattree_spreads_lids_over_equal_cost_uplinks() {
        // k = 4 leaf-spine: leaves 0..4 (2 hosts each, ports 0-1; uplinks
        // ports 2-3 toward spines 4 and 5), so every remote destination
        // has two equal-cost candidates on every leaf.
        let spec = crate::FatTreeParams::new(4, 2, 1).spec();
        let plan = plan(&spec, 12).unwrap();
        // Hosts 2 and 3 (LIDs 3 and 4) sit on leaf 1; leaf 0 must spread
        // them across both uplinks by LID parity.
        assert_eq!(plan.route_of(0, Lid::new(3)), Some(PortId::new(3)));
        assert_eq!(plan.route_of(0, Lid::new(4)), Some(PortId::new(2)));
        // Spines route every LID straight down to its leaf.
        assert_eq!(plan.route_of(4, Lid::new(1)), Some(PortId::new(0)));
        assert_eq!(plan.hops[0][2], 3, "cross-leaf pairs traverse a spine");
        assert_eq!(plan.hops[0][1], 1, "same-leaf pairs stay local");
        // Replanning is byte-identical.
        assert_eq!(plan, plan_fn(&spec));
    }

    fn plan_fn(spec: &TopologySpec) -> SubnetPlan {
        plan(spec, 12).unwrap()
    }

    #[test]
    fn port_budget_enforced() {
        let err = plan(&TopologySpec::single_switch(13), 12).unwrap_err();
        assert!(matches!(
            err,
            SubnetError::PortBudgetExceeded { needed: 13, .. }
        ));
    }

    #[test]
    fn disconnected_rejected() {
        let spec = TopologySpec::custom(3, vec![0, 2], vec![(0, 1)]);
        let err = plan(&spec, 12).unwrap_err();
        assert_eq!(err, SubnetError::Disconnected { switch: 2 });
    }

    #[test]
    fn self_trunk_rejected() {
        let spec = TopologySpec::custom(2, vec![0, 1], vec![(1, 1)]);
        assert_eq!(
            plan(&spec, 12).unwrap_err(),
            SubnetError::SelfTrunk { switch: 1 }
        );
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            plan(&TopologySpec::single_switch(0), 12).unwrap_err(),
            SubnetError::NoHosts
        );
    }

    #[test]
    fn unknown_switch_rejected() {
        let spec = TopologySpec::custom(2, vec![0, 5], vec![(0, 1)]);
        assert_eq!(
            plan(&spec, 12).unwrap_err(),
            SubnetError::UnknownSwitch { switch: 5 }
        );
    }
}
