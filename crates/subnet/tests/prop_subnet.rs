//! Property tests: every planned route terminates at its destination
//! host with no loops, for arbitrary connected topologies.

use proptest::prelude::*;
use rperf_subnet::{plan, SubnetError, TopologySpec};

/// Strategy: a random connected topology (spanning-tree trunks plus a few
/// extra edges) with hosts scattered over the switches.
fn topo_strategy() -> impl Strategy<Value = TopologySpec> {
    (
        1usize..6,
        prop::collection::vec(0usize..6, 1..10),
        any::<u64>(),
    )
        .prop_map(|(n_sw, host_raw, seed)| {
            let hosts: Vec<usize> = host_raw.into_iter().map(|h| h % n_sw).collect();
            // Spanning tree: connect i to a pseudo-random earlier switch.
            let mut trunks = Vec::new();
            let mut state = seed | 1;
            for i in 1..n_sw {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let parent = (state >> 33) as usize % i;
                trunks.push((parent, i));
            }
            // One optional extra edge for redundancy.
            if n_sw >= 3 {
                trunks.push((0, n_sw - 1));
            }
            trunks.dedup();
            TopologySpec::custom(n_sw, hosts, trunks)
        })
}

proptest! {
    /// Following forwarding entries hop by hop always reaches the
    /// destination host's switch within `switches` hops (loop freedom).
    #[test]
    fn routes_terminate_without_loops(spec in topo_strategy()) {
        let plan = match plan(&spec, 12) {
            Ok(p) => p,
            // Over-budget randomized topologies are legitimately rejected.
            Err(SubnetError::PortBudgetExceeded { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        };
        let n_sw = spec.switches();
        for (dst_host, &lid) in plan.lids.iter().enumerate() {
            let (dst_sw, dst_port) = plan.host_ports[dst_host];
            for start in 0..n_sw {
                let mut sw = start;
                let mut hops = 0;
                loop {
                    let port = plan.route_of(sw, lid).expect("entry for every lid");
                    if sw == dst_sw {
                        prop_assert_eq!(port, dst_port, "local delivery port");
                        break;
                    }
                    // The port must be a trunk; find the peer switch.
                    let peer = plan
                        .trunk_ports
                        .iter()
                        .find_map(|&((a, pa), (b, pb))| {
                            if (a, pa) == (sw, port) {
                                Some(b)
                            } else if (b, pb) == (sw, port) {
                                Some(a)
                            } else {
                                None
                            }
                        })
                        .expect("remote route must use a trunk port");
                    sw = peer;
                    hops += 1;
                    prop_assert!(hops <= n_sw, "routing loop for {} from {}", lid, start);
                }
            }
        }
    }

    /// Hop counts are symmetric and obey the triangle property through
    /// the attached switches.
    #[test]
    fn hops_symmetric(spec in topo_strategy()) {
        let plan = match plan(&spec, 12) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let n = plan.lids.len();
        for a in 0..n {
            prop_assert_eq!(plan.hops[a][a], 0);
            for b in 0..n {
                prop_assert_eq!(plan.hops[a][b], plan.hops[b][a]);
                if a != b {
                    prop_assert!(plan.hops[a][b] >= 1);
                }
            }
        }
    }

    /// LIDs are unique and dense starting at 1.
    #[test]
    fn lids_unique_and_dense(spec in topo_strategy()) {
        let plan = match plan(&spec, 12) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        for (i, lid) in plan.lids.iter().enumerate() {
            prop_assert_eq!(lid.raw(), i as u16 + 1);
        }
    }

    /// No two endpoints share a (switch, port).
    #[test]
    fn port_assignments_disjoint(spec in topo_strategy()) {
        let plan = match plan(&spec, 12) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut seen = std::collections::BTreeSet::new();
        for &(sw, port) in &plan.host_ports {
            prop_assert!(seen.insert((sw, port.raw())), "duplicate host port");
        }
        for &((a, pa), (b, pb)) in &plan.trunk_ports {
            prop_assert!(seen.insert((a, pa.raw())), "duplicate trunk port");
            prop_assert!(seen.insert((b, pb.raw())), "duplicate trunk port");
        }
    }
}
