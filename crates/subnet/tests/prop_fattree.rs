//! Property tests for the fat-tree generators: every planned routing
//! table is fully reachable (all host pairs), loop-free, and
//! byte-identical across repeated plans.

use proptest::prelude::*;
use rperf_subnet::{plan, FatTreeParams, SubnetPlan, TopologySpec};

/// Strategy: every constructible small fat-tree (even `k`, both tier
/// counts, oversubscribed and non-blocking edges), capped so the
/// all-pairs walk below stays fast.
fn fattree_strategy() -> impl Strategy<Value = FatTreeParams> {
    let mut options = Vec::new();
    for half_k in 1..=3 {
        for tiers in 2..=3 {
            for o in 1..=2 {
                let ft = FatTreeParams::new(2 * half_k, tiers, o);
                if ft.hosts() <= 64 {
                    options.push(ft);
                }
            }
        }
    }
    prop::sample::select(options)
}

fn planned(ft: &FatTreeParams) -> (TopologySpec, SubnetPlan) {
    let spec = ft.spec();
    let ports = ft.radix() as u8;
    let plan = plan(&spec, ports).expect("fat-trees plan within their own radix");
    (spec, plan)
}

/// Walks packets hop by hop from `src`'s switch to `dst`'s LID; returns
/// the number of switches traversed.
fn walk(plan: &SubnetPlan, spec: &TopologySpec, src: usize, dst: usize) -> u32 {
    let lid = plan.lids[dst];
    let (dst_sw, dst_port) = plan.host_ports[dst];
    let mut sw = plan.host_ports[src].0;
    let mut visited = 1u32;
    loop {
        let port = plan.route_of(sw, lid).expect("entry for every lid");
        if sw == dst_sw {
            assert_eq!(port, dst_port, "local delivery port");
            return visited;
        }
        let peer = plan
            .trunk_ports
            .iter()
            .find_map(|&((a, pa), (b, pb))| {
                if (a, pa) == (sw, port) {
                    Some(b)
                } else if (b, pb) == (sw, port) {
                    Some(a)
                } else {
                    None
                }
            })
            .expect("remote route must use a trunk port");
        sw = peer;
        visited += 1;
        assert!(
            visited <= spec.switches() as u32,
            "routing loop toward {lid}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every host pair is reachable by following the forwarding tables,
    /// without loops, in exactly the hop count the plan reports — and
    /// cross-pod paths in a 3-tier fabric take at most 5 hops.
    #[test]
    fn all_pairs_reachable_loop_free(ft in fattree_strategy()) {
        let (spec, plan) = planned(&ft);
        let max_hops = if ft.tiers == 2 { 3 } else { 5 };
        for src in 0..ft.hosts() {
            for dst in 0..ft.hosts() {
                if src == dst {
                    continue;
                }
                let hops = walk(&plan, &spec, src, dst);
                prop_assert_eq!(hops, plan.hops[src][dst], "recorded hop count");
                prop_assert!(hops <= max_hops, "{} hops on a {}-tier tree", hops, ft.tiers);
            }
        }
    }

    /// Planning the same parameters twice yields byte-identical tables
    /// (the plan is a pure function of the parameters).
    #[test]
    fn repeated_plans_are_identical(ft in fattree_strategy()) {
        let (spec_a, plan_a) = planned(&ft);
        let (spec_b, plan_b) = planned(&ft);
        prop_assert_eq!(spec_a, spec_b);
        prop_assert_eq!(plan_a, plan_b);
    }

    /// The generator's shape formulas agree with the generated graph,
    /// and the radix bound is tight: planning at radix succeeds, one
    /// port fewer fails.
    #[test]
    fn shape_formulas_and_radix_bound(ft in fattree_strategy()) {
        let spec = ft.spec();
        prop_assert_eq!(spec.hosts(), ft.hosts());
        prop_assert_eq!(spec.switches(), ft.switches());
        let max_needed = (0..spec.switches())
            .map(|sw| spec.ports_needed(sw))
            .max()
            .unwrap();
        prop_assert_eq!(max_needed, ft.radix());
        prop_assert!(plan(&spec, ft.radix() as u8).is_ok());
        prop_assert!(plan(&spec, (ft.radix() - 1) as u8).is_err());
    }
}
