//! Integer picosecond simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in picoseconds since simulation start.
///
/// `SimTime` is an absolute instant; the span between two instants is a
/// [`SimDuration`]. The two types are kept distinct so that nonsensical
/// arithmetic (adding two instants, for example) does not compile.
///
/// # Examples
///
/// ```
/// use rperf_sim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_ns(100);
/// assert_eq!(t1 - t0, SimDuration::from_ns(100));
/// assert_eq!(t1.as_ps(), 100_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use rperf_sim::SimDuration;
///
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ns_f64(), 2500.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Raw picoseconds since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since the epoch, as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds since the epoch, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The duration since an earlier instant, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds (rounded to the
    /// nearest picosecond, never negative).
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration((ns.max(0.0) * 1e3).round() as u64)
    }

    /// Creates a duration from fractional seconds (rounded to the nearest
    /// picosecond, never negative).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e12).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds, as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0ps")
        } else if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{}s", ps / 1_000_000_000_000)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(42) + SimDuration::from_us(1);
        assert_eq!(t.as_ps(), 1_042_000);
        assert_eq!(t - SimTime::from_ns(42), SimDuration::from_us(1));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_us(3), SimDuration::from_ns(3_000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1_000));
        assert_eq!(SimDuration::from_ns_f64(1.5), SimDuration::from_ps(1_500));
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_ns(1));
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_ns_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(20);
        assert_eq!(late.saturating_since(early), SimDuration::from_ns(10));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ps(5).to_string(), "5ps");
        assert_eq!(SimDuration::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimDuration::from_us(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_ms(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::ZERO.to_string(), "0ps");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_ns(1);
        let y = SimDuration::from_ns(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_ns(10);
        assert_eq!(d * 3, SimDuration::from_ns(30));
        assert_eq!(d / 2, SimDuration::from_ns(5));
        assert_eq!(d.times(4), SimDuration::from_ns(40));
    }
}
