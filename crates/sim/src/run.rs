//! The simulation driver loop.

use crate::{EventQueue, SimTime};

/// A simulated system: everything that reacts to events.
///
/// The driver ([`run`]) pops events in time order and hands each one to
/// [`World::handle`], which may schedule further events on the queue.
pub trait World {
    /// The event type flowing through the system.
    type Event;

    /// Reacts to one event at time `now`, scheduling follow-ups on `q`.
    fn handle(&mut self, now: SimTime, event: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// When the driver loop should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop when the queue drains.
    QueueEmpty,
    /// Stop before processing any event later than this instant.
    At(SimTime),
    /// Stop after this many events (a runaway-simulation backstop).
    EventBudget(u64),
}

/// Why the driver loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained.
    QueueDrained,
    /// The time horizon was reached; the horizon event is left unprocessed.
    HorizonReached,
    /// The event budget was exhausted.
    BudgetExhausted,
    /// The cancellation hook asked the loop to stop ([`run_budgeted`]).
    Cancelled,
}

/// Runs `world` until `stop` triggers.
///
/// Returns why the loop stopped. Events scheduled exactly at an `At(t)`
/// horizon are *not* processed (the horizon is exclusive), so a run to
/// `t` followed by a run to `t'` > `t` is identical to a single run to `t'`.
///
/// # Examples
///
/// ```
/// use rperf_sim::{run, EventQueue, RunOutcome, SimTime, StopCondition, World};
///
/// struct Counter(u64);
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         if self.0 < 10 {
///             q.schedule(now + rperf_sim::SimDuration::from_ns(1), ());
///         }
///     }
/// }
///
/// let mut world = Counter(0);
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::ZERO, ());
/// let outcome = run(&mut world, &mut q, StopCondition::QueueEmpty);
/// assert_eq!(outcome, RunOutcome::QueueDrained);
/// assert_eq!(world.0, 10);
/// ```
pub fn run<W: World>(
    world: &mut W,
    q: &mut EventQueue<W::Event>,
    stop: StopCondition,
) -> RunOutcome {
    // The stop condition is invariant across the run; branching on it once
    // here keeps the per-event path down to pop + handle (+ one comparison
    // for the horizon/budget variants) instead of re-testing two Options
    // on every iteration of the hottest loop in the workspace.
    match stop {
        StopCondition::QueueEmpty => loop {
            match q.pop() {
                Some((now, ev)) => world.handle(now, ev, q),
                None => return RunOutcome::QueueDrained,
            }
        },
        StopCondition::At(horizon) => loop {
            match q.peek_time() {
                Some(t) if t >= horizon => return RunOutcome::HorizonReached,
                None => return RunOutcome::QueueDrained,
                _ => {}
            }
            // peek_time just returned Some, so pop always yields here.
            if let Some((now, ev)) = q.pop() {
                world.handle(now, ev, q);
            }
        },
        StopCondition::EventBudget(mut budget) => loop {
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            match q.pop() {
                Some((now, ev)) => world.handle(now, ev, q),
                None => return RunOutcome::QueueDrained,
            }
        },
    }
}

/// Runs `world` toward the `horizon` (exclusive, like [`StopCondition::At`])
/// under a hard event budget and a cooperative cancellation hook.
///
/// The loop processes events in chunks of `check_every` (clamped to at
/// least 1) and calls `cancelled` between chunks; a `true` return stops the
/// run with [`RunOutcome::Cancelled`] before the next chunk starts. This is
/// the mechanism long-running services use to enforce wall-clock deadlines
/// on simulations without threading `Instant` (banned in this crate — lint
/// rule D2) through the engine: the clock check lives in the caller's
/// closure. `max_events` bounds the total events processed across the call
/// ([`RunOutcome::BudgetExhausted`] when it runs out).
///
/// Chunking does not affect simulation results: events pop in exactly the
/// same order as [`run`] with `StopCondition::At(horizon)`, so an
/// uninterrupted budgeted run is bit-identical to an unbudgeted one.
///
/// # Examples
///
/// ```
/// use rperf_sim::{run_budgeted, EventQueue, RunOutcome, SimTime, World};
///
/// struct Counter(u64);
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _: (), q: &mut EventQueue<()>) {
///         self.0 += 1;
///         q.schedule(now + rperf_sim::SimDuration::from_ns(1), ());
///     }
/// }
///
/// let mut world = Counter(0);
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::ZERO, ());
/// // Cancel on the second poll: exactly one chunk of 8 events runs.
/// let mut polls = 0;
/// let out = run_budgeted(
///     &mut world,
///     &mut q,
///     SimTime::from_ns(1_000_000),
///     u64::MAX,
///     8,
///     &mut || {
///         polls += 1;
///         polls > 1
///     },
/// );
/// assert_eq!(out, RunOutcome::Cancelled);
/// assert_eq!(world.0, 8);
/// ```
pub fn run_budgeted<W: World>(
    world: &mut W,
    q: &mut EventQueue<W::Event>,
    horizon: SimTime,
    max_events: u64,
    check_every: u64,
    cancelled: &mut dyn FnMut() -> bool,
) -> RunOutcome {
    let check_every = check_every.max(1);
    let mut remaining = max_events;
    loop {
        if cancelled() {
            return RunOutcome::Cancelled;
        }
        if remaining == 0 {
            return RunOutcome::BudgetExhausted;
        }
        let chunk = check_every.min(remaining);
        remaining -= chunk;
        for _ in 0..chunk {
            match q.peek_time() {
                Some(t) if t >= horizon => return RunOutcome::HorizonReached,
                None => return RunOutcome::QueueDrained,
                _ => {}
            }
            // peek_time just returned Some, so pop always yields here.
            if let Some((now, ev)) = q.pop() {
                world.handle(now, ev, q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    struct Ticker {
        ticks: Vec<SimTime>,
        period: SimDuration,
    }

    impl World for Ticker {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.ticks.push(now);
            q.schedule(now + self.period, ev + 1);
        }
    }

    fn ticker() -> (Ticker, EventQueue<u32>) {
        let w = Ticker {
            ticks: Vec::new(),
            period: SimDuration::from_ns(10),
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 0);
        (w, q)
    }

    #[test]
    fn horizon_is_exclusive_and_resumable() {
        let (mut w, mut q) = ticker();
        let out = run(&mut w, &mut q, StopCondition::At(SimTime::from_ns(35)));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(w.ticks.len(), 4); // t = 0, 10, 20, 30

        // Resuming to a later horizon continues seamlessly.
        let out = run(&mut w, &mut q, StopCondition::At(SimTime::from_ns(55)));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(w.ticks.len(), 6); // + t = 40, 50
    }

    #[test]
    fn event_at_horizon_not_processed() {
        let (mut w, mut q) = ticker();
        run(&mut w, &mut q, StopCondition::At(SimTime::from_ns(30)));
        assert_eq!(w.ticks.last(), Some(&SimTime::from_ns(20)));
    }

    #[test]
    fn budget_stops_runaway() {
        let (mut w, mut q) = ticker();
        let out = run(&mut w, &mut q, StopCondition::EventBudget(100));
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(w.ticks.len(), 100);
    }

    #[test]
    fn budgeted_matches_plain_run_when_uninterrupted() {
        let (mut a, mut qa) = ticker();
        let (mut b, mut qb) = ticker();
        let horizon = SimTime::from_ns(95);
        let plain = run(&mut a, &mut qa, StopCondition::At(horizon));
        let budgeted = run_budgeted(&mut b, &mut qb, horizon, u64::MAX, 3, &mut || false);
        assert_eq!(plain, budgeted);
        assert_eq!(a.ticks, b.ticks);
    }

    #[test]
    fn budgeted_cancellation_stops_between_chunks() {
        let (mut w, mut q) = ticker();
        let mut checks = 0u64;
        let out = run_budgeted(
            &mut w,
            &mut q,
            SimTime::from_ns(1_000_000_000),
            u64::MAX,
            7,
            &mut || {
                checks += 1;
                checks > 3
            },
        );
        assert_eq!(out, RunOutcome::Cancelled);
        assert_eq!(w.ticks.len(), 21); // three full chunks of 7
    }

    #[test]
    fn budgeted_event_budget_is_exact() {
        let (mut w, mut q) = ticker();
        let out = run_budgeted(
            &mut w,
            &mut q,
            SimTime::from_ns(1_000_000_000),
            100,
            8,
            &mut || false,
        );
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(w.ticks.len(), 100);
    }

    #[test]
    fn budgeted_horizon_is_exclusive_and_resumable() {
        let (mut w, mut q) = ticker();
        let out = run_budgeted(
            &mut w,
            &mut q,
            SimTime::from_ns(30),
            u64::MAX,
            1024,
            &mut || false,
        );
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(w.ticks.last(), Some(&SimTime::from_ns(20)));
        // Resuming via the plain runner continues seamlessly.
        run(&mut w, &mut q, StopCondition::At(SimTime::from_ns(55)));
        assert_eq!(w.ticks.len(), 6); // t = 0..=50 step 10
    }

    #[test]
    fn empty_queue_drains_immediately() {
        struct Noop;
        impl World for Noop {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut EventQueue<()>) {}
        }
        let mut q = EventQueue::<()>::new();
        assert_eq!(
            run(&mut Noop, &mut q, StopCondition::QueueEmpty),
            RunOutcome::QueueDrained
        );
    }
}
