//! Reference implementations kept for differential testing and benchmarks.
//!
//! [`HeapEventQueue`] is the original `BinaryHeap`-backed event queue that
//! [`crate::EventQueue`] (now a hierarchical timer wheel) replaced. It is the
//! ordering oracle: the property test in `tests/prop_event_queue.rs` replays
//! arbitrary interleaved schedule/pop sequences through both queues and
//! requires identical `(time, order)` output, and the `event_queue` bench in
//! `rperf-bench` measures the wheel against it at several depths and delay
//! mixes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// The original `BinaryHeap`-backed stable event queue.
///
/// Pops events in non-decreasing time order with FIFO tie-breaking at equal
/// timestamps, exactly like [`crate::EventQueue`], but every push/pop pays an
/// O(log n) sift. Kept only as a differential-testing oracle and benchmark
/// baseline; simulations should use [`crate::EventQueue`].
///
/// # Examples
///
/// ```
/// use rperf_sim::reference::HeapEventQueue;
/// use rperf_sim::SimTime;
///
/// let mut q = HeapEventQueue::new();
/// q.schedule(SimTime::from_ns(5), "b");
/// q.schedule(SimTime::from_ns(2), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(2), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
/// ```
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (and, within a
        // timestamp, the lowest-sequence) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The timestamp of the most recently popped event (`t = 0` initially).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` is earlier than
    /// [`HeapEventQueue::now`].
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing
    /// [`HeapEventQueue::now`].
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_pops_in_time_order_with_fifo_ties() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_ns(5), 2);
        q.schedule(SimTime::from_ns(1), 0);
        q.schedule(SimTime::from_ns(5), 3);
        q.schedule(SimTime::from_ns(2), 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(q.popped(), 4);
    }
}
