//! Conservative-lookahead parallel execution primitives.
//!
//! One simulation is partitioned into *shards* — disjoint sets of devices,
//! each owning a private [`EventQueue`] — that advance in lock-step
//! *windows*. The protocol (DESIGN.md §3, "Sharded execution") relies on a
//! single physical fact: every cross-shard event is delayed by at least
//! the wire's propagation time, the [`Lookahead`]. A shard processing
//! events in `[W, W + L)` can therefore never receive a message with a
//! timestamp below `W + L` from a peer working the same window, so one
//! barrier plus a mailbox drain per window is enough to keep every shard
//! causally consistent — no rollback, no speculative execution.
//!
//! Determinism does not come from the schedule (threads interleave
//! arbitrarily) but from ordering: every event carries a key assigned by
//! its *source* device (`(device, emission counter)` packed into a `u64`),
//! queues pop in `(time, key)` order ([`EventQueue::schedule_keyed`]), and
//! mailboxes are drained whole at window boundaries. A device's observed
//! event stream is then a pure function of the scenario, not of the
//! shard count or thread timing.
//!
//! The module is `std`-only: a sense-reversing [`SpinBarrier`] (with a
//! yield fallback so oversubscribed hosts make progress), a [`Mailbox`]
//! grid of per-edge `Mutex<Vec<_>>` cells, and [`run_sharded`], the
//! window scheduler driving `N − 1` scoped worker threads plus the
//! caller's thread as shard 0.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::run::RunOutcome;
use crate::time::{SimDuration, SimTime};

/// The guaranteed lower bound on cross-shard event delay.
///
/// `bounded(d)` for a fabric whose minimum cross-shard link latency is
/// `d`; `unbounded()` when no edge crosses a shard boundary (a single
/// shard, or a partition that co-located every connected component), in
/// which case windows extend to the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookahead(Option<SimDuration>);

impl Lookahead {
    /// A lookahead of `d`: cross-shard events sent at `t` arrive at or
    /// after `t + d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero — a zero lookahead admits same-instant
    /// cross-shard causality, which the windowed protocol cannot order.
    pub fn bounded(d: SimDuration) -> Self {
        assert!(d > SimDuration::ZERO, "lookahead must be positive");
        Lookahead(Some(d))
    }

    /// No cross-shard edges exist: windows run straight to the horizon.
    pub fn unbounded() -> Self {
        Lookahead(None)
    }

    /// The exclusive end of the window opening at `start`, clamped to
    /// `horizon`. Ordering contract: every event with `t < window_end` is
    /// safe to process once all mailboxes posted before the window are
    /// drained.
    pub fn window_end(&self, start: SimTime, horizon: SimTime) -> SimTime {
        match self.0 {
            Some(d) => (start + d).min(horizon),
            None => horizon,
        }
    }
}

/// A reusable sense-reversing spin barrier for a fixed party count.
///
/// Waiters spin briefly then fall back to [`std::thread::yield_now`], so
/// the barrier stays correct (if slow) when shards outnumber cores.
/// Ordering contract: all memory writes before a party's `wait` happen
/// before any party's return from the same generation (acquire/release on
/// the generation counter).
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

/// Spins this many iterations before yielding the CPU to other threads.
const SPINS_BEFORE_YIELD: u32 = 128;

impl SpinBarrier {
    /// A barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all parties have called `wait` for the current
    /// generation. The last arrival releases everyone and flips the
    /// generation, making the barrier immediately reusable.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < SPINS_BEFORE_YIELD {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A `shards × shards` grid of cross-shard message cells.
///
/// Cell `(src, dst)` buffers messages travelling from shard `src` to
/// shard `dst`. During a window each worker only pushes to its own row
/// (uncontended in steady state); at a window boundary the destination
/// drains its column in ascending source order. Ordering contract:
/// [`Mailbox::drain_into`] appends whole cells in source-shard order with
/// each cell preserving post order — stable, so re-keyed scheduling into
/// an [`crate::EventQueue`] yields the same pop order however messages
/// were batched.
#[derive(Debug)]
pub struct Mailbox<M> {
    shards: usize,
    /// Row-major `[src * shards + dst]`.
    cells: Vec<Mutex<Vec<M>>>,
}

impl<M> Mailbox<M> {
    /// An empty grid for `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a mailbox grid needs at least one shard");
        Mailbox {
            shards,
            cells: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// The number of shards the grid serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Posts one message from `src` to `dst`. Post order within a cell is
    /// preserved by [`Mailbox::drain_into`].
    pub fn post(&self, src: usize, dst: usize, msg: M) {
        // A poisoned cell means another shard panicked; that panic is
        // already propagating through the scheduler's join, so recovering
        // the data here (rather than double-panicking) is safe.
        let mut cell = match self.cells[src * self.shards + dst].lock() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        cell.push(msg);
    }

    /// Moves every message addressed to `dst` into `sink`, in ascending
    /// source-shard order (cells keep their internal post order).
    /// Returns the number of messages drained.
    pub fn drain_into(&self, dst: usize, sink: &mut Vec<M>) -> u64 {
        let mut drained = 0u64;
        for src in 0..self.shards {
            let mut cell = match self.cells[src * self.shards + dst].lock() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            drained += cell.len() as u64;
            sink.append(&mut cell);
        }
        drained
    }
}

/// One shard of a partitioned simulation, as seen by [`run_sharded`].
///
/// Implementors own a private event queue plus the devices of their
/// domain and exchange cross-shard events exclusively through a
/// [`Mailbox`] (lint rule D10). All methods are called with the window
/// protocol's ordering guarantees: `drain_inbound` and `next_time` run
/// between barriers (no peer is mutating mailboxes addressed here), and
/// `run_window(end)` may process every local event with `t < end`.
pub trait ShardedWorld: Send {
    /// Drains this shard's pending mailbox messages into the local queue.
    /// Called once per window, before the global minimum is agreed on.
    fn drain_inbound(&mut self);

    /// The timestamp of this shard's earliest pending event, or `None`
    /// when the shard is idle.
    fn next_time(&mut self) -> Option<SimTime>;

    /// Processes every local event strictly before `end` in `(time, key)`
    /// order, posting cross-shard emissions to the mailbox. Returns the
    /// number of events processed.
    fn run_window(&mut self, end: SimTime) -> u64;
}

/// Per-shard execution counters reported by [`run_sharded`].
///
/// `events` and `windows` are deterministic for a fixed scenario and
/// shard count; `barrier_ns` is wall-clock attribution of time spent
/// waiting at window barriers and is only collected under the `sim-prof`
/// feature (zero otherwise) — it must never feed simulated state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Events this shard processed.
    pub events: u64,
    /// Windows this shard participated in.
    pub windows: u64,
    /// Wall-clock nanoseconds spent waiting at barriers (`sim-prof` only).
    pub barrier_ns: u64,
}

/// Sentinel published through the coordination slot: no pending events.
const T_NONE: u64 = u64::MAX;

/// Leader verdicts: `verdict` holds a window-start timestamp, or
/// `STOP - outcome` when the run ends (timestamps near `u64::MAX` cannot
/// occur: `T_NONE` aside, window starts are below the horizon).
const STOP_BASE: u64 = u64::MAX - 8;

fn encode_stop(outcome: RunOutcome) -> u64 {
    STOP_BASE
        + match outcome {
            RunOutcome::QueueDrained => 0,
            RunOutcome::HorizonReached => 1,
            RunOutcome::BudgetExhausted => 2,
            RunOutcome::Cancelled => 3,
        }
}

fn decode_stop(v: u64) -> Option<RunOutcome> {
    match v.checked_sub(STOP_BASE) {
        Some(0) => Some(RunOutcome::QueueDrained),
        Some(1) => Some(RunOutcome::HorizonReached),
        Some(2) => Some(RunOutcome::BudgetExhausted),
        Some(3) => Some(RunOutcome::Cancelled),
        _ => None,
    }
}

/// Shared coordination state for one [`run_sharded`] call.
struct WindowSync {
    barrier: SpinBarrier,
    /// Per-shard published next-event times (`T_NONE` = idle).
    mins: Vec<AtomicU64>,
    /// Per-shard cumulative event counts (for the budget check).
    events: Vec<AtomicU64>,
    /// Leader-published window start or stop verdict.
    verdict: AtomicU64,
}

/// One worker's traversal of the window protocol. `leader` is `Some`
/// for shard 0, carrying the budget/cancellation policy closure.
fn shard_loop<W: ShardedWorld>(
    shard: usize,
    world: &mut W,
    sync: &WindowSync,
    lookahead: Lookahead,
    horizon: SimTime,
    mut leader: Option<&mut dyn FnMut(u64) -> Option<RunOutcome>>,
) -> ShardRunStats {
    let mut stats = ShardRunStats::default();
    loop {
        // Phase 0: wait for every shard to finish the previous window, so
        // all cross-shard posts for it are visible before mailboxes drain.
        // Without this a fast shard could publish its minimum while a slow
        // peer is still posting, and the leader would miss an in-flight
        // event when folding the minima.
        barrier_wait(sync, &mut stats);

        // Phase 1: merge inbound messages, publish the local minimum.
        world.drain_inbound();
        let min = world.next_time().map_or(T_NONE, SimTime::as_ps);
        sync.mins[shard].store(min, Ordering::Release);
        sync.events[shard].store(stats.events, Ordering::Release);
        barrier_wait(sync, &mut stats);

        // Phase 2: the leader folds the minima into a verdict.
        if let Some(policy) = leader.as_deref_mut() {
            let global_min = sync
                .mins
                .iter()
                .map(|m| m.load(Ordering::Acquire))
                .min()
                .unwrap_or(T_NONE);
            let total: u64 = sync.events.iter().map(|e| e.load(Ordering::Acquire)).sum();
            let verdict = if let Some(out) = policy(total) {
                encode_stop(out)
            } else if global_min == T_NONE {
                encode_stop(RunOutcome::QueueDrained)
            } else if global_min >= horizon.as_ps() {
                encode_stop(RunOutcome::HorizonReached)
            } else {
                global_min
            };
            sync.verdict.store(verdict, Ordering::Release);
        }
        barrier_wait(sync, &mut stats);

        // Phase 3: everyone acts on the verdict.
        let verdict = sync.verdict.load(Ordering::Acquire);
        if let Some(outcome) = decode_stop(verdict) {
            let _ = outcome;
            return stats;
        }
        let start = SimTime::from_ps(verdict);
        let end = lookahead.window_end(start, horizon);
        stats.events += world.run_window(end);
        stats.windows += 1;
    }
}

#[cfg(feature = "sim-prof")]
fn barrier_wait(sync: &WindowSync, stats: &mut ShardRunStats) {
    // prof_wait: wall-clock barrier attribution, gated behind `sim-prof`
    // (lint.toml D2 allow) — diagnostics only, never simulated state.
    let prof_wait = std::time::Instant::now();
    sync.barrier.wait();
    stats.barrier_ns += prof_wait.elapsed().as_nanos() as u64;
}

#[cfg(not(feature = "sim-prof"))]
fn barrier_wait(sync: &WindowSync, stats: &mut ShardRunStats) {
    let _ = stats;
    sync.barrier.wait();
}

/// Drives a partitioned simulation to `horizon` (exclusive) under an
/// event budget and a cooperative cancellation hook.
///
/// Shard 0 runs on the calling thread (and acts as the window leader);
/// the remaining shards run on scoped worker threads. Ordering contract:
/// events pop per shard in `(time, key)` order within windows of
/// `lookahead` width, which for source-assigned keys makes results
/// independent of the shard count and of thread scheduling; see the
/// module docs. `cancelled` is polled once per window on the calling
/// thread; `max_events` is enforced at window granularity (the run stops
/// at the first window boundary where the running total has reached it,
/// so slightly more than `max_events` events may execute — exact-count
/// reproducibility of interrupted runs is a sequential-engine property).
///
/// Returns the stop reason plus per-shard [`ShardRunStats`] (index =
/// shard).
pub fn run_sharded<W: ShardedWorld>(
    worlds: &mut [W],
    lookahead: Lookahead,
    horizon: SimTime,
    max_events: u64,
    cancelled: &mut dyn FnMut() -> bool,
) -> (RunOutcome, Vec<ShardRunStats>) {
    let shards = worlds.len();
    assert!(shards > 0, "run_sharded needs at least one shard");
    let sync = WindowSync {
        barrier: SpinBarrier::new(shards),
        mins: (0..shards).map(|_| AtomicU64::new(T_NONE)).collect(),
        events: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        verdict: AtomicU64::new(T_NONE),
    };
    let mut policy = |total: u64| -> Option<RunOutcome> {
        if cancelled() {
            Some(RunOutcome::Cancelled)
        } else if total >= max_events {
            Some(RunOutcome::BudgetExhausted)
        } else {
            None
        }
    };

    let Some((first, rest)) = worlds.split_first_mut() else {
        // Unreachable: the `shards > 0` assert above covers the empty case.
        return (RunOutcome::QueueDrained, Vec::new());
    };
    let mut all_stats = vec![ShardRunStats::default(); shards];
    let sync_ref = &sync;
    let leader_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = rest
            .iter_mut()
            .enumerate()
            .map(|(i, world)| {
                scope.spawn(move || shard_loop(i + 1, world, sync_ref, lookahead, horizon, None))
            })
            .collect();
        let leader = shard_loop(0, first, sync_ref, lookahead, horizon, Some(&mut policy));
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(stats) => all_stats[i + 1] = stats,
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        leader
    });
    all_stats[0] = leader_stats;
    let Some(outcome) = decode_stop(sync.verdict.load(Ordering::Acquire)) else {
        debug_assert!(false, "shard loop exited without a stop verdict");
        return (RunOutcome::QueueDrained, all_stats);
    };
    (outcome, all_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;

    #[test]
    fn lookahead_window_end_clamps_to_horizon() {
        let la = Lookahead::bounded(SimDuration::from_ns(5));
        assert_eq!(
            la.window_end(SimTime::from_ns(10), SimTime::from_ns(100)),
            SimTime::from_ns(15)
        );
        assert_eq!(
            la.window_end(SimTime::from_ns(98), SimTime::from_ns(100)),
            SimTime::from_ns(100)
        );
        let inf = Lookahead::unbounded();
        assert_eq!(
            inf.window_end(SimTime::ZERO, SimTime::from_ns(100)),
            SimTime::from_ns(100)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lookahead_rejected() {
        let _ = Lookahead::bounded(SimDuration::ZERO);
    }

    #[test]
    fn spin_barrier_synchronizes_and_reuses() {
        let barrier = SpinBarrier::new(4);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 1..=16usize {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // Between barriers every party observes the full
                        // round's increments.
                        assert_eq!(counter.load(Ordering::SeqCst), 4 * round);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn mailbox_drains_in_source_order() {
        let grid: Mailbox<u32> = Mailbox::new(3);
        grid.post(2, 0, 20);
        grid.post(0, 0, 1);
        grid.post(0, 0, 2);
        grid.post(1, 0, 10);
        grid.post(1, 2, 99); // other destination: untouched
        let mut sink = Vec::new();
        assert_eq!(grid.drain_into(0, &mut sink), 4);
        assert_eq!(sink, vec![1, 2, 10, 20]);
        sink.clear();
        assert_eq!(grid.drain_into(0, &mut sink), 0);
        assert_eq!(grid.drain_into(2, &mut sink), 1);
        assert_eq!(sink, vec![99]);
    }

    /// A toy sharded world: `K` counters ping-ponging messages around a
    /// ring with a fixed delay. Used to check the window protocol against
    /// a sequential reference.
    struct RingShard {
        id: usize,
        shards: usize,
        q: EventQueue<u64>,
        grid: std::sync::Arc<Mailbox<(u64, u64, u64)>>, // (at_ps, key, hops)
        inbox: Vec<(u64, u64, u64)>,
        delay: SimDuration,
        seen: Vec<u64>,
        ctr: u64,
    }

    impl ShardedWorld for RingShard {
        fn drain_inbound(&mut self) {
            let mut inbox = std::mem::take(&mut self.inbox);
            self.grid.drain_into(self.id, &mut inbox);
            for (at_ps, key, hops) in inbox.drain(..) {
                self.q.schedule_keyed(SimTime::from_ps(at_ps), key, hops);
            }
            self.inbox = inbox;
        }

        fn next_time(&mut self) -> Option<SimTime> {
            self.q.peek_time()
        }

        fn run_window(&mut self, end: SimTime) -> u64 {
            let mut n = 0;
            while self.q.peek_time().is_some_and(|t| t < end) {
                let Some((now, hops)) = self.q.pop() else {
                    break;
                };
                n += 1;
                self.seen.push(hops);
                if hops > 0 {
                    let key = ((self.id as u64) << 40) | self.ctr;
                    self.ctr += 1;
                    let at = now + self.delay;
                    let dst = (self.id + 1) % self.shards;
                    if dst == self.id {
                        self.q.schedule_keyed(at, key, hops - 1);
                    } else {
                        self.grid.post(self.id, dst, (at.as_ps(), key, hops - 1));
                    }
                }
            }
            n
        }
    }

    fn ring_run(shards: usize, hops: u64, horizon: SimTime) -> (RunOutcome, Vec<Vec<u64>>) {
        let grid = std::sync::Arc::new(Mailbox::new(shards));
        let delay = SimDuration::from_ns(7);
        let mut worlds: Vec<RingShard> = (0..shards)
            .map(|id| RingShard {
                id,
                shards,
                q: EventQueue::new(),
                grid: std::sync::Arc::clone(&grid),
                inbox: Vec::new(),
                delay,
                seen: Vec::new(),
                ctr: 0,
            })
            .collect();
        // The token starts on shard 0 at t = 1 ns.
        worlds[0]
            .q
            .schedule_keyed(SimTime::from_ns(1), u64::MAX, hops);
        let la = if shards > 1 {
            Lookahead::bounded(delay)
        } else {
            Lookahead::unbounded()
        };
        let (out, stats) = run_sharded(&mut worlds, la, horizon, u64::MAX, &mut || false);
        let total: u64 = stats.iter().map(|s| s.events).sum();
        let seen_total: usize = worlds.iter().map(|w| w.seen.len()).sum();
        assert_eq!(total as usize, seen_total);
        (out, worlds.into_iter().map(|w| w.seen).collect())
    }

    #[test]
    fn ring_token_visits_every_shard_deterministically() {
        let horizon = SimTime::from_us(1);
        let (out1, seen1) = ring_run(3, 50, horizon);
        let (out2, seen2) = ring_run(3, 50, horizon);
        assert_eq!(out1, RunOutcome::QueueDrained);
        assert_eq!(out1, out2);
        assert_eq!(seen1, seen2);
        // 51 events total (hops 50 down to 0), round-robin across shards.
        assert_eq!(seen1.iter().map(Vec::len).sum::<usize>(), 51);
        assert_eq!(seen1[0][0], 50);
        assert_eq!(seen1[1][0], 49);
    }

    #[test]
    fn horizon_stops_sharded_run() {
        // 7 ns per hop, horizon 50 ns: events at 1, 8, 15, 22, 29, 36, 43
        // fire; the event at 50 ns does not (horizon exclusive).
        let (out, seen) = ring_run(2, 1000, SimTime::from_ns(50));
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(seen.iter().map(Vec::len).sum::<usize>(), 7);
    }

    #[test]
    fn budget_and_cancellation_stop_runs() {
        let grid = std::sync::Arc::new(Mailbox::new(1));
        let mut worlds = vec![RingShard {
            id: 0,
            shards: 1,
            q: EventQueue::new(),
            grid,
            inbox: Vec::new(),
            delay: SimDuration::from_ns(1),
            seen: Vec::new(),
            ctr: 0,
        }];
        worlds[0]
            .q
            .schedule_keyed(SimTime::from_ns(1), 0, 1_000_000);
        let (out, _) = run_sharded(
            &mut worlds,
            Lookahead::unbounded(),
            SimTime::from_us(100),
            10,
            &mut || false,
        );
        assert_eq!(out, RunOutcome::BudgetExhausted);

        let (out, _) = run_sharded(
            &mut worlds,
            Lookahead::unbounded(),
            SimTime::from_us(100),
            u64::MAX,
            &mut || true,
        );
        assert_eq!(out, RunOutcome::Cancelled);
    }
}
