//! A stable timestamped event queue backed by a hierarchical timer wheel.
//!
//! See [`EventQueue`] for the public contract and the module-level notes on
//! `DESIGN.md` §"Event scheduler" for the full determinism argument. The
//! previous `BinaryHeap` implementation lives on as
//! [`crate::reference::HeapEventQueue`], the oracle the property tests and
//! benches compare against.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Log2 of the bucket width in picoseconds: events are hashed into the wheel
/// by `at.as_ps() >> TICK_BITS`, i.e. 4096 ps (~4 ns) buckets. At 100 Gbps a
/// byte serializes in 80 ps, so a bucket holds a cache-line's worth of
/// back-to-back byte boundaries — small enough that the per-bucket sort
/// stays a handful of entries, large enough that consecutive events share a
/// bucket and one `advance` refills the ready lane for several pops (the
/// fixed advance overhead is what dominates short diverse-timestamp
/// figures; see DESIGN.md §3).
const TICK_BITS: u32 = 12;

/// Log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;

/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;

/// Slot index mask.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Number of levels: 54 tick bits (64 − `TICK_BITS`) / 6 bits per level,
/// rounded up. Level `L` spans `2^(10 + 6·(L+1))` ps, so the hierarchy covers
/// the entire `u64` picosecond range.
const LEVELS: usize = 9;

#[inline]
const fn tick_of(at: SimTime) -> u64 {
    at.as_ps() >> TICK_BITS
}

/// Bitmask of the slots strictly above `slot` (0..=63).
#[inline]
const fn above_mask(slot: u32) -> u64 {
    if slot >= 63 {
        0
    } else {
        !0u64 << (slot + 1)
    }
}

/// A priority queue of `(SimTime, E)` pairs that pops events in
/// non-decreasing time order.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO tie-breaking via a monotonically increasing sequence
/// number), which keeps multi-component simulations deterministic.
///
/// The queue also tracks the timestamp of the last popped event as the
/// current simulation time ([`EventQueue::now`]); scheduling in the past is
/// a logic error and panics in debug builds.
///
/// # Implementation
///
/// Internally this is a hierarchical timer wheel (calendar queue) rather
/// than a binary heap: time is quantised into 1024 ps ticks, the next ~64
/// ticks live in level-0 buckets, and exponentially coarser levels hold the
/// far future, cascading down as the wheel rotates. Events landing behind
/// the wheel cursor (it advances to the next *occupied* bucket, which can
/// overshoot a sparse queue's near future) are absorbed by a small overflow
/// min-heap, so scheduling and popping are O(1) amortised in steady state
/// with an O(log n) worst case, and the ordering contract — including FIFO
/// within a timestamp — is bit-identical to the reference heap (enforced by
/// a property test against [`crate::reference::HeapEventQueue`]).
///
/// # Examples
///
/// ```
/// use rperf_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_ns(10), "late");
/// q.schedule_in(SimDuration::from_ns(1), "early");
/// q.schedule_in(SimDuration::from_ns(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.now(), SimTime::from_ns(1));
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The current bucket's events, sorted by `(at, seq)` — every event
    /// still in the wheel has a strictly later tick, hence a strictly later
    /// timestamp. Invariant: `ready` or `early` is non-empty whenever
    /// `len > 0`, so [`EventQueue::peek_time`] never has to touch the wheel.
    ready: VecDeque<Entry<E>>,
    /// Bit `L` set ⇔ `levels[L].occupied != 0`. Lets [`EventQueue::advance`]
    /// skip empty levels in the cascade scan (depth-adaptive advance) and
    /// lets [`EventQueue::schedule`] prove the wheel empty in O(1) for the
    /// sparse-queue cursor-jump fast path.
    level_mask: u16,
    /// Overflow for events scheduled at ticks the cursor has already passed.
    /// `advance` moves the cursor to the next *occupied* bucket, which can
    /// overshoot the times a handler schedules at right after the pop (the
    /// standard discrete-event pattern when the queue is sparse). Placement
    /// hashing is only stable for a monotone cursor, so such events cannot
    /// go into the wheel; a min-heap absorbs them at O(log k) with k the
    /// handful of behind-cursor events in flight. Every heap entry's tick is
    /// ≤ `cur_tick`, hence strictly earlier than every wheel entry — the
    /// global minimum is always visible at `ready.front()` or the heap top.
    early: BinaryHeap<Entry<E>>,
    levels: Vec<Level<E>>,
    /// The wheel's current tick. Only ever advances, and only to ticks that
    /// hold (or held) events; `tick(now) <= cur_tick` at all times.
    cur_tick: u64,
    len: usize,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Level<E> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: Vec<Vec<Entry<E>>>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `early` is a max-heap; reverse so the earliest (and, within a
        // timestamp, the lowest-sequence) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue whose ready lane can hold `capacity` events
    /// before reallocating. Simulations schedule and pop millions of events
    /// through a queue that rarely exceeds a few thousand entries; sizing
    /// the near-future lane once up front keeps reallocation out of the hot
    /// pop/push loop.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            ready: VecDeque::with_capacity(capacity),
            level_mask: 0,
            early: BinaryHeap::new(),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cur_tick: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Reserves space for at least `additional` more events in the ready
    /// lane.
    pub fn reserve(&mut self, additional: usize) {
        self.ready.reserve(additional);
    }

    /// Number of near-future events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.ready.capacity()
    }

    /// The timestamp of the most recently popped event (`t = 0` initially).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` is earlier than [`EventQueue::now`]
    /// (scheduling into the past indicates a device-model bug).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, event };
        let tick = tick_of(at);
        if tick <= self.cur_tick {
            // The wheel has already rotated past this tick (every event
            // still in the wheel is strictly later), so the entry stays in
            // front of it. Common case — `schedule_now` and same-bucket
            // follow-ups arriving in time order — appends to the sorted
            // lane (the fresh entry's sequence number is globally maximal,
            // so `at >= back.at` keeps the lane sorted with correct FIFO
            // ties); anything earlier goes to the overflow heap.
            match self.ready.back() {
                Some(back) if entry.at < back.at => self.early.push(entry),
                _ => self.ready.push_back(entry),
            }
        } else if self.ready.is_empty() && self.early.is_empty() {
            // Small-run fast path. Both lanes empty means the queue held no
            // events before this call (invariant: a lane is non-empty
            // whenever `len > 0`), so the wheel is empty too and the cursor
            // can jump straight to the event's tick. This replaces a wheel
            // hash plus a full `advance` scan — the fixed overhead that
            // dominates sparse ping-pong workloads (short latency figures)
            // where the queue drains to empty between every event.
            debug_assert_eq!(self.len, 1);
            debug_assert_eq!(self.level_mask, 0);
            self.cur_tick = tick;
            self.ready.push_back(entry);
        } else {
            self.place_in_wheel(entry, tick);
        }
    }

    /// Schedules `event` at absolute time `at` under a caller-supplied
    /// ordering key instead of the internal sequence counter.
    ///
    /// Ordering contract: the queue pops in non-decreasing `(at, key)`
    /// order, so keyed events at the same instant pop in ascending key
    /// order regardless of insertion order — the property the sharded
    /// engine relies on to make pop order independent of how events were
    /// partitioned across shards (DESIGN.md §3, sharded execution). Keys
    /// must be unique per timestamp; a queue must be driven either
    /// entirely through this method or entirely through the
    /// sequence-numbered [`EventQueue::schedule`] family, never a mix
    /// (the internal counter and caller keys share one ordering domain).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` is earlier than [`EventQueue::now`].
    #[inline]
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        self.len += 1;
        let entry = Entry {
            at,
            seq: key,
            event,
        };
        let tick = tick_of(at);
        if tick <= self.cur_tick {
            // Unlike `schedule`, a keyed entry's key is NOT globally
            // maximal, so a same-timestamp append can violate the ready
            // lane's `(at, seq)` sort; such entries (and anything earlier)
            // take the overflow heap, which tolerates any order.
            match self.ready.back() {
                Some(back) if (entry.at, entry.seq) < (back.at, back.seq) => self.early.push(entry),
                _ => self.ready.push_back(entry),
            }
        } else if self.ready.is_empty() && self.early.is_empty() {
            // Same sparse-queue cursor jump as `schedule`.
            debug_assert_eq!(self.len, 1);
            debug_assert_eq!(self.level_mask, 0);
            self.cur_tick = tick;
            self.ready.push_back(entry);
        } else {
            self.place_in_wheel(entry, tick);
        }
    }

    /// Schedules every `(at, event)` pair yielded by `events`.
    ///
    /// Pop-order equivalent to calling [`EventQueue::schedule`] once per
    /// pair in iteration order: the (time, seq) FIFO ordering contract is
    /// identical, with sequence numbers assigned in iteration order. The
    /// batch form skips the per-call empty-lane check and performs the
    /// cursor advance at most once after the whole batch, instead of paying
    /// redundant cursor work on each call.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if any `at` is earlier than
    /// [`EventQueue::now`].
    pub fn schedule_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        for (at, event) in events {
            debug_assert!(
                at >= self.now,
                "event scheduled in the past: {at:?} < now {:?}",
                self.now
            );
            let seq = self.seq;
            self.seq += 1;
            self.len += 1;
            let entry = Entry { at, seq, event };
            let tick = tick_of(at);
            if tick <= self.cur_tick {
                match self.ready.back() {
                    Some(back) if entry.at < back.at => self.early.push(entry),
                    _ => self.ready.push_back(entry),
                }
            } else {
                self.place_in_wheel(entry, tick);
            }
        }
        if self.ready.is_empty() && self.early.is_empty() && self.len > 0 {
            // Restore the invariant "ready or early non-empty whenever
            // len > 0" once for the whole batch.
            self.advance();
        }
    }

    /// Schedules `event` `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (processed after all events
    /// already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Removes and returns the earliest event, advancing [`EventQueue::now`].
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The global minimum is at the lane front or the overflow-heap top
        // (every wheel entry is strictly later than both); ties between the
        // two resolve by sequence number, preserving FIFO-within-timestamp.
        let from_early = match (self.ready.front(), self.early.peek()) {
            (Some(r), Some(e)) => (e.at, e.seq) < (r.at, r.seq),
            (None, Some(_)) => true,
            _ => false,
        };
        let entry = if from_early {
            self.early.pop()?
        } else {
            self.ready.pop_front()?
        };
        #[cfg(feature = "sim-sanitizer")]
        debug_assert!(
            entry.at >= self.now,
            "sim-sanitizer: event time regressed: {:?} < now {:?}",
            entry.at,
            self.now
        );
        self.now = entry.at;
        self.popped += 1;
        self.len -= 1;
        if self.ready.is_empty() && self.early.is_empty() && self.len > 0 {
            self.advance();
        }
        Some((entry.at, entry.event))
    }

    /// Removes and returns the earliest event only if its timestamp is
    /// exactly `at`; otherwise leaves the queue untouched.
    ///
    /// When it pops, the event is exactly the one [`EventQueue::pop`] would
    /// have returned — same (time, seq) FIFO ordering contract — so a
    /// `while let Some(e) = q.pop_if_at(now)` drain loop observes the same
    /// event stream as guarding `pop` with [`EventQueue::peek_time`].
    #[inline]
    pub fn pop_if_at(&mut self, at: SimTime) -> Option<E> {
        if self.peek_time()? != at {
            return None;
        }
        self.pop().map(|(_, e)| e)
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.ready.front(), self.early.peek()) {
            (Some(r), Some(e)) => Some(r.at.min(e.at)),
            (Some(r), None) => Some(r.at),
            (None, Some(e)) => Some(e.at),
            (None, None) => None,
        }
    }

    /// Discards all pending events without changing the current time.
    pub fn clear(&mut self) {
        self.ready.clear();
        self.early.clear();
        for level in &mut self.levels {
            level.occupied = 0;
            for slot in &mut level.slots {
                slot.clear();
            }
        }
        self.level_mask = 0;
        self.len = 0;
    }

    /// Hashes an entry with `tick > cur_tick` into the wheel. The level is
    /// chosen by the highest bit in which `tick` differs from `cur_tick`,
    /// which guarantees the entry's slot index at that level is strictly
    /// above the wheel cursor's — no modular wrap-around, so the "next
    /// occupied slot" scan in [`EventQueue::advance`] is a single mask plus
    /// trailing-zeros.
    #[inline]
    fn place_in_wheel(&mut self, entry: Entry<E>, tick: u64) {
        let xor = tick ^ self.cur_tick;
        debug_assert!(xor != 0);
        let level = ((63 - xor.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].occupied |= 1u64 << slot;
        self.level_mask |= 1u16 << level;
        self.levels[level].slots[slot].push(entry);
    }

    /// Rotates the wheel forward to the next occupied bucket and refills the
    /// ready lane with that bucket's entries, sorted by `(at, seq)`.
    /// Precondition: `ready` is empty. Postcondition: `ready` is non-empty
    /// iff any events remain.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty());
        loop {
            // Fast path: the next occupied level-0 slot within the current
            // 64-tick block.
            let cur_slot = (self.cur_tick & SLOT_MASK) as u32;
            let hit = self.levels[0].occupied & above_mask(cur_slot);
            if hit != 0 {
                let s = hit.trailing_zeros() as usize;
                self.levels[0].occupied &= !(1u64 << s);
                if self.levels[0].occupied == 0 {
                    self.level_mask &= !1u16;
                }
                self.cur_tick = (self.cur_tick & !SLOT_MASK) | s as u64;
                let mut bucket = std::mem::take(&mut self.levels[0].slots[s]);
                bucket.sort_unstable_by_key(|e| (e.at, e.seq));
                self.ready.extend(bucket.drain(..));
                self.levels[0].slots[s] = bucket; // hand the allocation back
                return;
            }

            // Level 0 is exhausted: cascade the earliest bucket of the
            // lowest occupied higher level down, then rescan. The cascade
            // is depth-adaptive: `level_mask` names the non-empty levels,
            // so the scan visits only those instead of probing all nine.
            let mut cascaded = false;
            let mut probe = u32::from(self.level_mask >> 1);
            while probe != 0 {
                let level = probe.trailing_zeros() as usize + 1;
                probe &= probe - 1;
                let shift = SLOT_BITS * level as u32;
                let cur_at_level = self.cur_tick >> shift;
                let cur_slot = (cur_at_level & SLOT_MASK) as u32;
                let hit = self.levels[level].occupied & above_mask(cur_slot);
                if hit == 0 {
                    continue;
                }
                let s = hit.trailing_zeros() as u64;
                self.levels[level].occupied &= !(1u64 << s);
                if self.levels[level].occupied == 0 {
                    self.level_mask &= !(1u16 << level);
                }
                let mut bucket = std::mem::take(&mut self.levels[level].slots[s as usize]);
                // Jump the cursor to the earliest tick actually present in
                // the bucket, not just its base: everything the wheel still
                // holds is at or after it, and in cohort-heavy workloads
                // (many events at one instant — the busy-wire wake pattern)
                // the entire bucket shares a single tick, so it lands in
                // `ready` in one pass instead of re-hashing into level 0
                // and cascading a second time.
                let base = ((cur_at_level & !SLOT_MASK) | s) << shift;
                debug_assert!(base > self.cur_tick);
                let min_tick = bucket.iter().map(|e| tick_of(e.at)).min().unwrap_or(base);
                debug_assert!(min_tick >= base);
                self.cur_tick = min_tick;
                for entry in bucket.drain(..) {
                    let tick = tick_of(entry.at);
                    if tick == min_tick {
                        self.ready.push_back(entry);
                    } else {
                        self.place_in_wheel(entry, tick);
                    }
                }
                self.levels[level].slots[s as usize] = bucket;
                cascaded = true;
                break;
            }
            if !cascaded {
                // Wheel fully drained; callers only invoke advance() with
                // events pending, but be robust anyway.
                debug_assert_eq!(self.len, self.ready.len());
                return;
            }
            if !self.ready.is_empty() {
                self.ready
                    .make_contiguous()
                    .sort_unstable_by_key(|e| (e.at, e.seq));
                return;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.schedule(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_timestamp_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_ns(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), "a");
        q.pop();
        q.schedule_in(SimDuration::from_ns(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(8), "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn extend_and_counters() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (SimTime::from_ns(i), i)));
        assert_eq!(q.len(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_presizes_ready_lane() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(128);
        assert!(q.capacity() >= 128);
        q.reserve(512);
        assert!(q.capacity() >= 512);
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), ());
        q.pop();
        q.schedule(SimTime::from_ns(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(1));
    }

    #[test]
    fn clear_then_reschedule_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(100), 0u32);
        q.pop();
        q.schedule(SimTime::from_us(500), 1);
        q.clear();
        // The wheel cursor may sit ahead of `now` after clear(); scheduling
        // near `now` must still pop in time order.
        q.schedule(SimTime::from_us(300), 2);
        q.schedule(SimTime::from_us(200), 3);
        q.schedule(SimTime::from_us(200), 4);
        assert_eq!(q.pop(), Some((SimTime::from_us(200), 3)));
        assert_eq!(q.pop(), Some((SimTime::from_us(200), 4)));
        assert_eq!(q.pop(), Some((SimTime::from_us(300), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_cascade_correctly() {
        let mut q = EventQueue::new();
        // Spread events across several wheel levels: ~1 ns, ~1 us, ~1 ms,
        // ~1 s apart, plus the far sentinel-ish range.
        let times = [
            SimTime::from_ns(1),
            SimTime::from_ns(2),
            SimTime::from_us(1),
            SimTime::from_us(999),
            SimTime::from_ps(1_000_000_000_000), // 1 s
            SimTime::from_ps(u64::MAX / 2),      // deep level
            SimTime::from_ps(u64::MAX - 1),      // top of the range
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((at, e)) = q.pop() {
            assert!(at >= last);
            last = at;
            popped.push(e);
        }
        assert_eq!(popped, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn schedule_batch_matches_sequential_schedule() {
        let times: Vec<u64> = vec![30, 10, 20, 10, 900_000, 10, 0, 77, 77];
        let mut seq_q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            seq_q.schedule(SimTime::from_ns(t), i);
        }
        let mut batch_q = EventQueue::new();
        batch_q.schedule_batch(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_ns(t), i)),
        );
        loop {
            let (a, b) = (seq_q.pop(), batch_q.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn schedule_batch_into_empty_queue_advances_once() {
        let mut q = EventQueue::new();
        q.schedule_batch([
            (SimTime::from_us(5), "b"),
            (SimTime::from_us(1), "a"),
            (SimTime::from_us(5), "c"),
        ]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(1)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn keyed_schedule_pops_in_key_order_regardless_of_insertion() {
        // Two insertion orders of the same (at, key) set must pop
        // identically — the shard-count-invariance property.
        let evs = [
            (SimTime::from_ns(5), 7u64, "c"),
            (SimTime::from_ns(5), 3, "b"),
            (SimTime::from_ns(2), 9, "a"),
            (SimTime::from_ns(9), 1, "d"),
        ];
        let mut orders: Vec<Vec<&str>> = Vec::new();
        for perm in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
            let mut q = EventQueue::new();
            for &i in &perm {
                let (at, key, ev) = evs[i];
                q.schedule_keyed(at, key, ev);
            }
            orders.push(std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect());
        }
        assert_eq!(orders[0], vec!["a", "b", "c", "d"]);
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[0], orders[2]);
    }

    #[test]
    fn keyed_schedule_interleaves_with_pop_and_far_future() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_ns(10), 5, "a");
        q.schedule_keyed(SimTime::from_us(10), 1, "e");
        assert_eq!(q.pop().unwrap().1, "a");
        // Same-timestamp keyed inserts arriving out of key order must
        // still pop in key order (they route through the overflow heap).
        q.schedule_keyed(SimTime::from_ns(500), 8, "c");
        q.schedule_keyed(SimTime::from_ns(500), 2, "b");
        q.schedule_keyed(SimTime::from_ns(700), 3, "d");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "e");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_if_at_only_pops_matching_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), "a");
        q.schedule(SimTime::from_ns(5), "b");
        q.schedule(SimTime::from_ns(9), "c");
        assert_eq!(q.pop_if_at(SimTime::from_ns(4)), None);
        assert_eq!(q.pop().unwrap().1, "a");
        // Same-timestamp follow-up drains FIFO; later event is left queued.
        assert_eq!(q.pop_if_at(SimTime::from_ns(5)), Some("b"));
        assert_eq!(q.pop_if_at(SimTime::from_ns(5)), None);
        assert_eq!(q.pop_if_at(SimTime::from_ns(9)), Some("c"));
        assert_eq!(q.pop_if_at(SimTime::from_ns(9)), None);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_to_empty_then_far_schedule_uses_cursor_jump() {
        // Ping-pong pattern: the queue empties between every event, with
        // gaps that span multiple wheel levels — exercises the empty-queue
        // cursor-jump fast path in `schedule`.
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..60u64 {
            t += 1 + (i * i * 977) % 5_000_000;
            q.schedule(SimTime::from_ns(t), i);
            assert_eq!(q.pop(), Some((SimTime::from_ns(t), i)));
            assert!(q.is_empty());
        }
        assert_eq!(q.now(), SimTime::from_ns(t));
    }

    #[test]
    fn interleaved_pop_and_schedule_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_us(10), "d");
        assert_eq!(q.pop().unwrap().1, "a");
        // Scheduling between now and the far event must come out first.
        q.schedule(SimTime::from_ns(500), "b");
        q.schedule(SimTime::from_us(1), "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
    }
}
