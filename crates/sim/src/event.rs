//! A stable timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops events in
/// non-decreasing time order.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled (FIFO tie-breaking via a monotonically increasing sequence
/// number), which keeps multi-component simulations deterministic.
///
/// The queue also tracks the timestamp of the last popped event as the
/// current simulation time ([`EventQueue::now`]); scheduling in the past is
/// a logic error and panics in debug builds.
///
/// # Examples
///
/// ```
/// use rperf_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(SimDuration::from_ns(10), "late");
/// q.schedule_in(SimDuration::from_ns(1), "early");
/// q.schedule_in(SimDuration::from_ns(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.now(), SimTime::from_ns(1));
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (and, within a
        // timestamp, the lowest-sequence) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue whose heap can hold `capacity` events before
    /// reallocating. Simulations schedule and pop millions of events
    /// through a heap that rarely exceeds a few thousand entries; sizing
    /// it once up front keeps reallocation (and the copy of every pending
    /// entry it implies) out of the hot pop/push loop.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Reserves space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The timestamp of the most recently popped event (`t = 0` initially).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `at` is earlier than [`EventQueue::now`]
    /// (scheduling into the past indicates a device-model bug).
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: crate::SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at the current time (processed after all events
    /// already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule(self.now, event);
    }

    /// Removes and returns the earliest event, advancing [`EventQueue::now`].
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Discards all pending events without changing the current time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.schedule(at, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_timestamp_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_ns(5), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(5));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(5), "a");
        q.pop();
        q.schedule_in(SimDuration::from_ns(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_ns(8), "b")));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn extend_and_counters() {
        let mut q = EventQueue::new();
        q.extend((0..5).map(|i| (SimTime::from_ns(i), i)));
        assert_eq!(q.len(), 5);
        while q.pop().is_some() {}
        assert_eq!(q.popped(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_does_not_grow_within_bounds() {
        let mut q = EventQueue::with_capacity(128);
        let cap = q.capacity();
        assert!(cap >= 128);
        for i in 0..128u64 {
            q.schedule(SimTime::from_ns(i), i);
        }
        assert_eq!(q.capacity(), cap, "pre-sized heap must not reallocate");
        q.reserve(512);
        assert!(q.capacity() >= q.len() + 512);
    }

    #[test]
    fn clear_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(1), ());
        q.pop();
        q.schedule(SimTime::from_ns(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(1));
    }
}
