//! Deterministic discrete-event simulation engine for the rperf-rs suite.
//!
//! This crate is the foundation every device model in the workspace is built
//! on. It deliberately contains *no* networking concepts — only:
//!
//! * [`SimTime`] / [`SimDuration`] — integer picosecond time. At 56 Gbps a
//!   single byte serializes in ~143 ps, so nanosecond resolution would alias
//!   serialization boundaries; picoseconds in a `u64` still cover ~213 days
//!   of simulated time.
//! * [`EventQueue`] — a stable priority queue of timestamped events.
//!   Same-timestamp events pop in insertion order, which makes whole-system
//!   runs bit-for-bit reproducible.
//! * [`SimRng`] — a small, fully deterministic PRNG (`xoshiro256**` seeded
//!   through SplitMix64) with the handful of distributions the device models
//!   need. Reproducibility is a core requirement for a measurement tool, so
//!   the suite does not depend on external RNG crates whose streams may
//!   change between versions.
//! * [`World`] / [`run`] — a minimal driver loop with stop conditions.
//!
//! # Examples
//!
//! ```
//! use rperf_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_ns(5), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_ns(2), "a");
//! assert_eq!(q.pop(), Some((SimTime::from_ns(2), "a")));
//! assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod reference;
mod rng;
mod run;
pub mod shard;
mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use run::{run, run_budgeted, RunOutcome, StopCondition, World};
pub use shard::{run_sharded, Lookahead, Mailbox, ShardRunStats, ShardedWorld, SpinBarrier};
pub use time::{SimDuration, SimTime};
