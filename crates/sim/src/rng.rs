//! A small deterministic PRNG for device models.

use crate::SimDuration;

/// A deterministic pseudo-random number generator (`xoshiro256**`).
///
/// The state is seeded through SplitMix64, so any `u64` seed — including 0 —
/// produces a well-mixed stream. Every device model in the suite draws its
/// randomness from a `SimRng` forked off a single experiment seed, which
/// makes entire cluster simulations reproducible bit-for-bit.
///
/// # Examples
///
/// ```
/// use rperf_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let x = a.f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator.
    ///
    /// Each `(parent seed, stream)` pair yields a distinct, reproducible
    /// stream; device models use this to decorrelate their noise sources.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` (Lemire's method, unbiased enough
    /// for simulation noise).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening multiply keeps the modulo bias below 2^-64 per draw,
        // negligible for simulation noise.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed duration with the given mean.
    ///
    /// Used for open-loop (Poisson) arrival processes.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.f64(); // in (0, 1]
        SimDuration::from_ns_f64(-u.ln() * mean.as_ns_f64())
    }

    /// A uniformly distributed duration in `[lo, hi)`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        if hi <= lo {
            return lo;
        }
        SimDuration::from_ps(self.range(lo.as_ps(), hi.as_ps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = SimRng::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.range(100, 110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut r = SimRng::new(6);
        let mean = SimDuration::from_ns(1_000);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| r.exp_duration(mean).as_ns_f64()).sum();
        let observed = total / n as f64;
        assert!(
            (observed - 1_000.0).abs() < 30.0,
            "observed mean {observed} ns too far from 1000 ns"
        );
    }

    #[test]
    fn uniform_duration_bounds() {
        let mut r = SimRng::new(8);
        let lo = SimDuration::from_ns(10);
        let hi = SimDuration::from_ns(20);
        for _ in 0..1_000 {
            let d = r.uniform_duration(lo, hi);
            assert!(d >= lo && d < hi);
        }
        assert_eq!(r.uniform_duration(hi, lo), hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
