//! Property tests for the event engine.

use proptest::prelude::*;
use rperf_sim::{EventQueue, SimDuration, SimRng, SimTime};

proptest! {
    /// Pops are globally sorted by time, and stable (FIFO) within a time.
    #[test]
    fn pops_sorted_and_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ps(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_ps(t));
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time order violated");
                if t == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t, i));
        }
    }

    /// Counting invariant: everything scheduled is popped exactly once.
    #[test]
    fn conservation_of_events(times in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_ps(t), ());
        }
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(q.popped() as usize, times.len());
    }

    /// The RNG is a pure function of its seed.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Uniform range stays in bounds for arbitrary bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, width in 1u64..1_000_000) {
        let mut r = SimRng::new(seed);
        for _ in 0..64 {
            let x = r.range(lo, lo + width);
            prop_assert!((lo..lo + width).contains(&x));
        }
    }

    /// Exponential samples are non-negative and have plausible scale.
    #[test]
    fn rng_exp_positive(seed in any::<u64>(), mean_ns in 1u64..100_000) {
        let mut r = SimRng::new(seed);
        let mean = SimDuration::from_ns(mean_ns);
        for _ in 0..32 {
            let d = r.exp_duration(mean);
            // An Exp sample exceeding 50× the mean has probability e^-50.
            prop_assert!(d < mean * 50 + SimDuration::from_ns(1));
        }
    }

    /// Time arithmetic: (t + d) - t == d for all in-range values.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_ps(t);
        let dur = SimDuration::from_ps(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur).saturating_since(base), dur);
        prop_assert_eq!(base.saturating_since(base + dur), SimDuration::ZERO);
    }
}
