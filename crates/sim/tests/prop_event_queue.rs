//! Differential property tests: the timer-wheel [`EventQueue`] must be
//! observationally identical to the [`HeapEventQueue`] reference oracle for
//! arbitrary interleaved schedule/pop sequences.

use proptest::prelude::*;
use rperf_sim::reference::HeapEventQueue;
use rperf_sim::{EventQueue, SimTime};

/// Replays one interleaved op sequence through both queues and asserts every
/// observable (pop results, peek, now, len, popped counter) matches.
///
/// `ops` encodes the interleaving: each element is a delay in picoseconds to
/// schedule relative to the queue's `now` when even-ish, or a pop when the
/// low bits say so. Delays are always non-negative, so the past-scheduling
/// debug assertion never fires here (that behaviour has its own test below).
fn run_differential(ops: &[(bool, u64)]) -> Result<(), TestCaseError> {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut next_id = 0u64;
    for &(is_pop, delay) in ops {
        if is_pop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(w, h, "pop mismatch");
        } else {
            // Schedule relative to the wheel's own `now` (the heap's `now`
            // is identical — asserted below — so both see the same instant).
            let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(delay));
            wheel.schedule(at, next_id);
            heap.schedule(at, next_id);
            next_id += 1;
        }
        prop_assert_eq!(wheel.now(), heap.now(), "now mismatch");
        prop_assert_eq!(wheel.len(), heap.len(), "len mismatch");
        prop_assert_eq!(wheel.popped(), heap.popped(), "popped mismatch");
        prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek mismatch");
    }
    // Drain both to the end: the full residual order must match too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "drain mismatch");
        if w.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    /// Near-horizon mix: delays within a few wheel buckets, heavy on ties.
    #[test]
    fn wheel_matches_heap_near(ops in prop::collection::vec(
        (any::<bool>(), 0u64..5_000), 1..400))
    {
        run_differential(&ops)?;
    }

    /// Far-horizon mix: delays spanning many cascade levels (ns to ~18 ms),
    /// exercising bucket redistribution on rotation.
    #[test]
    fn wheel_matches_heap_far(ops in prop::collection::vec(
        (any::<bool>(), 0u64..18_000_000_000), 1..200))
    {
        run_differential(&ops)?;
    }

    /// Bimodal mix: mostly same-instant or next-nanosecond events with
    /// occasional huge jumps, the pattern real device models produce.
    #[test]
    fn wheel_matches_heap_bimodal(ops in prop::collection::vec(
        (any::<bool>(), prop::collection::vec(0u64..2, 1..2)), 1..300),
        far in 1_000_000u64..1_000_000_000_000)
    {
        let shaped: Vec<(bool, u64)> = ops
            .iter()
            .enumerate()
            .map(|(i, (is_pop, small))| {
                let delay = if i % 7 == 3 { far } else { small[0] * 800 };
                (*is_pop, delay)
            })
            .collect();
        run_differential(&shaped)?;
    }
}

/// The wheel keeps the heap's past-scheduling contract: debug builds panic.
#[test]
#[should_panic(expected = "scheduled in the past")]
fn wheel_panics_on_past_schedule_like_heap() {
    let mut q: EventQueue<()> = EventQueue::new();
    q.schedule(SimTime::from_ns(10), ());
    q.pop();
    q.schedule(SimTime::from_ns(5), ());
}

/// And so does the oracle itself (documents that both sides enforce it).
#[test]
#[should_panic(expected = "scheduled in the past")]
fn heap_panics_on_past_schedule() {
    let mut q: HeapEventQueue<()> = HeapEventQueue::new();
    q.schedule(SimTime::from_ns(10), ());
    q.pop();
    q.schedule(SimTime::from_ns(5), ());
}
