//! Differential property tests: the timer-wheel [`EventQueue`] must be
//! observationally identical to the [`HeapEventQueue`] reference oracle for
//! arbitrary interleaved schedule/pop sequences.

use proptest::prelude::*;
use rperf_sim::reference::HeapEventQueue;
use rperf_sim::{EventQueue, SimTime};

/// Replays one interleaved op sequence through both queues and asserts every
/// observable (pop results, peek, now, len, popped counter) matches.
///
/// `ops` encodes the interleaving: each element is a delay in picoseconds to
/// schedule relative to the queue's `now` when even-ish, or a pop when the
/// low bits say so. Delays are always non-negative, so the past-scheduling
/// debug assertion never fires here (that behaviour has its own test below).
fn run_differential(ops: &[(bool, u64)]) -> Result<(), TestCaseError> {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut next_id = 0u64;
    for &(is_pop, delay) in ops {
        if is_pop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(w, h, "pop mismatch");
        } else {
            // Schedule relative to the wheel's own `now` (the heap's `now`
            // is identical — asserted below — so both see the same instant).
            let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(delay));
            wheel.schedule(at, next_id);
            heap.schedule(at, next_id);
            next_id += 1;
        }
        prop_assert_eq!(wheel.now(), heap.now(), "now mismatch");
        prop_assert_eq!(wheel.len(), heap.len(), "len mismatch");
        prop_assert_eq!(wheel.popped(), heap.popped(), "popped mismatch");
        prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek mismatch");
    }
    // Drain both to the end: the full residual order must match too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "drain mismatch");
        if w.is_none() {
            break;
        }
    }
    Ok(())
}

/// Replays an op sequence that also exercises the batch-schedule and
/// conditional-pop paths. Each op is `(kind, delay, burst)`:
///
/// - `kind % 3 == 0` — conditional pop: assert [`EventQueue::pop_if_at`] is
///   a no-op for a mismatched timestamp, then pop via the matching one and
///   compare against the oracle's unconditional pop.
/// - `kind % 3 == 1` — single `schedule`, as in [`run_differential`].
/// - `kind % 3 == 2` — adversarial same-timestamp burst: `burst % 17 + 1`
///   events at one instant through `schedule_batch`, mirrored on the oracle
///   as individual schedules. FIFO within the burst must survive.
fn run_differential_batched(ops: &[(u8, u64, u64)]) -> Result<(), TestCaseError> {
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
    let mut next_id = 0u64;
    for &(kind, delay, burst) in ops {
        match kind % 3 {
            0 => {
                if let Some(t) = heap.peek_time() {
                    let wrong = SimTime::from_ps(t.as_ps().wrapping_add(1));
                    prop_assert_eq!(
                        wheel.pop_if_at(wrong),
                        None,
                        "pop_if_at popped on a mismatched time"
                    );
                    let w = wheel.pop_if_at(t);
                    let h = heap.pop().map(|(_, e)| e);
                    prop_assert_eq!(w, h, "pop_if_at mismatch");
                } else {
                    prop_assert_eq!(wheel.pop_if_at(SimTime::from_ps(delay)), None);
                    prop_assert_eq!(wheel.pop(), heap.pop(), "empty pop mismatch");
                }
            }
            1 => {
                let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(delay));
                wheel.schedule(at, next_id);
                heap.schedule(at, next_id);
                next_id += 1;
            }
            _ => {
                let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(delay));
                let n = burst % 17 + 1;
                let base = next_id;
                wheel.schedule_batch((0..n).map(|j| (at, base + j)));
                for j in 0..n {
                    heap.schedule(at, base + j);
                }
                next_id += n;
            }
        }
        prop_assert_eq!(wheel.now(), heap.now(), "now mismatch");
        prop_assert_eq!(wheel.len(), heap.len(), "len mismatch");
        prop_assert_eq!(wheel.peek_time(), heap.peek_time(), "peek mismatch");
    }
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        prop_assert_eq!(w, h, "drain mismatch");
        if w.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    /// Near-horizon mix: delays within a few wheel buckets, heavy on ties.
    #[test]
    fn wheel_matches_heap_near(ops in prop::collection::vec(
        (any::<bool>(), 0u64..5_000), 1..400))
    {
        run_differential(&ops)?;
    }

    /// Far-horizon mix: delays spanning many cascade levels (ns to ~18 ms),
    /// exercising bucket redistribution on rotation.
    #[test]
    fn wheel_matches_heap_far(ops in prop::collection::vec(
        (any::<bool>(), 0u64..18_000_000_000), 1..200))
    {
        run_differential(&ops)?;
    }

    /// Bimodal mix: mostly same-instant or next-nanosecond events with
    /// occasional huge jumps, the pattern real device models produce.
    #[test]
    fn wheel_matches_heap_bimodal(ops in prop::collection::vec(
        (any::<bool>(), prop::collection::vec(0u64..2, 1..2)), 1..300),
        far in 1_000_000u64..1_000_000_000_000)
    {
        let shaped: Vec<(bool, u64)> = ops
            .iter()
            .enumerate()
            .map(|(i, (is_pop, small))| {
                let delay = if i % 7 == 3 { far } else { small[0] * 800 };
                (*is_pop, delay)
            })
            .collect();
        run_differential(&shaped)?;
    }

    /// Batch-schedule and conditional-pop paths, near horizon: heavy on
    /// same-timestamp bursts landing in the ready lane and overflow heap.
    #[test]
    fn wheel_matches_heap_batched_near(ops in prop::collection::vec(
        (0u8..6, 0u64..5_000, 0u64..40), 1..300))
    {
        run_differential_batched(&ops)?;
    }

    /// Batch-schedule and conditional-pop paths, far horizon: bursts hash
    /// into deep wheel levels and cascade back down on rotation.
    #[test]
    fn wheel_matches_heap_batched_far(ops in prop::collection::vec(
        (0u8..6, 0u64..18_000_000_000, 0u64..40), 1..150))
    {
        run_differential_batched(&ops)?;
    }

    /// Empty-window skips: every round drains the queue to empty, then the
    /// next round jumps far into the future. The schedule-into-empty
    /// cursor-jump fast path and the depth-adaptive cascade fire on every
    /// round, and both sides must agree after each skip.
    #[test]
    fn wheel_matches_heap_empty_window_skips(rounds in prop::collection::vec(
        (1u64..8, 1_000u64..1_000_000_000_000), 1..40))
    {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut next_id = 0u64;
        for &(burst, jump) in &rounds {
            let at = SimTime::from_ps(wheel.now().as_ps().saturating_add(jump));
            wheel.schedule_batch((0..burst).map(|j| (at, next_id + j)));
            for j in 0..burst {
                heap.schedule(at, next_id + j);
            }
            next_id += burst;
            for _ in 0..burst {
                prop_assert_eq!(wheel.pop(), heap.pop(), "skip-round pop mismatch");
            }
            prop_assert!(wheel.is_empty(), "wheel not drained after round");
            prop_assert_eq!(wheel.now(), heap.now(), "now mismatch after round");
        }
    }
}

/// The wheel keeps the heap's past-scheduling contract: debug builds panic.
#[test]
#[should_panic(expected = "scheduled in the past")]
fn wheel_panics_on_past_schedule_like_heap() {
    let mut q: EventQueue<()> = EventQueue::new();
    q.schedule(SimTime::from_ns(10), ());
    q.pop();
    q.schedule(SimTime::from_ns(5), ());
}

/// And so does the oracle itself (documents that both sides enforce it).
#[test]
#[should_panic(expected = "scheduled in the past")]
fn heap_panics_on_past_schedule() {
    let mut q: HeapEventQueue<()> = HeapEventQueue::new();
    q.schedule(SimTime::from_ns(10), ());
    q.pop();
    q.schedule(SimTime::from_ns(5), ());
}
