//! End-to-end property tests: payload conservation, ordering and
//! determinism across the assembled fabric.

use std::any::Any;

use proptest::prelude::*;
use rperf_fabric::{App, Ctx, Fabric, Sim};
use rperf_model::{ClusterConfig, QpNum, Transport, Verb};
use rperf_sim::SimTime;
use rperf_verbs::{Cqe, CqeOpcode, RecvWr, SendWr, WrId};

/// Sends a fixed script of messages, recording completions.
struct ScriptedSender {
    target: usize,
    payloads: Vec<u64>,
    sent_bytes: u64,
    completions: Vec<(u64, SimTime)>,
    qp: Option<QpNum>,
}

impl App for ScriptedSender {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let qp = ctx.create_qp(Transport::Rc);
        self.qp = Some(qp);
        let wrs: Vec<SendWr> = self
            .payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                self.sent_bytes += p;
                SendWr::new(WrId(i as u64), Verb::Send, p)
                    .to(ctx.lid_of(self.target), QpNum::new(1))
            })
            .collect();
        ctx.post_send_batch(qp, wrs).unwrap();
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode == CqeOpcode::Send {
            self.completions.push((cqe.wr_id.0, ctx.now()));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Collects deliveries.
struct Collector {
    recvs: Vec<(u64, SimTime)>,
    bytes: u64,
}

impl App for Collector {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let qp = ctx.create_qp(Transport::Rc);
        for i in 0..8192 {
            ctx.post_recv(qp, RecvWr::new(WrId(i), 1 << 22));
        }
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode == CqeOpcode::Recv {
            self.recvs.push((cqe.bytes, ctx.now()));
            self.bytes += cqe.bytes;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

type Stamped = Vec<(u64, SimTime)>;

/// Returns (send completions, delivered bytes, deliveries).
fn run_script(payloads: Vec<u64>, through_switch: bool, seed: u64) -> (Stamped, u64, Stamped) {
    let cfg = ClusterConfig::hardware();
    let fabric = if through_switch {
        Fabric::single_switch(cfg, 2, seed)
    } else {
        Fabric::direct_pair(cfg, seed)
    };
    let mut sim = Sim::new(fabric);
    sim.add_app(
        0,
        Box::new(ScriptedSender {
            target: 1,
            payloads,
            sent_bytes: 0,
            completions: Vec::new(),
            qp: None,
        }),
    );
    sim.add_app(
        1,
        Box::new(Collector {
            recvs: Vec::new(),
            bytes: 0,
        }),
    );
    sim.start();
    sim.run_to_quiescence();
    let sender = sim.app_as::<ScriptedSender>(0);
    let sink = sim.app_as::<Collector>(1);
    (sender.completions.clone(), sink.bytes, sink.recvs.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Payload conservation: every byte posted is delivered exactly once,
    /// every message completes, through the switch or back-to-back.
    #[test]
    fn bytes_conserved_end_to_end(
        payloads in prop::collection::vec(1u64..20_000, 1..60),
        through_switch in any::<bool>(),
    ) {
        let total: u64 = payloads.iter().sum();
        let n = payloads.len();
        let (completions, delivered, recvs) = run_script(payloads, through_switch, 11);
        prop_assert_eq!(completions.len(), n, "every send completes");
        prop_assert_eq!(recvs.len(), n, "every message delivers");
        prop_assert_eq!(delivered, total, "byte conservation");
    }

    /// Same-QP ordering: RC completions and deliveries arrive in posted
    /// order (IB's in-order guarantee on a connection).
    #[test]
    fn in_order_delivery(payloads in prop::collection::vec(1u64..10_000, 2..40)) {
        let expected: Vec<u64> = payloads.clone();
        let (completions, _, recvs) = run_script(payloads, true, 13);
        let wr_order: Vec<u64> = completions.iter().map(|&(id, _)| id).collect();
        let sorted: Vec<u64> = (0..wr_order.len() as u64).collect();
        prop_assert_eq!(wr_order, sorted, "completions in posted order");
        let recv_sizes: Vec<u64> = recvs.iter().map(|&(b, _)| b).collect();
        prop_assert_eq!(recv_sizes, expected, "deliveries in posted order");
    }

    /// Determinism: identical seeds give identical event timings.
    #[test]
    fn deterministic_timings(payloads in prop::collection::vec(1u64..10_000, 1..20)) {
        let a = run_script(payloads.clone(), true, 17);
        let b = run_script(payloads, true, 17);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.2, b.2);
    }
}
