//! Fabric assembly: links, topologies and the event world that wires
//! hosts, RNICs and switches into a running cluster.
//!
//! The paper's three experimental platforms are expressed as topology
//! constructors:
//!
//! * [`Fabric::direct_pair`] — two RNICs cabled back-to-back (the
//!   "without switch" baseline of Section VI-A).
//! * [`Fabric::single_switch`] — the rack: up to 12 hosts behind one ToR
//!   switch (Sections VI–VIII).
//! * [`Fabric::two_switch`] — the multi-hop topology of Section VIII-B:
//!   two switches in series with hosts on both.
//!
//! ## Event semantics
//!
//! * Packet delivery **to a switch** fires when the *first* bit arrives
//!   (cut-through forwarding; the SX6012 is a cut-through switch and the
//!   paper's latency deltas — roughly constant across payload sizes — are
//!   only consistent with cut-through).
//! * Packet delivery **to an RNIC** fires when the *last* bit arrives (the
//!   payload cannot DMA before it exists).
//! * Credit returns travel against the data direction at propagation
//!   delay.
//!
//! Applications implement [`App`] and interact with the fabric through
//! [`Ctx`]: posting verbs, reading their host's TSC, setting timers. The
//! measurement tools in `rperf` (core crate) are `App`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "sim-prof")]
pub mod prof;
mod shard;
mod topology;
mod trace;
mod world;

pub use shard::{partition_devices, ShardExecStats, ShardedSim};
pub use topology::{Endpoint, Fabric, FabricBuilder, Topology};
pub use trace::{TraceEvent, TraceRecord, Tracer};
pub use world::{
    events_processed_total, packets_leaked_total, slab_high_water_total, App, Ctx, FabricEvent, Sim,
};
