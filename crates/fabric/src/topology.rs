//! Fabric construction and device wiring.

use std::sync::Arc;

use rperf_host::TscClock;
use rperf_model::arena::PacketSlab;
use rperf_model::config::RnicConfig;
use rperf_model::{ClusterConfig, Lid, NodeId, PortId};
use rperf_rnic::Rnic;
use rperf_sim::SimRng;
use rperf_subnet::{plan, FatTreeParams, TopologySpec};
use rperf_switch::{CreditLedger, Switch};

/// A topology selector covering every fabric shape the suite builds,
/// unifying the dedicated constructors and the planned multi-switch path
/// behind one entry point ([`FabricBuilder::build`]).
///
/// The dedicated variants keep their historical RNG fork constants
/// (`single_switch` forks at 999, `two_switch` at 998/997, planned specs
/// at 900 + index), so a scenario expressed through [`Topology`] is
/// bit-identical to one built through the matching constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Two hosts cabled back-to-back (no switch).
    DirectPair,
    /// `hosts` hosts behind a single ToR switch.
    SingleSwitch {
        /// Number of hosts on the switch.
        hosts: usize,
    },
    /// Two switches in series (the paper's multi-hop setup).
    TwoSwitch {
        /// Hosts on switch 0.
        upstream: usize,
        /// Hosts on switch 1.
        downstream: usize,
    },
    /// An arbitrary planned topology (chains, stars, custom graphs).
    Spec(TopologySpec),
    /// A parameterized Clos / fat-tree fabric (2-tier leaf–spine or
    /// 3-tier pods + core), planned like [`Topology::Spec`] but with the
    /// switch port budget raised to the tree's radix when the configured
    /// budget is smaller.
    FatTree(FatTreeParams),
}

impl Topology {
    /// Number of hosts the topology wires up.
    pub fn hosts(&self) -> usize {
        match self {
            Topology::DirectPair => 2,
            Topology::SingleSwitch { hosts } => *hosts,
            Topology::TwoSwitch {
                upstream,
                downstream,
            } => upstream + downstream,
            Topology::Spec(spec) => spec.hosts(),
            Topology::FatTree(ft) => ft.hosts(),
        }
    }

    /// Number of switches in the topology.
    pub fn switches(&self) -> usize {
        match self {
            Topology::DirectPair => 0,
            Topology::SingleSwitch { .. } => 1,
            Topology::TwoSwitch { .. } => 2,
            Topology::Spec(spec) => spec.switches(),
            Topology::FatTree(ft) => ft.switches(),
        }
    }
}

/// What sits on the other end of a cable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// An RNIC port (by node index).
    Rnic(usize),
    /// A switch port.
    SwitchPort(usize, PortId),
}

/// The assembled cluster: devices plus cabling.
///
/// The cluster configuration is held in an [`Arc`] shared with every
/// device (nodes and switches reference the same allocation rather than
/// each owning a clone). All in-flight packets live in the fabric's
/// [`PacketSlab`]; devices exchange copyable handles.
///
/// Use the constructors ([`Fabric::direct_pair`], [`Fabric::single_switch`],
/// [`Fabric::two_switch`]) or [`FabricBuilder`] for per-node overrides.
#[derive(Debug)]
pub struct Fabric {
    pub(crate) cfg: Arc<ClusterConfig>,
    pub(crate) rnics: Vec<Rnic>,
    pub(crate) clocks: Vec<TscClock>,
    pub(crate) switches: Vec<Switch>,
    /// Every in-flight packet in the fabric.
    pub(crate) slab: PacketSlab,
    /// Peer of each RNIC's single port.
    pub(crate) rnic_peer: Vec<Endpoint>,
    /// Peer of each switch port (`None` = unconnected).
    pub(crate) switch_peer: Vec<Vec<Option<Endpoint>>>,
}

impl Fabric {
    /// Two hosts cabled back-to-back (no switch).
    pub fn direct_pair(cfg: ClusterConfig, seed: u64) -> Fabric {
        FabricBuilder::new(cfg, seed).direct_pair()
    }

    /// `nodes` hosts behind a single ToR switch.
    ///
    /// Node `i` attaches to switch port `i` and owns LID `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds the switch port count.
    pub fn single_switch(cfg: ClusterConfig, nodes: usize, seed: u64) -> Fabric {
        FabricBuilder::new(cfg, seed).single_switch(nodes)
    }

    /// Builds a fabric for an arbitrary planned topology (chains, stars,
    /// custom graphs) with default device configurations.
    pub fn from_spec(cfg: ClusterConfig, spec: &TopologySpec, seed: u64) -> Fabric {
        FabricBuilder::new(cfg, seed).from_spec(spec)
    }

    /// Two switches in series: `upstream` hosts on switch 0, `downstream`
    /// hosts on switch 1, joined by one inter-switch cable (the paper's
    /// Section VIII-B multi-hop topology).
    ///
    /// Nodes `0..upstream` sit on switch 0; nodes `upstream..upstream +
    /// downstream` on switch 1. The last port of each switch carries the
    /// inter-switch link.
    ///
    /// # Panics
    ///
    /// Panics if either side exceeds `ports - 1` hosts.
    pub fn two_switch(cfg: ClusterConfig, upstream: usize, downstream: usize, seed: u64) -> Fabric {
        FabricBuilder::new(cfg, seed).two_switch(upstream, downstream)
    }

    /// Number of hosts.
    pub fn nodes(&self) -> usize {
        self.rnics.len()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The packet arena holding every in-flight packet.
    pub fn slab(&self) -> &PacketSlab {
        &self.slab
    }

    /// The LID of a node.
    pub fn lid_of(&self, node: usize) -> Lid {
        self.rnics[node].lid()
    }

    /// The host clock of a node.
    pub fn clock(&self, node: usize) -> &TscClock {
        &self.clocks[node]
    }

    /// The RNIC of a node.
    pub fn rnic(&self, node: usize) -> &Rnic {
        &self.rnics[node]
    }

    /// Mutable access to the RNIC of a node.
    pub fn rnic_mut(&mut self, node: usize) -> &mut Rnic {
        &mut self.rnics[node]
    }

    /// The switches.
    pub fn switch(&self, idx: usize) -> &Switch {
        &self.switches[idx]
    }

    /// Number of switches.
    pub fn switches_len(&self) -> usize {
        self.switches.len()
    }
}

/// Builds fabrics with optional per-node RNIC configuration overrides
/// (used by the pretend-LSG experiments, where the adversary runs a more
/// aggressive posting engine).
#[derive(Debug)]
pub struct FabricBuilder {
    cfg: ClusterConfig,
    seed: u64,
    rnic_overrides: Vec<(usize, RnicConfig)>,
}

impl FabricBuilder {
    /// Starts a builder from a cluster configuration and an experiment
    /// seed.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid cluster configuration");
        FabricBuilder {
            cfg,
            seed,
            rnic_overrides: Vec::new(),
        }
    }

    /// Overrides the RNIC configuration of one node.
    pub fn with_rnic_override(mut self, node: usize, rnic: RnicConfig) -> Self {
        self.rnic_overrides.push((node, rnic));
        self
    }

    fn rnic_cfg_for(&self, node: usize, shared: &Arc<RnicConfig>) -> Arc<RnicConfig> {
        self.rnic_overrides
            .iter()
            .rev()
            .find(|(n, _)| *n == node)
            .map(|(_, c)| Arc::new(c.clone()))
            .unwrap_or_else(|| Arc::clone(shared))
    }

    fn make_nodes(&self, count: usize, rng: &mut SimRng) -> (Vec<Rnic>, Vec<TscClock>) {
        // All non-overridden nodes share one config allocation.
        let shared = Arc::new(self.cfg.rnic.clone());
        let mut rnics = Vec::with_capacity(count);
        let mut clocks = Vec::with_capacity(count);
        for i in 0..count {
            let cfg = self.rnic_cfg_for(i, &shared);
            rnics.push(Rnic::new(
                NodeId::new(i as u16),
                Lid::new(i as u16 + 1),
                cfg,
                &self.cfg.link,
                rng.fork(100 + i as u64),
            ));
            clocks.push(
                TscClock::new(self.cfg.host.tsc_ghz, rng.fork(200 + i as u64).next_u64())
                    .with_read_cost(self.cfg.host.tsc_read),
            );
        }
        (rnics, clocks)
    }

    /// One switch-config allocation shared by every switch in the fabric.
    fn switch_cfg(&self) -> Arc<rperf_model::config::SwitchConfig> {
        Arc::new(self.cfg.switch.clone())
    }

    /// Builds the fabric for any [`Topology`], dispatching to the
    /// matching constructor (and therefore to its RNG fork constants).
    pub fn build(self, topo: &Topology) -> Fabric {
        match topo {
            Topology::DirectPair => self.direct_pair(),
            Topology::SingleSwitch { hosts } => self.single_switch(*hosts),
            Topology::TwoSwitch {
                upstream,
                downstream,
            } => self.two_switch(*upstream, *downstream),
            Topology::Spec(spec) => self.from_spec(spec),
            Topology::FatTree(ft) => self.fattree(ft),
        }
    }

    /// Builds a parameterized fat-tree: generates the switch graph and
    /// plans it like any other spec, but first raises the per-switch port
    /// budget to the tree's radix if the configured budget is smaller
    /// (a k = 8 leaf–spine needs 16-port spines where the paper's
    /// hardware profile models a 12-port SX6012).
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`FatTreeParams::validate`] or the
    /// radix exceeds the `u8` port-number space.
    pub fn fattree(mut self, ft: &FatTreeParams) -> Fabric {
        let checked = ft.validate();
        assert!(
            checked.is_ok(),
            "invalid fat-tree parameters: {}",
            checked.unwrap_err()
        );
        assert!(
            ft.radix() <= u8::MAX as usize,
            "fat-tree radix {} exceeds 255 ports",
            ft.radix()
        );
        self.cfg.switch.ports = self.cfg.switch.ports.max(ft.radix() as u8);
        self.from_spec(&ft.spec())
    }

    /// Builds the back-to-back two-host fabric.
    pub fn direct_pair(self) -> Fabric {
        let mut rng = SimRng::new(self.seed);
        let (mut rnics, clocks) = self.make_nodes(2, &mut rng);
        // Each RNIC holds credits for the peer's receive buffer.
        let grant0 = rnics[1].advertised_credits();
        let grant1 = rnics[0].advertised_credits();
        rnics[0].set_peer_credits(grant0);
        rnics[1].set_peer_credits(grant1);
        Fabric {
            cfg: Arc::new(self.cfg),
            rnics,
            clocks,
            switches: Vec::new(),
            slab: PacketSlab::new(),
            rnic_peer: vec![Endpoint::Rnic(1), Endpoint::Rnic(0)],
            switch_peer: Vec::new(),
        }
    }

    /// Builds the single-switch rack.
    pub fn single_switch(self, nodes: usize) -> Fabric {
        assert!(
            nodes <= self.cfg.switch.ports as usize,
            "{} nodes exceed the {}-port switch",
            nodes,
            self.cfg.switch.ports
        );
        let mut rng = SimRng::new(self.seed);
        let (mut rnics, clocks) = self.make_nodes(nodes, &mut rng);
        let mut sw = Switch::new(self.switch_cfg(), self.cfg.link.data_rate(), rng.fork(999));
        let mut switch_ports = vec![None; self.cfg.switch.ports as usize];
        for (i, rnic) in rnics.iter_mut().enumerate() {
            let port = PortId::new(i as u8);
            sw.set_route(rnic.lid(), port);
            sw.set_downstream_credits(port, rnic.advertised_credits());
            rnic.set_peer_credits(CreditLedger::new(
                self.cfg.switch.vls,
                self.cfg.switch.input_buffer_bytes,
            ));
            switch_ports[i] = Some(Endpoint::Rnic(i));
        }
        Fabric {
            rnic_peer: (0..nodes)
                .map(|i| Endpoint::SwitchPort(0, PortId::new(i as u8)))
                .collect(),
            cfg: Arc::new(self.cfg),
            rnics,
            clocks,
            switches: vec![sw],
            slab: PacketSlab::new(),
            switch_peer: vec![switch_ports],
        }
    }

    /// Builds a fabric for an arbitrary multi-switch topology, using the
    /// subnet planner for LID assignment, port allocation and
    /// shortest-path forwarding — the general form of the constructors
    /// above.
    ///
    /// # Panics
    ///
    /// Panics if the topology cannot be planned against the configured
    /// switch port budget (see `rperf_subnet::SubnetError`).
    pub fn from_spec(self, spec: &TopologySpec) -> Fabric {
        let subnet = plan(spec, self.cfg.switch.ports)
            .unwrap_or_else(|e| panic!("unplannable topology: {e}"));
        let mut rng = SimRng::new(self.seed);
        let (mut rnics, clocks) = self.make_nodes(spec.hosts(), &mut rng);
        let ports = self.cfg.switch.ports as usize;
        let vls = self.cfg.switch.vls;
        let buffer = self.cfg.switch.input_buffer_bytes;

        let sw_cfg = self.switch_cfg();
        let mut switches: Vec<Switch> = (0..spec.switches())
            .map(|i| {
                Switch::new(
                    Arc::clone(&sw_cfg),
                    self.cfg.link.data_rate(),
                    rng.fork(900 + i as u64),
                )
            })
            .collect();
        let mut switch_peer: Vec<Vec<Option<Endpoint>>> = vec![vec![None; ports]; spec.switches()];
        let mut rnic_peer = Vec::with_capacity(spec.hosts());

        // Program forwarding tables.
        for (sw_idx, table) in subnet.routes.iter().enumerate() {
            for &(lid, port) in table {
                switches[sw_idx].set_route(lid, port);
            }
        }
        // Wire hosts.
        for (host, &(sw, port)) in subnet.host_ports.iter().enumerate() {
            switches[sw].set_downstream_credits(port, rnics[host].advertised_credits());
            rnics[host].set_peer_credits(CreditLedger::new(vls, buffer));
            switch_peer[sw][port.index()] = Some(Endpoint::Rnic(host));
            rnic_peer.push(Endpoint::SwitchPort(sw, port));
        }
        // Wire trunks.
        for &((a, pa), (b, pb)) in &subnet.trunk_ports {
            switches[a].set_downstream_credits(pa, CreditLedger::new(vls, buffer));
            switches[b].set_downstream_credits(pb, CreditLedger::new(vls, buffer));
            switch_peer[a][pa.index()] = Some(Endpoint::SwitchPort(b, pb));
            switch_peer[b][pb.index()] = Some(Endpoint::SwitchPort(a, pa));
        }

        Fabric {
            cfg: Arc::new(self.cfg),
            rnics,
            clocks,
            switches,
            slab: PacketSlab::new(),
            rnic_peer,
            switch_peer,
        }
    }

    /// Builds the two-switch multi-hop topology.
    pub fn two_switch(self, upstream: usize, downstream: usize) -> Fabric {
        let ports = self.cfg.switch.ports as usize;
        assert!(upstream < ports, "too many upstream hosts");
        assert!(downstream < ports, "too many downstream hosts");
        let trunk = PortId::new(self.cfg.switch.ports - 1);

        let mut rng = SimRng::new(self.seed);
        let total = upstream + downstream;
        let (mut rnics, clocks) = self.make_nodes(total, &mut rng);
        let sw_cfg = self.switch_cfg();
        let mut sw0 = Switch::new(
            Arc::clone(&sw_cfg),
            self.cfg.link.data_rate(),
            rng.fork(998),
        );
        let mut sw1 = Switch::new(sw_cfg, self.cfg.link.data_rate(), rng.fork(997));
        let mut ports0 = vec![None; ports];
        let mut ports1 = vec![None; ports];
        let mut rnic_peer = Vec::with_capacity(total);

        for (i, rnic) in rnics.iter_mut().enumerate() {
            let (sw, sw_idx, port_list, port) = if i < upstream {
                (&mut sw0, 0usize, &mut ports0, PortId::new(i as u8))
            } else {
                (
                    &mut sw1,
                    1usize,
                    &mut ports1,
                    PortId::new((i - upstream) as u8),
                )
            };
            sw.set_route(rnic.lid(), port);
            sw.set_downstream_credits(port, rnic.advertised_credits());
            rnic.set_peer_credits(CreditLedger::new(
                self.cfg.switch.vls,
                self.cfg.switch.input_buffer_bytes,
            ));
            port_list[port.index()] = Some(Endpoint::Rnic(i));
            rnic_peer.push(Endpoint::SwitchPort(sw_idx, port));
        }

        // Remote LIDs route over the trunk; each switch grants the other
        // one input buffer per VL.
        for i in 0..total {
            let lid = Lid::new(i as u16 + 1);
            if i < upstream {
                sw1.set_route(lid, trunk);
            } else {
                sw0.set_route(lid, trunk);
            }
        }
        let grant = CreditLedger::new(self.cfg.switch.vls, self.cfg.switch.input_buffer_bytes);
        sw0.set_downstream_credits(trunk, grant.clone());
        sw1.set_downstream_credits(trunk, grant);
        ports0[trunk.index()] = Some(Endpoint::SwitchPort(1, trunk));
        ports1[trunk.index()] = Some(Endpoint::SwitchPort(0, trunk));

        Fabric {
            cfg: Arc::new(self.cfg),
            rnics,
            clocks,
            switches: vec![sw0, sw1],
            slab: PacketSlab::new(),
            rnic_peer,
            switch_peer: vec![ports0, ports1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::VirtualLane;

    #[test]
    fn direct_pair_wiring() {
        let f = Fabric::direct_pair(ClusterConfig::hardware(), 1);
        assert_eq!(f.nodes(), 2);
        assert_eq!(f.switches_len(), 0);
        assert_eq!(f.rnic_peer[0], Endpoint::Rnic(1));
        assert_eq!(f.rnic_peer[1], Endpoint::Rnic(0));
        assert_eq!(f.lid_of(0), Lid::new(1));
        assert_eq!(f.lid_of(1), Lid::new(2));
    }

    #[test]
    fn single_switch_wiring() {
        let f = Fabric::single_switch(ClusterConfig::hardware(), 7, 1);
        assert_eq!(f.nodes(), 7);
        assert_eq!(f.switches_len(), 1);
        for i in 0..7 {
            assert_eq!(
                f.rnic_peer[i],
                Endpoint::SwitchPort(0, PortId::new(i as u8))
            );
            assert_eq!(f.switch_peer[0][i], Some(Endpoint::Rnic(i)));
        }
        assert_eq!(f.switch_peer[0][7], None);
    }

    #[test]
    fn two_switch_wiring_routes_over_trunk() {
        let f = Fabric::two_switch(ClusterConfig::hardware(), 3, 4, 1);
        assert_eq!(f.nodes(), 7);
        assert_eq!(f.switches_len(), 2);
        let trunk = PortId::new(11);
        assert_eq!(
            f.switch_peer[0][trunk.index()],
            Some(Endpoint::SwitchPort(1, trunk))
        );
        assert_eq!(
            f.switch_peer[1][trunk.index()],
            Some(Endpoint::SwitchPort(0, trunk))
        );
        // Upstream node 0 is local to switch 0, remote to switch 1.
        assert_eq!(f.rnic_peer[0], Endpoint::SwitchPort(0, PortId::new(0)));
        // Downstream node 3 attaches to switch 1 port 0.
        assert_eq!(f.rnic_peer[3], Endpoint::SwitchPort(1, PortId::new(0)));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_nodes_rejected() {
        let _ = Fabric::single_switch(ClusterConfig::hardware(), 13, 1);
    }

    #[test]
    fn rnic_override_applies() {
        let mut cfg = ClusterConfig::hardware();
        cfg.rnic.mtu = 4096;
        let mut special = cfg.rnic.clone();
        special.wqe_engine = rperf_sim::SimDuration::from_ns(70);
        let f = FabricBuilder::new(cfg, 1)
            .with_rnic_override(2, special.clone())
            .single_switch(4);
        assert_eq!(f.rnic(2).config().wqe_engine, special.wqe_engine);
        assert_ne!(f.rnic(1).config().wqe_engine, special.wqe_engine);
    }

    #[test]
    fn non_overridden_nodes_share_one_config_allocation() {
        let f = Fabric::single_switch(ClusterConfig::hardware(), 4, 1);
        let base = f.rnic(0).config() as *const RnicConfig;
        for i in 1..4 {
            assert_eq!(
                f.rnic(i).config() as *const RnicConfig,
                base,
                "node {i} should share the config Arc"
            );
        }
    }

    #[test]
    fn clocks_have_distinct_offsets() {
        let f = Fabric::single_switch(ClusterConfig::hardware(), 3, 7);
        let t = rperf_sim::SimTime::from_us(1);
        let a = f.clock(0).read(t);
        let b = f.clock(1).read(t);
        assert_ne!(a, b, "per-host TSC epochs must differ");
    }

    #[test]
    fn deterministic_construction() {
        let a = Fabric::single_switch(ClusterConfig::hardware(), 5, 42);
        let b = Fabric::single_switch(ClusterConfig::hardware(), 5, 42);
        let t = rperf_sim::SimTime::from_us(3);
        for i in 0..5 {
            assert_eq!(a.clock(i).read(t), b.clock(i).read(t));
        }
    }

    #[test]
    fn switch_knows_rnic_credit_grants() {
        let f = Fabric::single_switch(ClusterConfig::hardware(), 2, 1);
        // The switch's credits toward node 0 equal the RNIC's advertisement.
        let adv = f.rnic(0).advertised_credits();
        assert_eq!(
            adv.available(VirtualLane::new(0)),
            f.config().rnic.rx_buffer_bytes
        );
    }
}

#[cfg(test)]
mod spec_tests {
    use super::*;
    use rperf_subnet::TopologySpec;

    #[test]
    fn from_spec_reproduces_the_two_switch_wiring() {
        let cfg = ClusterConfig::hardware();
        let spec = TopologySpec::chain(2, &[3, 4]);
        let f = Fabric::from_spec(cfg, &spec, 1);
        assert_eq!(f.nodes(), 7);
        assert_eq!(f.switches_len(), 2);
        // Hosts take the low ports; trunks follow.
        assert_eq!(f.rnic_peer[0], Endpoint::SwitchPort(0, PortId::new(0)));
        assert_eq!(f.rnic_peer[3], Endpoint::SwitchPort(1, PortId::new(0)));
        assert_eq!(
            f.switch_peer[0][3],
            Some(Endpoint::SwitchPort(1, PortId::new(4)))
        );
    }

    #[test]
    fn from_spec_builds_chains_and_stars() {
        let cfg = ClusterConfig::hardware();
        let chain = Fabric::from_spec(cfg.clone(), &TopologySpec::chain(4, &[1, 0, 0, 1]), 1);
        assert_eq!(chain.nodes(), 2);
        assert_eq!(chain.switches_len(), 4);
        let star = Fabric::from_spec(cfg, &TopologySpec::star(3, 2), 1);
        assert_eq!(star.nodes(), 6);
        assert_eq!(star.switches_len(), 4);
    }

    #[test]
    fn build_matches_the_dedicated_constructors() {
        let cfg = ClusterConfig::hardware;
        let t = rperf_sim::SimTime::from_us(5);
        let same = |a: &Fabric, b: &Fabric| {
            assert_eq!(a.nodes(), b.nodes());
            assert_eq!(a.switches_len(), b.switches_len());
            for i in 0..a.nodes() {
                assert_eq!(a.clock(i).read(t), b.clock(i).read(t));
            }
        };
        same(
            &FabricBuilder::new(cfg(), 7).build(&Topology::DirectPair),
            &Fabric::direct_pair(cfg(), 7),
        );
        same(
            &FabricBuilder::new(cfg(), 7).build(&Topology::SingleSwitch { hosts: 5 }),
            &Fabric::single_switch(cfg(), 5, 7),
        );
        same(
            &FabricBuilder::new(cfg(), 7).build(&Topology::TwoSwitch {
                upstream: 3,
                downstream: 4,
            }),
            &Fabric::two_switch(cfg(), 3, 4, 7),
        );
        same(
            &FabricBuilder::new(cfg(), 7).build(&Topology::Spec(TopologySpec::chain(2, &[1, 1]))),
            &Fabric::from_spec(cfg(), &TopologySpec::chain(2, &[1, 1]), 7),
        );
    }

    #[test]
    fn fattree_raises_the_port_budget_to_the_radix() {
        use rperf_subnet::FatTreeParams;
        // 128 hosts over 16 leaves + 4 spines; the 16-port spines exceed
        // the hardware profile's 12-port switch, so the builder bumps the
        // budget.
        let ft = FatTreeParams::new(8, 2, 2);
        let f = FabricBuilder::new(ClusterConfig::hardware(), 1).build(&Topology::FatTree(ft));
        assert_eq!(f.nodes(), 128);
        assert_eq!(f.switches_len(), 20);
        assert_eq!(f.config().switch.ports, 16);
        // Every switch can forward to every host.
        for sw in 0..f.switches_len() {
            assert_eq!(f.switch(sw).forwarding().len(), 128);
        }
    }

    #[test]
    fn fattree_three_tier_builds_end_to_end() {
        use rperf_subnet::FatTreeParams;
        let ft = FatTreeParams::new(4, 3, 1);
        let topo = Topology::FatTree(ft);
        assert_eq!(topo.hosts(), 16);
        assert_eq!(topo.switches(), 20);
        let f = FabricBuilder::new(ClusterConfig::hardware(), 1).build(&topo);
        assert_eq!(f.nodes(), 16);
        // The 12-port profile already covers a radix-4 tree: no bump.
        assert_eq!(f.config().switch.ports, 12);
        // Hosts 0 and 1 share edge switch 0; host 15 is cross-pod.
        assert_eq!(f.rnic_peer[0], Endpoint::SwitchPort(0, PortId::new(0)));
        assert_eq!(f.rnic_peer[1], Endpoint::SwitchPort(0, PortId::new(1)));
        assert_eq!(f.rnic_peer[15], Endpoint::SwitchPort(7, PortId::new(1)));
    }

    #[test]
    #[should_panic(expected = "invalid fat-tree parameters")]
    fn fattree_rejects_odd_k() {
        use rperf_subnet::FatTreeParams;
        let _ = FabricBuilder::new(ClusterConfig::hardware(), 1)
            .build(&Topology::FatTree(FatTreeParams::new(5, 2, 1)));
    }

    #[test]
    #[should_panic(expected = "unplannable")]
    fn from_spec_rejects_overloaded_switches() {
        let _ = Fabric::from_spec(
            ClusterConfig::hardware(),
            &TopologySpec::single_switch(20),
            1,
        );
    }
}
