//! Feature-gated (`sim-prof`) event-dispatch profiling.
//!
//! Process-wide per-event-kind counters: how many events of each
//! [`FabricEvent`] kind the dispatch loop handled and how many wall-clock
//! nanoseconds were spent inside their handlers. The relaxed atomic adds
//! commute, so totals are deterministic for a fixed workload even under
//! the parallel runner (the *cycle* attribution is wall-clock and
//! machine-dependent — it never feeds the perf gate, only the optional
//! `BENCH_prof.json` sidecar).
//!
//! The whole module compiles away without the `sim-prof` feature, so the
//! hot loop carries zero profiling cost in gated benchmark builds.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::world::FabricEvent;

/// Number of distinct [`FabricEvent`] kinds tracked.
pub const KINDS: usize = 8;

/// Display names, index-aligned with [`kind_of`].
pub const KIND_NAMES: [&str; KINDS] = [
    "switch_packet",
    "switch_wake",
    "rnic_packet",
    "rnic_wake",
    "switch_credit",
    "rnic_credit",
    "app_cqe",
    "app_timer",
];

const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTS: [AtomicU64; KINDS] = [ZERO; KINDS];
static NANOS: [AtomicU64; KINDS] = [ZERO; KINDS];

/// Maps an event to its counter slot (hot kinds first, matching the
/// dispatch arm order in `WorldState::handle_one`).
#[inline]
pub(crate) fn kind_of(event: &FabricEvent) -> usize {
    match event {
        FabricEvent::SwitchPacket { .. } => 0,
        FabricEvent::SwitchWake { .. } => 1,
        FabricEvent::RnicPacket { .. } => 2,
        FabricEvent::RnicWake(_) => 3,
        FabricEvent::SwitchCredit { .. } => 4,
        FabricEvent::RnicCredit { .. } => 5,
        FabricEvent::AppCqe { .. } => 6,
        FabricEvent::AppTimer { .. } => 7,
    }
}

/// Records one dispatched event of `kind` that took `nanos` inside its
/// handler.
#[inline]
pub(crate) fn record(kind: usize, nanos: u64) {
    COUNTS[kind].fetch_add(1, Ordering::Relaxed);
    NANOS[kind].fetch_add(nanos, Ordering::Relaxed);
}

/// One row of the profile: a kind with its dispatch count and handler
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfEntry {
    /// Kind name (one of [`KIND_NAMES`]).
    pub kind: &'static str,
    /// Events of this kind dispatched since process start (or the last
    /// [`reset`]).
    pub count: u64,
    /// Wall-clock nanoseconds spent in handlers for this kind.
    pub nanos: u64,
}

/// Snapshot of all kinds, in [`KIND_NAMES`] order (including zero rows,
/// so consumers can rely on a fixed shape).
pub fn snapshot() -> Vec<ProfEntry> {
    (0..KINDS)
        .map(|k| ProfEntry {
            kind: KIND_NAMES[k],
            count: COUNTS[k].load(Ordering::Relaxed),
            nanos: NANOS[k].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes every counter (between scenarios, to attribute per figure).
pub fn reset() {
    for k in 0..KINDS {
        COUNTS[k].store(0, Ordering::Relaxed);
        NANOS[k].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        reset();
        record(0, 120);
        record(0, 80);
        record(6, 5);
        let snap = snapshot();
        assert_eq!(snap.len(), KINDS);
        assert_eq!(snap[0].kind, "switch_packet");
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].nanos, 200);
        assert_eq!(snap[6].count, 1);
        assert_eq!(snap[1].count, 0);
        reset();
        assert!(snapshot().iter().all(|e| e.count == 0 && e.nanos == 0));
    }
}
