//! Feature-gated (`sim-prof`) event-dispatch profiling.
//!
//! Process-wide per-event-kind counters: how many events of each
//! [`FabricEvent`] kind the dispatch loop handled and how many wall-clock
//! nanoseconds were spent inside their handlers. The relaxed atomic adds
//! commute, so totals are deterministic for a fixed workload even under
//! the parallel runner (the *cycle* attribution is wall-clock and
//! machine-dependent — it never feeds the perf gate, only the optional
//! `BENCH_prof.json` sidecar).
//!
//! The whole module compiles away without the `sim-prof` feature, so the
//! hot loop carries zero profiling cost in gated benchmark builds.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::world::FabricEvent;

/// Number of distinct [`FabricEvent`] kinds tracked.
pub const KINDS: usize = 8;

/// Display names, index-aligned with [`kind_of`].
pub const KIND_NAMES: [&str; KINDS] = [
    "switch_packet",
    "switch_wake",
    "rnic_packet",
    "rnic_wake",
    "switch_credit",
    "rnic_credit",
    "app_cqe",
    "app_timer",
];

const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTS: [AtomicU64; KINDS] = [ZERO; KINDS];
static NANOS: [AtomicU64; KINDS] = [ZERO; KINDS];

/// Maps an event to its counter slot (hot kinds first, matching the
/// dispatch arm order in `WorldState::handle_one`).
#[inline]
pub(crate) fn kind_of(event: &FabricEvent) -> usize {
    match event {
        FabricEvent::SwitchPacket { .. } => 0,
        FabricEvent::SwitchWake { .. } => 1,
        FabricEvent::RnicPacket { .. } => 2,
        FabricEvent::RnicWake(_) => 3,
        FabricEvent::SwitchCredit { .. } => 4,
        FabricEvent::RnicCredit { .. } => 5,
        FabricEvent::AppCqe { .. } => 6,
        FabricEvent::AppTimer { .. } => 7,
    }
}

/// Records one dispatched event of `kind` that took `nanos` inside its
/// handler.
#[inline]
pub(crate) fn record(kind: usize, nanos: u64) {
    COUNTS[kind].fetch_add(1, Ordering::Relaxed);
    NANOS[kind].fetch_add(nanos, Ordering::Relaxed);
}

/// Shard slots tracked by the per-shard profile (matches the `shards`
/// knob's validated ceiling in `rperf::ScenarioSpec`).
pub const MAX_SHARDS: usize = 64;

static SHARD_EVENTS: [AtomicU64; MAX_SHARDS] = [ZERO; MAX_SHARDS];
static SHARD_BARRIER_NS: [AtomicU64; MAX_SHARDS] = [ZERO; MAX_SHARDS];
static SHARD_MSGS: [AtomicU64; MAX_SHARDS] = [ZERO; MAX_SHARDS];

/// Records one sharded-run window batch for `shard`: events processed,
/// wall-clock nanoseconds spent waiting at window barriers, and mailbox
/// envelopes exchanged (sent + received).
#[inline]
pub(crate) fn record_shard(shard: usize, events: u64, barrier_ns: u64, msgs: u64) {
    if shard >= MAX_SHARDS {
        return;
    }
    SHARD_EVENTS[shard].fetch_add(events, Ordering::Relaxed);
    SHARD_BARRIER_NS[shard].fetch_add(barrier_ns, Ordering::Relaxed);
    SHARD_MSGS[shard].fetch_add(msgs, Ordering::Relaxed);
}

/// One row of the per-shard profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProfEntry {
    /// Shard index.
    pub shard: usize,
    /// Events this shard processed.
    pub events: u64,
    /// Wall-clock nanoseconds this shard spent blocked at window
    /// barriers (load-imbalance indicator: a shard that waits long is
    /// starved by a heavier peer).
    pub barrier_ns: u64,
    /// Cross-shard mailbox envelopes this shard sent plus received.
    pub mailbox_msgs: u64,
}

/// Snapshot of every shard slot that recorded activity, in shard order.
/// Empty when no sharded run has executed since the last [`reset`].
pub fn shard_snapshot() -> Vec<ShardProfEntry> {
    (0..MAX_SHARDS)
        .map(|s| ShardProfEntry {
            shard: s,
            events: SHARD_EVENTS[s].load(Ordering::Relaxed),
            barrier_ns: SHARD_BARRIER_NS[s].load(Ordering::Relaxed),
            mailbox_msgs: SHARD_MSGS[s].load(Ordering::Relaxed),
        })
        .filter(|e| e.events > 0 || e.barrier_ns > 0 || e.mailbox_msgs > 0)
        .collect()
}

/// One row of the profile: a kind with its dispatch count and handler
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfEntry {
    /// Kind name (one of [`KIND_NAMES`]).
    pub kind: &'static str,
    /// Events of this kind dispatched since process start (or the last
    /// [`reset`]).
    pub count: u64,
    /// Wall-clock nanoseconds spent in handlers for this kind.
    pub nanos: u64,
}

/// Snapshot of all kinds, in [`KIND_NAMES`] order (including zero rows,
/// so consumers can rely on a fixed shape).
pub fn snapshot() -> Vec<ProfEntry> {
    (0..KINDS)
        .map(|k| ProfEntry {
            kind: KIND_NAMES[k],
            count: COUNTS[k].load(Ordering::Relaxed),
            nanos: NANOS[k].load(Ordering::Relaxed),
        })
        .collect()
}

/// Zeroes every counter (between scenarios, to attribute per figure).
pub fn reset() {
    for k in 0..KINDS {
        COUNTS[k].store(0, Ordering::Relaxed);
        NANOS[k].store(0, Ordering::Relaxed);
    }
    for s in 0..MAX_SHARDS {
        SHARD_EVENTS[s].store(0, Ordering::Relaxed);
        SHARD_BARRIER_NS[s].store(0, Ordering::Relaxed);
        SHARD_MSGS[s].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        reset();
        record(0, 120);
        record(0, 80);
        record(6, 5);
        let snap = snapshot();
        assert_eq!(snap.len(), KINDS);
        assert_eq!(snap[0].kind, "switch_packet");
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].nanos, 200);
        assert_eq!(snap[6].count, 1);
        assert_eq!(snap[1].count, 0);
        reset();
        assert!(snapshot().iter().all(|e| e.count == 0 && e.nanos == 0));
    }

    #[test]
    fn shard_rows_filter_idle_slots() {
        reset();
        record_shard(0, 100, 250, 4);
        record_shard(3, 50, 10, 2);
        record_shard(3, 25, 5, 1);
        let rows = shard_snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].shard, 0);
        assert_eq!(rows[0].events, 100);
        assert_eq!(rows[1].shard, 3);
        assert_eq!(rows[1].events, 75);
        assert_eq!(rows[1].barrier_ns, 15);
        assert_eq!(rows[1].mailbox_msgs, 3);
        record_shard(MAX_SHARDS + 1, 1, 1, 1); // out of range: ignored
        assert_eq!(shard_snapshot().len(), 2);
        reset();
        assert!(shard_snapshot().is_empty());
    }
}
