//! Sharded execution of one fabric: partitioner, per-shard domains and
//! the [`ShardedSim`] driver.
//!
//! A built [`Fabric`] is split into `N` *domains*, each owning a disjoint
//! set of devices (host RNIC/clock/app triples and switches), a private
//! event queue and a private packet slab. Domains advance together in
//! conservative-lookahead windows (see [`rperf_sim::shard`] and
//! DESIGN.md §3): the wire propagation delay lower-bounds every
//! cross-shard event, so a window of that width needs only one mailbox
//! exchange and barrier per round.
//!
//! # Determinism
//!
//! Every scheduled event carries an explicit ordering key so that pop
//! order — and therefore simulation results — is a function of the
//! scenario alone, not of the shard count or thread timing:
//!
//! ```text
//! key = (MAX_DELTA − (at − emitted_at)) ‖ source_device ‖ emission#
//!            40 bits                        12 bits        12 bits
//! ```
//!
//! Same-timestamp events thus pop in *emission chronology* (an event
//! scheduled earlier pops first — matching the sequential engine's
//! insertion order), with exact emission-time ties broken by source
//! device id and per-device emission count. All three components are
//! pure functions of the simulated history, identical under any
//! partitioning; cross-shard envelopes carry the key with them and the
//! mailbox merge preserves it. Packet *handles* are per-shard (each
//! domain allocates from its own slab) but handle values are opaque to
//! every device model, so re-homing a packet body across a shard
//! boundary is invisible to results.

use std::sync::Arc;

use rperf_host::TscClock;
use rperf_model::arena::PacketSlab;
use rperf_model::{ClusterConfig, Lid, Packet, PortId, QpNum, Transport, VirtualLane};
use rperf_rnic::{Rnic, RnicAction};
use rperf_sim::shard::{run_sharded, Lookahead, Mailbox, ShardedWorld};
use rperf_sim::{EventQueue, RunOutcome, SimDuration, SimTime};
use rperf_switch::{Switch, SwitchAction};
use rperf_verbs::{RecvWr, SendWr, VerbsError};

use crate::topology::{Endpoint, Fabric};
use crate::world::{App, FabricEvent};

/// Bits of the ordering key holding the source device id.
const DEV_BITS: u32 = 12;
/// Bits of the ordering key holding the per-device emission counter.
const CTR_BITS: u32 = 12;
/// Bits of the ordering key holding the (inverted) scheduling delta.
const DELTA_BITS: u32 = 64 - DEV_BITS - CTR_BITS;
/// Saturation bound for the scheduling delta (~1.1 s in picoseconds).
const MAX_DELTA: u64 = (1 << DELTA_BITS) - 1;
/// Device-count ceiling imposed by the key layout.
const MAX_DEVICES: usize = 1 << DEV_BITS;

/// Builds the deterministic ordering key for an event emitted at `now`
/// and scheduled for `at` by device `dev` (see the module docs).
#[inline]
fn emit_key(at: SimTime, now: SimTime, dev: u32, ctr: u16) -> u64 {
    debug_assert!(at >= now, "emission into the past: {at:?} < {now:?}");
    let delta = (at.as_ps().saturating_sub(now.as_ps())).min(MAX_DELTA);
    ((MAX_DELTA - delta) << (DEV_BITS + CTR_BITS)) | (u64::from(dev) << CTR_BITS) | u64::from(ctr)
}

/// Per-device emission state: resets the counter whenever the device's
/// emission tick advances, so the 12-bit key field cannot wrap within a
/// tick (a device would need >4096 emissions in one picosecond tick).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct KeySlot {
    last: SimTime,
    ctr: u16,
}

impl KeySlot {
    #[inline]
    fn next(&mut self, now: SimTime) -> u16 {
        if self.last != now {
            self.last = now;
            self.ctr = 0;
        }
        let k = self.ctr;
        debug_assert!(
            k < (1 << CTR_BITS) - 1,
            "emission counter overflow in one tick"
        );
        self.ctr = self.ctr.wrapping_add(1);
        k
    }
}

/// A cross-shard event in flight: the destination schedules `msg` at
/// `at` under the source-assigned ordering `key`.
#[derive(Debug)]
pub(crate) struct Envelope {
    at: SimTime,
    key: u64,
    msg: WireMsg,
}

/// The event payload of an [`Envelope`]. Packet-bearing variants carry
/// the packet *body* by value: the source shard frees its slab entry at
/// the boundary and the destination re-allocates in its own slab.
#[derive(Debug)]
enum WireMsg {
    RnicPacket {
        node: u32,
        packet: Packet,
    },
    RnicCredit {
        node: u32,
        vl: VirtualLane,
        bytes: u64,
    },
    SwitchPacket {
        switch: u32,
        ingress: PortId,
        packet: Packet,
    },
    SwitchCredit {
        switch: u32,
        egress: PortId,
        vl: VirtualLane,
        bytes: u64,
    },
}

/// The immutable cluster view shared by every domain: configuration,
/// wiring, LIDs and the device→shard assignment.
#[derive(Debug)]
pub(crate) struct ShardTopo {
    cfg: Arc<ClusterConfig>,
    lids: Vec<Lid>,
    rnic_peer: Vec<Endpoint>,
    switch_peer: Vec<Vec<Option<Endpoint>>>,
    nodes: usize,
    /// Device (node `i` → `i`, switch `j` → `nodes + j`) to shard.
    dev_shard: Vec<u32>,
    /// Device to index within its shard's local storage.
    dev_local: Vec<u32>,
}

impl ShardTopo {
    #[inline]
    fn dev_of(&self, ep: Endpoint) -> u32 {
        match ep {
            Endpoint::Rnic(j) => j as u32,
            Endpoint::SwitchPort(s, _) => (self.nodes + s) as u32,
        }
    }
}

/// Splits `weights.len()` devices over `shards` bins, heaviest-first onto
/// the currently lightest bin (longest-processing-time greedy). Returns
/// the per-device bin assignment.
///
/// Fully deterministic: weight ties keep device-id order and bin-load
/// ties pick the lowest bin, so the same topology always partitions the
/// same way — a precondition for reproducible sharded runs.
pub fn partition_devices(weights: &[u64], shards: usize) -> Vec<u32> {
    let shards = shards.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&d| (u64::MAX - weights[d], d));
    let mut load = vec![0u64; shards];
    let mut assign = vec![0u32; weights.len()];
    for d in order {
        let mut best = 0usize;
        for (s, &l) in load.iter().enumerate().skip(1) {
            if l < load[best] {
                best = s;
            }
        }
        assign[d] = best as u32;
        load[best] += weights[d].max(1);
    }
    assign
}

/// Mutable per-app environment handed to [`crate::world::Ctx`] in
/// sharded runs: the app's own devices plus the routing surface
/// (queue, slab, mailbox grid). Cross-shard emissions go through the
/// mailbox only — lint rule D10 enforces this boundary.
pub(crate) struct ShardEnv<'a> {
    topo: &'a ShardTopo,
    shard: u32,
    grid: &'a Mailbox<Envelope>,
    q: &'a mut EventQueue<FabricEvent>,
    slab: &'a mut PacketSlab,
    rnic: &'a mut Rnic,
    clock: &'a TscClock,
    key: &'a mut KeySlot,
    out: &'a mut Vec<RnicAction>,
    sent: &'a mut u64,
}

impl ShardEnv<'_> {
    pub(crate) fn lid_of(&self, node: usize) -> Lid {
        self.topo.lids[node]
    }

    pub(crate) fn config(&self) -> &ClusterConfig {
        &self.topo.cfg
    }

    pub(crate) fn clock(&self) -> &TscClock {
        self.clock
    }

    pub(crate) fn create_qp(&mut self, transport: Transport) -> QpNum {
        self.rnic.create_qp(transport)
    }

    pub(crate) fn post_send(
        &mut self,
        node: usize,
        now: SimTime,
        qp: QpNum,
        wr: SendWr,
    ) -> Result<(), VerbsError> {
        self.rnic.post_send(now, qp, wr, self.slab, self.out)?;
        self.route_rnic(node, now);
        Ok(())
    }

    pub(crate) fn post_send_batch(
        &mut self,
        node: usize,
        now: SimTime,
        qp: QpNum,
        wrs: Vec<SendWr>,
    ) -> Result<(), VerbsError> {
        self.rnic
            .post_send_batch(now, qp, wrs, self.slab, self.out)?;
        self.route_rnic(node, now);
        Ok(())
    }

    pub(crate) fn post_recv(&mut self, qp: QpNum, wr: RecvWr) {
        self.rnic.post_recv(qp, wr);
    }

    pub(crate) fn set_timer(&mut self, node: usize, now: SimTime, delay: SimDuration, token: u64) {
        let at = now + delay;
        let key = emit_key(at, now, node as u32, self.key.next(now));
        self.q.schedule_keyed(
            at,
            key,
            FabricEvent::AppTimer {
                node: node as u32,
                token,
            },
        );
    }

    fn route_rnic(&mut self, node: usize, now: SimTime) {
        route_rnic_actions(
            self.topo, self.grid, self.shard, self.q, self.slab, self.key, self.out, self.sent,
            node, now,
        );
    }
}

/// Routes one RNIC's pending actions (the sharded counterpart of the
/// sequential engine's `apply_rnic_actions`): local destinations are
/// scheduled keyed on the shard's own queue, cross-shard destinations
/// are freed from the local slab and posted to the mailbox grid.
#[allow(clippy::too_many_arguments)]
fn route_rnic_actions(
    topo: &ShardTopo,
    grid: &Mailbox<Envelope>,
    shard: u32,
    q: &mut EventQueue<FabricEvent>,
    slab: &mut PacketSlab,
    key: &mut KeySlot,
    out: &mut Vec<RnicAction>,
    sent: &mut u64,
    node: usize,
    now: SimTime,
) {
    let prop = topo.cfg.link.propagation;
    let peer = topo.rnic_peer[node];
    let peer_shard = topo.dev_shard[topo.dev_of(peer) as usize];
    let dev = node as u32;
    for a in out.drain(..) {
        match a {
            RnicAction::Wake { at } => {
                let k = emit_key(at, now, dev, key.next(now));
                q.schedule_keyed(at, k, FabricEvent::RnicWake(dev));
            }
            RnicAction::Complete { cqe } => {
                let at = cqe.visible_at.max(now);
                let k = emit_key(at, now, dev, key.next(now));
                q.schedule_keyed(at, k, FabricEvent::AppCqe { node: dev, cqe });
            }
            RnicAction::Transmit { packet, serialize } => {
                // Serialization finishes before the last bit reaches a
                // peer RNIC; a switch sees the first bit (cut-through).
                let at = match peer {
                    Endpoint::Rnic(_) => now + serialize + prop,
                    Endpoint::SwitchPort(..) => now + prop,
                };
                let k = emit_key(at, now, dev, key.next(now));
                if peer_shard == shard {
                    let ev = match peer {
                        Endpoint::Rnic(j) => FabricEvent::RnicPacket {
                            node: j as u32,
                            packet,
                        },
                        Endpoint::SwitchPort(s, p) => FabricEvent::SwitchPacket {
                            switch: s as u32,
                            ingress: p,
                            packet,
                        },
                    };
                    q.schedule_keyed(at, k, ev);
                } else {
                    let body = slab.free(packet);
                    let msg = match peer {
                        Endpoint::Rnic(j) => WireMsg::RnicPacket {
                            node: j as u32,
                            packet: body,
                        },
                        Endpoint::SwitchPort(s, p) => WireMsg::SwitchPacket {
                            switch: s as u32,
                            ingress: p,
                            packet: body,
                        },
                    };
                    grid.post(
                        shard as usize,
                        peer_shard as usize,
                        Envelope { at, key: k, msg },
                    );
                    *sent += 1;
                }
            }
            RnicAction::ReturnCredit { vl, bytes, after } => {
                let at = now + after + prop;
                let k = emit_key(at, now, dev, key.next(now));
                let msg = match peer {
                    Endpoint::Rnic(j) => WireMsg::RnicCredit {
                        node: j as u32,
                        vl,
                        bytes,
                    },
                    Endpoint::SwitchPort(s, p) => WireMsg::SwitchCredit {
                        switch: s as u32,
                        egress: p,
                        vl,
                        bytes,
                    },
                };
                deliver(
                    grid,
                    shard,
                    peer_shard,
                    q,
                    sent,
                    Envelope { at, key: k, msg },
                );
            }
        }
    }
}

/// Routes one switch's pending actions; see [`route_rnic_actions`].
#[allow(clippy::too_many_arguments)]
fn route_switch_actions(
    topo: &ShardTopo,
    grid: &Mailbox<Envelope>,
    shard: u32,
    q: &mut EventQueue<FabricEvent>,
    slab: &mut PacketSlab,
    key: &mut KeySlot,
    out: &mut Vec<SwitchAction>,
    sent: &mut u64,
    switch: usize,
    now: SimTime,
) {
    let prop = topo.cfg.link.propagation;
    let dev = (topo.nodes + switch) as u32;
    for a in out.drain(..) {
        match a {
            SwitchAction::Wake { egress, at } => {
                let k = emit_key(at, now, dev, key.next(now));
                q.schedule_keyed(
                    at,
                    k,
                    FabricEvent::SwitchWake {
                        switch: switch as u32,
                        egress,
                    },
                );
            }
            SwitchAction::Transmit {
                egress,
                packet,
                start_after,
                serialize,
            } => {
                let Some(peer) = topo.switch_peer[switch][egress.index()] else {
                    debug_assert!(false, "switch {switch} transmits on unconnected {egress}");
                    continue;
                };
                let at = match peer {
                    Endpoint::Rnic(_) => now + start_after + serialize + prop,
                    Endpoint::SwitchPort(..) => now + start_after + prop,
                };
                let k = emit_key(at, now, dev, key.next(now));
                let peer_shard = topo.dev_shard[topo.dev_of(peer) as usize];
                if peer_shard == shard {
                    let ev = match peer {
                        Endpoint::Rnic(j) => FabricEvent::RnicPacket {
                            node: j as u32,
                            packet,
                        },
                        Endpoint::SwitchPort(s2, p2) => FabricEvent::SwitchPacket {
                            switch: s2 as u32,
                            ingress: p2,
                            packet,
                        },
                    };
                    q.schedule_keyed(at, k, ev);
                } else {
                    let body = slab.free(packet);
                    let msg = match peer {
                        Endpoint::Rnic(j) => WireMsg::RnicPacket {
                            node: j as u32,
                            packet: body,
                        },
                        Endpoint::SwitchPort(s2, p2) => WireMsg::SwitchPacket {
                            switch: s2 as u32,
                            ingress: p2,
                            packet: body,
                        },
                    };
                    grid.post(
                        shard as usize,
                        peer_shard as usize,
                        Envelope { at, key: k, msg },
                    );
                    *sent += 1;
                }
            }
            SwitchAction::ReturnCredit { ingress, vl, bytes } => {
                let Some(peer) = topo.switch_peer[switch][ingress.index()] else {
                    debug_assert!(
                        false,
                        "switch {switch} returns credit on unconnected {ingress}"
                    );
                    continue;
                };
                let at = now + prop;
                let k = emit_key(at, now, dev, key.next(now));
                let peer_shard = topo.dev_shard[topo.dev_of(peer) as usize];
                let msg = match peer {
                    Endpoint::Rnic(j) => WireMsg::RnicCredit {
                        node: j as u32,
                        vl,
                        bytes,
                    },
                    Endpoint::SwitchPort(s2, p2) => WireMsg::SwitchCredit {
                        switch: s2 as u32,
                        egress: p2,
                        vl,
                        bytes,
                    },
                };
                deliver(
                    grid,
                    shard,
                    peer_shard,
                    q,
                    sent,
                    Envelope { at, key: k, msg },
                );
            }
        }
    }
}

/// Delivers a packet-free envelope: locally by direct keyed scheduling,
/// across shards through the mailbox.
fn deliver(
    grid: &Mailbox<Envelope>,
    shard: u32,
    peer_shard: u32,
    q: &mut EventQueue<FabricEvent>,
    sent: &mut u64,
    env: Envelope,
) {
    if peer_shard == shard {
        let Envelope { at, key, msg } = env;
        // Credit messages carry no slab handle, so local scheduling needs
        // no re-homing.
        let ev = match msg {
            WireMsg::RnicCredit { node, vl, bytes } => FabricEvent::RnicCredit { node, vl, bytes },
            WireMsg::SwitchCredit {
                switch,
                egress,
                vl,
                bytes,
            } => FabricEvent::SwitchCredit {
                switch,
                egress,
                vl,
                bytes,
            },
            WireMsg::RnicPacket { .. } | WireMsg::SwitchPacket { .. } => {
                debug_assert!(false, "deliver() is for packet-free envelopes");
                return;
            }
        };
        q.schedule_keyed(at, key, ev);
    } else {
        grid.post(shard as usize, peer_shard as usize, env);
        *sent += 1;
    }
}

/// Cumulative per-shard execution counters (see [`ShardedSim::shard_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardExecStats {
    /// Events this shard processed.
    pub events: u64,
    /// Synchronization windows this shard participated in.
    pub windows: u64,
    /// Wall-clock nanoseconds spent waiting at window barriers
    /// (collected only under the `sim-prof` feature; zero otherwise).
    pub barrier_ns: u64,
    /// Cross-shard envelopes this shard posted.
    pub sent_msgs: u64,
    /// Cross-shard envelopes this shard received.
    pub recv_msgs: u64,
}

/// One shard's owned slice of the fabric plus its private queue/slab.
struct Domain {
    shard: u32,
    topo: Arc<ShardTopo>,
    grid: Arc<Mailbox<Envelope>>,
    q: EventQueue<FabricEvent>,
    slab: PacketSlab,
    rnics: Vec<Rnic>,
    clocks: Vec<TscClock>,
    switches: Vec<Switch>,
    apps: Vec<Option<Box<dyn App>>>,
    /// Emission state per local device (rnics first, then switches).
    keys: Vec<KeySlot>,
    rnic_out: Vec<RnicAction>,
    switch_out: Vec<SwitchAction>,
    inbox: Vec<Envelope>,
    sent_msgs: u64,
    recv_msgs: u64,
}

impl Domain {
    #[inline]
    fn local_rnic(&self, node: u32) -> usize {
        debug_assert_eq!(self.topo.dev_shard[node as usize], self.shard);
        self.topo.dev_local[node as usize] as usize
    }

    #[inline]
    fn local_switch(&self, switch: u32) -> usize {
        let dev = self.topo.nodes + switch as usize;
        debug_assert_eq!(self.topo.dev_shard[dev], self.shard);
        self.topo.dev_local[dev] as usize
    }

    #[inline]
    fn handle_one(&mut self, now: SimTime, event: FabricEvent) {
        #[cfg(feature = "sim-prof")]
        let prof_kind = crate::prof::kind_of(&event);
        #[cfg(feature = "sim-prof")]
        let prof_start = std::time::Instant::now();
        match event {
            FabricEvent::SwitchPacket {
                switch,
                ingress,
                packet,
            } => {
                let li = self.local_switch(switch);
                self.switches[li].packet_arrival(
                    now,
                    ingress,
                    packet,
                    &self.slab,
                    &mut self.switch_out,
                );
                self.route_switch(switch, li, now);
            }
            FabricEvent::SwitchWake { switch, egress } => {
                let li = self.local_switch(switch);
                self.switches[li].egress_wake(now, egress, &mut self.switch_out);
                self.route_switch(switch, li, now);
            }
            FabricEvent::RnicPacket { node, packet } => {
                let li = self.local_rnic(node);
                self.rnics[li].packet_arrival(now, packet, &mut self.slab, &mut self.rnic_out);
                self.route_rnic(node, li, now);
            }
            FabricEvent::RnicWake(node) => {
                let li = self.local_rnic(node);
                // Busy-wire re-arm fast path, same as the sequential
                // engine: a wake that only reschedules itself skips the
                // action buffer.
                if let Some(at) = self.rnics[li].wake_rearm_only(now) {
                    let k = emit_key(at, now, node, self.keys[li].next(now));
                    self.q.schedule_keyed(at, k, FabricEvent::RnicWake(node));
                } else {
                    self.rnics[li].wake(now, &self.slab, &mut self.rnic_out);
                    self.route_rnic(node, li, now);
                }
            }
            FabricEvent::SwitchCredit {
                switch,
                egress,
                vl,
                bytes,
            } => {
                let li = self.local_switch(switch);
                self.switches[li].credit_from_downstream(
                    now,
                    egress,
                    vl,
                    bytes,
                    &mut self.switch_out,
                );
                self.route_switch(switch, li, now);
            }
            FabricEvent::RnicCredit { node, vl, bytes } => {
                let li = self.local_rnic(node);
                self.rnics[li].credit_from_peer(now, vl, bytes, &self.slab, &mut self.rnic_out);
                self.route_rnic(node, li, now);
            }
            FabricEvent::AppCqe { node, cqe } => {
                self.with_app(node as usize, now, |app, ctx| app.on_cqe(ctx, cqe));
            }
            FabricEvent::AppTimer { node, token } => {
                self.with_app(node as usize, now, |app, ctx| app.on_timer(ctx, token));
            }
        }
        #[cfg(feature = "sim-prof")]
        crate::prof::record(prof_kind, prof_start.elapsed().as_nanos() as u64);
    }

    fn route_rnic(&mut self, node: u32, li: usize, now: SimTime) {
        route_rnic_actions(
            &self.topo,
            &self.grid,
            self.shard,
            &mut self.q,
            &mut self.slab,
            &mut self.keys[li],
            &mut self.rnic_out,
            &mut self.sent_msgs,
            node as usize,
            now,
        );
    }

    fn route_switch(&mut self, switch: u32, li: usize, now: SimTime) {
        route_switch_actions(
            &self.topo,
            &self.grid,
            self.shard,
            &mut self.q,
            &mut self.slab,
            &mut self.keys[self.rnics.len() + li],
            &mut self.switch_out,
            &mut self.sent_msgs,
            switch as usize,
            now,
        );
    }

    fn with_app<F>(&mut self, node: usize, now: SimTime, f: F)
    where
        F: FnOnce(&mut dyn App, &mut crate::world::Ctx<'_>),
    {
        let li = self.local_rnic(node as u32);
        let Some(mut app) = self.apps[li].take() else {
            return; // completion on a node without an app: dropped
        };
        {
            let env = ShardEnv {
                topo: &self.topo,
                shard: self.shard,
                grid: &self.grid,
                q: &mut self.q,
                slab: &mut self.slab,
                rnic: &mut self.rnics[li],
                clock: &self.clocks[li],
                key: &mut self.keys[li],
                out: &mut self.rnic_out,
                sent: &mut self.sent_msgs,
            };
            let mut ctx = crate::world::Ctx::sharded(now, node, env);
            f(app.as_mut(), &mut ctx);
        }
        self.apps[li] = Some(app);
    }
}

impl ShardedWorld for Domain {
    fn drain_inbound(&mut self) {
        let mut inbox = std::mem::take(&mut self.inbox);
        self.recv_msgs += self.grid.drain_into(self.shard as usize, &mut inbox);
        for env in inbox.drain(..) {
            let ev = match env.msg {
                WireMsg::RnicPacket { node, packet } => FabricEvent::RnicPacket {
                    node,
                    packet: self.slab.alloc(packet),
                },
                WireMsg::SwitchPacket {
                    switch,
                    ingress,
                    packet,
                } => FabricEvent::SwitchPacket {
                    switch,
                    ingress,
                    packet: self.slab.alloc(packet),
                },
                WireMsg::RnicCredit { node, vl, bytes } => {
                    FabricEvent::RnicCredit { node, vl, bytes }
                }
                WireMsg::SwitchCredit {
                    switch,
                    egress,
                    vl,
                    bytes,
                } => FabricEvent::SwitchCredit {
                    switch,
                    egress,
                    vl,
                    bytes,
                },
            };
            self.q.schedule_keyed(env.at, env.key, ev);
        }
        self.inbox = inbox;
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.q.peek_time()
    }

    fn run_window(&mut self, end: SimTime) -> u64 {
        let mut n = 0u64;
        while self.q.peek_time().is_some_and(|t| t < end) {
            let Some((now, ev)) = self.q.pop() else { break };
            n += 1;
            self.handle_one(now, ev);
            // Batched same-timestamp delivery, as in the sequential
            // engine's hot loop: drain every event sharing this tick
            // without re-consulting the window bound (they are all < end).
            while let Some(ev) = self.q.pop_if_at(now) {
                n += 1;
                self.handle_one(now, ev);
            }
        }
        n
    }
}

/// A partitioned simulation: the sharded counterpart of
/// [`crate::world::Sim`], driving `shards` domains through the
/// conservative-lookahead window protocol.
///
/// Construction, app attachment and startup mirror `Sim`; the runtime
/// differences are documented on [`ShardedSim::run_until_budgeted`].
pub struct ShardedSim {
    domains: Vec<Domain>,
    topo: Arc<ShardTopo>,
    lookahead: Lookahead,
    started: bool,
    stats: Vec<ShardExecStats>,
}

impl std::fmt::Debug for ShardedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("shards", &self.domains.len())
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl ShardedSim {
    /// Partitions a freshly built fabric into at most `shards` domains
    /// (clamped to the device count) using weight-balanced assignment:
    /// switches weigh their connected port count, hosts weigh one.
    ///
    /// # Panics
    ///
    /// Panics if the fabric exceeds the key layout's 4096-device ceiling
    /// or if packets are already in flight (the fabric must not have run).
    pub fn new(fabric: Fabric, shards: usize) -> Self {
        let nodes = fabric.nodes();
        let n_switches = fabric.switches_len();
        let devices = nodes + n_switches;
        assert!(
            devices <= MAX_DEVICES,
            "fabric has {devices} devices; the shard key fits {MAX_DEVICES}"
        );
        assert!(
            fabric.slab().is_empty(),
            "sharding requires a fabric that has not yet run"
        );
        let shards = shards.clamp(1, devices.max(1));

        let Fabric {
            cfg,
            rnics,
            clocks,
            switches,
            slab: _,
            rnic_peer,
            switch_peer,
        } = fabric;

        let mut weights = vec![1u64; devices];
        for (s, peers) in switch_peer.iter().enumerate() {
            weights[nodes + s] = peers.iter().flatten().count().max(1) as u64;
        }
        let dev_shard = partition_devices(&weights, shards);

        // Lookahead: the wire propagation delay bounds every cross-shard
        // event from below (serialization and arbitration only add time).
        let mut crossings = false;
        for (node, &peer) in rnic_peer.iter().enumerate() {
            let pd = match peer {
                Endpoint::Rnic(j) => j,
                Endpoint::SwitchPort(s, _) => nodes + s,
            };
            crossings |= dev_shard[node] != dev_shard[pd];
        }
        for (s, peers) in switch_peer.iter().enumerate() {
            for peer in peers.iter().flatten() {
                let pd = match peer {
                    Endpoint::Rnic(j) => *j,
                    Endpoint::SwitchPort(s2, _) => nodes + s2,
                };
                crossings |= dev_shard[nodes + s] != dev_shard[pd];
            }
        }
        let lookahead = if crossings {
            Lookahead::bounded(cfg.link.propagation)
        } else {
            Lookahead::unbounded()
        };

        let lids: Vec<Lid> = rnics.iter().map(Rnic::lid).collect();
        let mut dev_local = vec![0u32; devices];
        let mut per_shard_nodes: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut per_shard_switches: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for node in 0..nodes {
            let s = dev_shard[node] as usize;
            dev_local[node] = per_shard_nodes[s].len() as u32;
            per_shard_nodes[s].push(node as u32);
        }
        for sw in 0..n_switches {
            let s = dev_shard[nodes + sw] as usize;
            dev_local[nodes + sw] = per_shard_switches[s].len() as u32;
            per_shard_switches[s].push(sw as u32);
        }

        let topo = Arc::new(ShardTopo {
            cfg,
            lids,
            rnic_peer,
            switch_peer,
            nodes,
            dev_shard,
            dev_local,
        });
        let grid = Arc::new(Mailbox::new(shards));

        // Distribute the owned devices: take each out of its global Vec
        // in id order (Option dance keeps the moves O(n)).
        let mut rnics: Vec<Option<Rnic>> = rnics.into_iter().map(Some).collect();
        let mut clocks: Vec<Option<TscClock>> = clocks.into_iter().map(Some).collect();
        let mut switches: Vec<Option<Switch>> = switches.into_iter().map(Some).collect();
        let domains = (0..shards)
            .map(|s| {
                let node_ids = std::mem::take(&mut per_shard_nodes[s]);
                let switch_ids = std::mem::take(&mut per_shard_switches[s]);
                let local_rnics: Vec<Rnic> = node_ids
                    .iter()
                    .filter_map(|&n| rnics[n as usize].take())
                    .collect();
                let local_clocks: Vec<TscClock> = node_ids
                    .iter()
                    .filter_map(|&n| clocks[n as usize].take())
                    .collect();
                let local_switches: Vec<Switch> = switch_ids
                    .iter()
                    .filter_map(|&w| switches[w as usize].take())
                    .collect();
                let locals = local_rnics.len() + local_switches.len();
                let apps = (0..local_rnics.len()).map(|_| None).collect();
                Domain {
                    shard: s as u32,
                    topo: Arc::clone(&topo),
                    grid: Arc::clone(&grid),
                    q: EventQueue::with_capacity((node_ids.len() * 256).max(1024)),
                    slab: PacketSlab::new(),
                    rnics: local_rnics,
                    clocks: local_clocks,
                    switches: local_switches,
                    apps,
                    keys: vec![KeySlot::default(); locals],
                    rnic_out: Vec::with_capacity(64),
                    switch_out: Vec::with_capacity(64),
                    inbox: Vec::new(),
                    sent_msgs: 0,
                    recv_msgs: 0,
                }
            })
            .collect();

        ShardedSim {
            domains,
            topo,
            lookahead,
            started: false,
            stats: vec![ShardExecStats::default(); shards],
        }
    }

    /// The number of domains actually running (after clamping).
    pub fn shards(&self) -> usize {
        self.domains.len()
    }

    /// The lookahead window the partition admits.
    pub fn lookahead(&self) -> Lookahead {
        self.lookahead
    }

    /// Attaches an app to a node (replacing any previous app).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or the simulation already started.
    pub fn add_app(&mut self, node: usize, app: Box<dyn App>) {
        assert!(!self.started, "apps must be attached before start()");
        let shard = self.topo.dev_shard[node] as usize;
        let li = self.topo.dev_local[node] as usize;
        self.domains[shard].apps[li] = Some(app);
    }

    /// Calls every app's [`App::start`] in node order, on the calling
    /// thread — identical startup sequencing to the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "start() may only be called once");
        self.started = true;
        for node in 0..self.topo.nodes {
            let shard = self.topo.dev_shard[node] as usize;
            let d = &mut self.domains[shard];
            let now = d.q.now();
            d.with_app(node, now, |app, ctx| app.start(ctx));
        }
    }

    /// Runs toward the horizon `t` (exclusive) under an event budget and
    /// a cooperative cancellation hook.
    ///
    /// Semantics match [`crate::world::Sim::run_until_budgeted`] with two
    /// window-granular relaxations: `check_every` is ignored (the
    /// cancellation hook is polled once per lookahead window, on the
    /// calling thread), and `max_events` stops the run at the first
    /// window boundary where the global event count has reached it — a
    /// budgeted stop may therefore overshoot by up to one window of
    /// events. Uninterrupted runs are unaffected by either relaxation.
    pub fn run_until_budgeted(
        &mut self,
        t: SimTime,
        max_events: u64,
        _check_every: u64,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> RunOutcome {
        let before: u64 = self.domains.iter().map(|d| d.q.popped()).sum();
        #[cfg(feature = "sim-prof")]
        let msgs_before: Vec<u64> = self
            .domains
            .iter()
            .map(|d| d.sent_msgs + d.recv_msgs)
            .collect();
        let (outcome, run_stats) =
            run_sharded(&mut self.domains, self.lookahead, t, max_events, cancelled);
        let after: u64 = self.domains.iter().map(|d| d.q.popped()).sum();
        crate::world::note_events(after - before);
        for (i, d) in self.domains.iter().enumerate() {
            crate::world::note_slab_high_water(d.slab.high_water() as u64);
            let s = &mut self.stats[i];
            s.events += run_stats[i].events;
            s.windows += run_stats[i].windows;
            s.barrier_ns += run_stats[i].barrier_ns;
            s.sent_msgs = d.sent_msgs;
            s.recv_msgs = d.recv_msgs;
        }
        #[cfg(feature = "sim-prof")]
        for (i, d) in self.domains.iter().enumerate() {
            crate::prof::record_shard(
                i,
                run_stats[i].events,
                run_stats[i].barrier_ns,
                (d.sent_msgs + d.recv_msgs) - msgs_before[i],
            );
        }
        outcome
    }

    /// Runs until the horizon (exclusive) or until every queue drains;
    /// the unbounded convenience wrapper over
    /// [`ShardedSim::run_until_budgeted`].
    pub fn run_until(&mut self, t: SimTime) {
        let _ = self.run_until_budgeted(t, u64::MAX, 0, &mut || false);
    }

    /// Total events processed so far across all shards.
    pub fn events_processed(&self) -> u64 {
        self.domains.iter().map(|d| d.q.popped()).sum()
    }

    /// Cumulative per-shard execution counters (events, windows, barrier
    /// wait, mailbox traffic), indexed by shard.
    pub fn shard_stats(&self) -> &[ShardExecStats] {
        &self.stats
    }

    /// Live packet handles across all shard slabs (leak diagnostics).
    pub fn packets_live(&self) -> usize {
        self.domains.iter().map(|d| d.slab.live()).sum()
    }

    /// Downcasts the app on `node` to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node has no app or the type does not match.
    pub fn app_as<T: App + 'static>(&self, node: usize) -> &T {
        let shard = self.topo.dev_shard[node] as usize;
        let li = self.topo.dev_local[node] as usize;
        self.domains[shard].apps[li]
            .as_ref()
            .expect("node has no app")
            .as_any()
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Ctx, Sim};
    use rperf_model::{ClusterConfig, Verb};
    use rperf_verbs::{Cqe, CqeOpcode, SendWr, WrId};
    use std::any::Any;

    /// Streams `count` messages of `payload` bytes to `target`, 8 in
    /// flight; records the last send-completion time.
    struct Streamer {
        target: usize,
        payload: u64,
        remaining: u64,
        qp: Option<QpNum>,
        last_done: SimTime,
    }

    impl Streamer {
        fn new(target: usize, payload: u64, count: u64) -> Self {
            Streamer {
                target,
                payload,
                remaining: count,
                qp: None,
                last_done: SimTime::ZERO,
            }
        }
    }

    impl crate::world::App for Streamer {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let qp = ctx.create_qp(Transport::Rc);
            self.qp = Some(qp);
            let burst = self.remaining.min(8);
            let wrs: Vec<SendWr> = (0..burst)
                .map(|i| {
                    SendWr::new(WrId(i), Verb::Send, self.payload)
                        .to(ctx.lid_of(self.target), QpNum::new(1))
                })
                .collect();
            self.remaining -= burst;
            ctx.post_send_batch(qp, wrs).unwrap();
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
            if cqe.opcode == CqeOpcode::Send {
                self.last_done = ctx.now();
                if self.remaining > 0 {
                    self.remaining -= 1;
                    let wr = SendWr::new(cqe.wr_id, Verb::Send, self.payload)
                        .to(ctx.lid_of(self.target), QpNum::new(1));
                    ctx.post_send(self.qp.unwrap(), wr).unwrap();
                }
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Counts received messages and bytes; pre-posts receives at start.
    struct Sink {
        recvs: u64,
        bytes: u64,
        last_at: SimTime,
    }

    impl crate::world::App for Sink {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let qp = ctx.create_qp(Transport::Rc);
            for i in 0..4096 {
                ctx.post_recv(qp, rperf_verbs::RecvWr::new(WrId(i), 1 << 20));
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
            if cqe.opcode == CqeOpcode::Recv {
                self.recvs += 1;
                self.bytes += cqe.bytes;
                self.last_at = ctx.now();
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// (per-sender last completion, per-sink (recvs, bytes, last arrival)).
    type Fingerprint = (Vec<SimTime>, Vec<(u64, u64, SimTime)>);

    /// 4 hosts stream to 4 hosts through one switch; returns a result
    /// fingerprint that any conforming engine must reproduce exactly.
    fn incast_fingerprint(cfg: ClusterConfig, shards: usize) -> Fingerprint {
        let senders = 4usize;
        let fabric = Fabric::single_switch(cfg, 2 * senders, 11);
        let horizon = SimTime::from_us(500);
        let extract = |sim_apps: &dyn Fn(usize) -> (SimTime, (u64, u64, SimTime))| {
            let mut sends = Vec::new();
            let mut sinks = Vec::new();
            for i in 0..senders {
                let (s, k) = sim_apps(i);
                sends.push(s);
                sinks.push(k);
            }
            (sends, sinks)
        };
        if shards == 0 {
            // The sequential reference engine.
            let mut sim = Sim::new(fabric);
            for i in 0..senders {
                sim.add_app(
                    i,
                    Box::new(Streamer::new(senders + i, 1024 + 512 * i as u64, 40)),
                );
                sim.add_app(
                    senders + i,
                    Box::new(Sink {
                        recvs: 0,
                        bytes: 0,
                        last_at: SimTime::ZERO,
                    }),
                );
            }
            sim.start();
            sim.run_until(horizon);
            extract(&|i| {
                let s = sim.app_as::<Streamer>(i).last_done;
                let k = sim.app_as::<Sink>(senders + i);
                (s, (k.recvs, k.bytes, k.last_at))
            })
        } else {
            let mut sim = ShardedSim::new(fabric, shards);
            for i in 0..senders {
                sim.add_app(
                    i,
                    Box::new(Streamer::new(senders + i, 1024 + 512 * i as u64, 40)),
                );
                sim.add_app(
                    senders + i,
                    Box::new(Sink {
                        recvs: 0,
                        bytes: 0,
                        last_at: SimTime::ZERO,
                    }),
                );
            }
            sim.start();
            sim.run_until(horizon);
            assert_eq!(sim.packets_live(), 0, "packets leaked across shards");
            extract(&|i| {
                let s = sim.app_as::<Streamer>(i).last_done;
                let k = sim.app_as::<Sink>(senders + i);
                (s, (k.recvs, k.bytes, k.last_at))
            })
        }
    }

    #[test]
    fn sharded_matches_sequential_engine() {
        for cfg in [ClusterConfig::hardware, ClusterConfig::omnet_simulator] {
            let reference = incast_fingerprint(cfg(), 0);
            assert!(
                reference.1.iter().all(|&(recvs, _, _)| recvs == 40),
                "reference run must complete: {reference:?}"
            );
            for shards in [1, 2, 3, 4, 9] {
                let sharded = incast_fingerprint(cfg(), shards);
                assert_eq!(
                    sharded, reference,
                    "shards={shards} diverged from the sequential engine"
                );
            }
        }
    }

    #[test]
    fn sharded_run_is_reproducible() {
        let a = incast_fingerprint(ClusterConfig::hardware(), 4);
        let b = incast_fingerprint(ClusterConfig::hardware(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_budget_interrupts_at_window_granularity() {
        let fabric = Fabric::single_switch(ClusterConfig::hardware(), 4, 5);
        let mut sim = ShardedSim::new(fabric, 2);
        sim.add_app(0, Box::new(Streamer::new(2, 4096, 200)));
        sim.add_app(1, Box::new(Streamer::new(3, 4096, 200)));
        sim.add_app(
            2,
            Box::new(Sink {
                recvs: 0,
                bytes: 0,
                last_at: SimTime::ZERO,
            }),
        );
        sim.add_app(
            3,
            Box::new(Sink {
                recvs: 0,
                bytes: 0,
                last_at: SimTime::ZERO,
            }),
        );
        sim.start();
        let out = sim.run_until_budgeted(SimTime::from_us(10_000), 500, 0, &mut || false);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert!(
            sim.events_processed() >= 500,
            "budget stop before the floor: {}",
            sim.events_processed()
        );
        // Resumable: the rest of the run completes.
        let out = sim.run_until_budgeted(SimTime::from_us(10_000), u64::MAX, 0, &mut || false);
        assert_eq!(out, RunOutcome::QueueDrained);
        assert_eq!(sim.app_as::<Sink>(2).recvs, 200);
        assert_eq!(sim.app_as::<Sink>(3).recvs, 200);
    }

    #[test]
    fn single_shard_uses_unbounded_lookahead() {
        let fabric = Fabric::direct_pair(ClusterConfig::hardware(), 3);
        let sim = ShardedSim::new(fabric, 1);
        assert_eq!(sim.shards(), 1);
        assert_eq!(sim.lookahead(), Lookahead::unbounded());
    }

    #[test]
    fn partitioner_balances_and_is_deterministic() {
        // 9 hosts (weight 1) + one 9-port switch (weight 9) over 4 bins:
        // the switch must sit alone-ish on the first bin.
        let mut weights = vec![1u64; 9];
        weights.push(9);
        let a = partition_devices(&weights, 4);
        let b = partition_devices(&weights, 4);
        assert_eq!(a, b);
        assert_eq!(a[9], 0, "heaviest device goes to bin 0");
        let mut load = [0u64; 4];
        for (d, &s) in a.iter().enumerate() {
            load[s as usize] += weights[d];
        }
        assert_eq!(load.iter().sum::<u64>(), 18);
        assert!(
            load.iter().all(|&l| l <= 9),
            "no bin may exceed the heaviest device: {load:?}"
        );
    }

    #[test]
    fn partitioner_single_shard_collapses() {
        assert_eq!(partition_devices(&[3, 1, 1], 1), vec![0, 0, 0]);
    }

    #[test]
    fn emit_key_orders_by_chronology_then_device() {
        let at = SimTime::from_ns(100);
        // Emitted earlier (larger delta) sorts first.
        let early = emit_key(at, SimTime::from_ns(10), 7, 0);
        let late = emit_key(at, SimTime::from_ns(90), 3, 0);
        assert!(early < late, "chronology dominates device id");
        // Same emission tick: device id breaks the tie.
        let dev3 = emit_key(at, SimTime::from_ns(50), 3, 0);
        let dev7 = emit_key(at, SimTime::from_ns(50), 7, 0);
        assert!(dev3 < dev7);
        // Same tick and device: emission counter orders.
        let first = emit_key(at, SimTime::from_ns(50), 3, 0);
        let second = emit_key(at, SimTime::from_ns(50), 3, 1);
        assert!(first < second);
    }

    #[test]
    fn key_slot_resets_per_tick() {
        let mut slot = KeySlot::default();
        assert_eq!(slot.next(SimTime::from_ns(1)), 0);
        assert_eq!(slot.next(SimTime::from_ns(1)), 1);
        assert_eq!(slot.next(SimTime::from_ns(2)), 0);
    }
}
