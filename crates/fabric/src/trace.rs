//! Packet-level tracing.
//!
//! When enabled on a [`crate::Sim`], the world records every packet
//! arrival (at switches and hosts) and every completion delivery. The
//! records reconstruct per-packet *journeys* — injection, each switch
//! hop, final delivery — which is how one answers "where has my time
//! gone?" for a single probe (the question behind the paper's Section
//! III, citing Zilberman et al.).

use rperf_model::ids::PacketId;
use rperf_model::PortId;
use rperf_sim::SimTime;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// A traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet's first bit reached a switch ingress.
    SwitchIngress {
        /// The switch.
        switch: usize,
        /// The ingress port.
        ingress: PortId,
        /// The packet.
        packet: PacketId,
        /// Payload bytes.
        payload: u64,
    },
    /// A packet's last bit reached a host RNIC.
    HostArrival {
        /// The node.
        node: usize,
        /// The packet.
        packet: PacketId,
        /// Payload bytes.
        payload: u64,
    },
    /// A completion became visible to an application.
    Completion {
        /// The node.
        node: usize,
        /// The application-assigned work-request id.
        wr_id: u64,
    },
}

/// A bounded trace buffer.
///
/// Recording stops (and counts drops) once `capacity` records are held,
/// so tracing a long run cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord { at, event });
    }

    /// All records, in simulation order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The journey of one packet: its arrival records in order.
    pub fn journey(&self, packet: PacketId) -> Vec<TraceRecord> {
        self.records
            .iter()
            .filter(|r| match r.event {
                TraceEvent::SwitchIngress { packet: p, .. }
                | TraceEvent::HostArrival { packet: p, .. } => p == packet,
                TraceEvent::Completion { .. } => false,
            })
            .copied()
            .collect()
    }

    /// Every packet id seen, in first-appearance order.
    pub fn packets(&self) -> Vec<PacketId> {
        let mut seen = Vec::new();
        for r in &self.records {
            let p = match r.event {
                TraceEvent::SwitchIngress { packet, .. }
                | TraceEvent::HostArrival { packet, .. } => packet,
                TraceEvent::Completion { .. } => continue,
            };
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        seen
    }

    /// Hop count (switch ingresses) of one packet's journey.
    pub fn hop_count(&self, packet: PacketId) -> usize {
        self.journey(packet)
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::SwitchIngress { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_ns(at_ns),
            event,
        }
    }

    #[test]
    fn journey_filters_and_orders() {
        let mut t = Tracer::new(16);
        let p1 = PacketId::new(1);
        let p2 = PacketId::new(2);
        t.record(
            SimTime::from_ns(10),
            TraceEvent::SwitchIngress {
                switch: 0,
                ingress: PortId::new(1),
                packet: p1,
                payload: 64,
            },
        );
        t.record(
            SimTime::from_ns(15),
            TraceEvent::SwitchIngress {
                switch: 0,
                ingress: PortId::new(2),
                packet: p2,
                payload: 64,
            },
        );
        t.record(
            SimTime::from_ns(20),
            TraceEvent::HostArrival {
                node: 3,
                packet: p1,
                payload: 64,
            },
        );
        let j = t.journey(p1);
        assert_eq!(j.len(), 2);
        assert_eq!(j[0].at, SimTime::from_ns(10));
        assert_eq!(j[1].at, SimTime::from_ns(20));
        assert_eq!(t.hop_count(p1), 1);
        assert_eq!(t.packets(), vec![p1, p2]);
        let _ = rec(0, TraceEvent::Completion { node: 0, wr_id: 0 });
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut t = Tracer::new(2);
        for i in 0..5u64 {
            t.record(
                SimTime::from_ns(i),
                TraceEvent::Completion { node: 0, wr_id: i },
            );
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
    }
}
