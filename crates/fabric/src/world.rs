//! The event world: device event routing and the application layer.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};

use rperf_host::{Tsc, TscClock};
use rperf_model::{ClusterConfig, Lid, PacketRef, PortId, QpNum, Transport, VirtualLane};
use rperf_rnic::RnicAction;
use rperf_sim::{
    run, run_budgeted, EventQueue, RunOutcome, SimDuration, SimTime, StopCondition, World,
};
use rperf_switch::SwitchAction;
use rperf_verbs::{Cqe, RecvWr, SendWr, VerbsError};

use crate::topology::{Endpoint, Fabric};
use crate::trace::{TraceEvent, Tracer};

/// An event flowing through the assembled fabric.
///
/// Packet events carry [`PacketRef`] handles into the fabric's
/// [`rperf_model::PacketSlab`]; the packet body is allocated once at
/// injection and never copied per hop.
///
/// Node and switch indices are stored as `u32` rather than `usize`: the
/// enum sits inside every timer-wheel entry, and the narrower fields keep
/// the hot packet/wake variants to a single cache line's worth of entry
/// during cascade copies. (A fabric with 2³² nodes is far beyond any
/// scenario in the paper.)
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// An RNIC's self-scheduled wake-up.
    RnicWake(u32),
    /// A packet's last bit reaches an RNIC.
    RnicPacket {
        /// Destination node.
        node: u32,
        /// The packet.
        packet: PacketRef,
    },
    /// Flow-control credits reach an RNIC.
    RnicCredit {
        /// The node.
        node: u32,
        /// Virtual lane.
        vl: VirtualLane,
        /// Returned bytes.
        bytes: u64,
    },
    /// A packet's first bit reaches a switch ingress (cut-through).
    SwitchPacket {
        /// The switch.
        switch: u32,
        /// Ingress port.
        ingress: PortId,
        /// The packet.
        packet: PacketRef,
    },
    /// A switch egress wake-up.
    SwitchWake {
        /// The switch.
        switch: u32,
        /// Egress port to re-arbitrate.
        egress: PortId,
    },
    /// Credits return to a switch egress from its downstream peer.
    SwitchCredit {
        /// The switch.
        switch: u32,
        /// The egress port the credits apply to.
        egress: PortId,
        /// Virtual lane.
        vl: VirtualLane,
        /// Returned bytes.
        bytes: u64,
    },
    /// A completion becomes visible to the application on `node`.
    AppCqe {
        /// The node.
        node: u32,
        /// The completion.
        cqe: Cqe,
    },
    /// An application timer fires.
    AppTimer {
        /// The node whose app set the timer.
        node: u32,
        /// Opaque token chosen by the app.
        token: u64,
    },
}

/// The application interface: measurement tools and traffic generators
/// implement this and are attached to nodes with [`Sim::add_app`].
///
/// Apps are `Send` so a sharded run ([`crate::ShardedSim`]) can move each
/// node's app to the worker thread that owns its shard; apps hold only
/// their own measurement state, so this costs implementations nothing.
pub trait App: Send {
    /// Called once when the simulation starts.
    fn start(&mut self, ctx: &mut Ctx<'_>);

    /// Called when a completion becomes visible on this node.
    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Downcasting hook for result extraction after a run.
    fn as_any(&self) -> &dyn Any;
}

/// The engine behind a [`Ctx`]: the sequential engine hands apps the
/// whole fabric; the sharded engine hands them only their shard's slice
/// (see [`crate::shard`]). Apps cannot observe the difference — the
/// `Ctx` surface is identical and, by construction, so are the results.
enum CtxBackend<'a> {
    Full {
        fabric: &'a mut Fabric,
        q: &'a mut EventQueue<FabricEvent>,
        /// Scratch buffer for device actions, reused across posts so the
        /// verbs hot path performs no per-call allocation.
        out: &'a mut Vec<RnicAction>,
    },
    Shard(crate::shard::ShardEnv<'a>),
}

/// The app's window into the fabric.
pub struct Ctx<'a> {
    now: SimTime,
    node: usize,
    backend: CtxBackend<'a>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl<'a> Ctx<'a> {
    /// Wraps the sharded backend (constructed by `Domain::with_app`).
    pub(crate) fn sharded(now: SimTime, node: usize, env: crate::shard::ShardEnv<'a>) -> Self {
        Ctx {
            now,
            node,
            backend: CtxBackend::Shard(env),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this app runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The LID of any node.
    pub fn lid_of(&self, node: usize) -> Lid {
        match &self.backend {
            CtxBackend::Full { fabric, .. } => fabric.lid_of(node),
            CtxBackend::Shard(env) => env.lid_of(node),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        match &self.backend {
            CtxBackend::Full { fabric, .. } => fabric.config(),
            CtxBackend::Shard(env) => env.config(),
        }
    }

    /// This host's TSC clock.
    pub fn clock(&self) -> &TscClock {
        match &self.backend {
            CtxBackend::Full { fabric, .. } => fabric.clock(self.node),
            CtxBackend::Shard(env) => env.clock(),
        }
    }

    /// Reads this host's TSC at the current instant.
    pub fn read_tsc(&self) -> Tsc {
        self.clock().read(self.now)
    }

    /// Creates a queue pair on this node's RNIC.
    pub fn create_qp(&mut self, transport: Transport) -> QpNum {
        match &mut self.backend {
            CtxBackend::Full { fabric, .. } => fabric.rnic_mut(self.node).create_qp(transport),
            CtxBackend::Shard(env) => env.create_qp(transport),
        }
    }

    /// Posts a send work request on this node's RNIC.
    ///
    /// # Errors
    ///
    /// Propagates verbs validation errors.
    pub fn post_send(&mut self, qp: QpNum, wr: SendWr) -> Result<(), VerbsError> {
        match &mut self.backend {
            CtxBackend::Full { fabric, q, out } => {
                let fabric = &mut **fabric;
                fabric.rnics[self.node].post_send(self.now, qp, wr, &mut fabric.slab, out)?;
                apply_rnic_actions(fabric, q, self.node, self.now, out);
                Ok(())
            }
            CtxBackend::Shard(env) => env.post_send(self.node, self.now, qp, wr),
        }
    }

    /// Posts a batch of send work requests with one doorbell.
    ///
    /// # Errors
    ///
    /// If any work request fails validation, nothing is enqueued.
    pub fn post_send_batch(&mut self, qp: QpNum, wrs: Vec<SendWr>) -> Result<(), VerbsError> {
        match &mut self.backend {
            CtxBackend::Full { fabric, q, out } => {
                let fabric = &mut **fabric;
                fabric.rnics[self.node].post_send_batch(
                    self.now,
                    qp,
                    wrs,
                    &mut fabric.slab,
                    out,
                )?;
                apply_rnic_actions(fabric, q, self.node, self.now, out);
                Ok(())
            }
            CtxBackend::Shard(env) => env.post_send_batch(self.node, self.now, qp, wrs),
        }
    }

    /// Pre-posts a receive buffer.
    pub fn post_recv(&mut self, qp: QpNum, wr: RecvWr) {
        match &mut self.backend {
            CtxBackend::Full { fabric, .. } => fabric.rnic_mut(self.node).post_recv(qp, wr),
            CtxBackend::Shard(env) => env.post_recv(qp, wr),
        }
    }

    /// Schedules an [`App::on_timer`] callback `delay` from now.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        match &mut self.backend {
            CtxBackend::Full { q, .. } => q.schedule(
                self.now + delay,
                FabricEvent::AppTimer {
                    node: self.node as u32,
                    token,
                },
            ),
            CtxBackend::Shard(env) => env.set_timer(self.node, self.now, delay, token),
        }
    }
}

/// Routes one RNIC's pending actions into the event queue, draining the
/// caller's scratch buffer in place (no per-call allocation).
fn apply_rnic_actions(
    fabric: &mut Fabric,
    q: &mut EventQueue<FabricEvent>,
    node: usize,
    now: SimTime,
    actions: &mut Vec<RnicAction>,
) {
    let prop = fabric.cfg.link.propagation;
    let peer = fabric.rnic_peer[node];
    for a in actions.drain(..) {
        match a {
            RnicAction::Wake { at } => q.schedule(at, FabricEvent::RnicWake(node as u32)),
            RnicAction::Transmit { packet, serialize } => match peer {
                Endpoint::Rnic(j) => q.schedule(
                    now + serialize + prop,
                    FabricEvent::RnicPacket {
                        node: j as u32,
                        packet,
                    },
                ),
                Endpoint::SwitchPort(s, p) => q.schedule(
                    now + prop,
                    FabricEvent::SwitchPacket {
                        switch: s as u32,
                        ingress: p,
                        packet,
                    },
                ),
            },
            RnicAction::ReturnCredit { vl, bytes, after } => match peer {
                Endpoint::Rnic(j) => q.schedule(
                    now + after + prop,
                    FabricEvent::RnicCredit {
                        node: j as u32,
                        vl,
                        bytes,
                    },
                ),
                Endpoint::SwitchPort(s, p) => q.schedule(
                    now + after + prop,
                    FabricEvent::SwitchCredit {
                        switch: s as u32,
                        egress: p,
                        vl,
                        bytes,
                    },
                ),
            },
            RnicAction::Complete { cqe } => q.schedule(
                cqe.visible_at.max(now),
                FabricEvent::AppCqe {
                    node: node as u32,
                    cqe,
                },
            ),
        }
    }
}

/// Routes one switch's pending actions into the event queue, draining the
/// caller's scratch buffer in place (no per-call allocation).
fn apply_switch_actions(
    fabric: &mut Fabric,
    q: &mut EventQueue<FabricEvent>,
    switch: usize,
    now: SimTime,
    actions: &mut Vec<SwitchAction>,
) {
    let prop = fabric.cfg.link.propagation;
    for a in actions.drain(..) {
        match a {
            SwitchAction::Wake { egress, at } => q.schedule(
                at,
                FabricEvent::SwitchWake {
                    switch: switch as u32,
                    egress,
                },
            ),
            SwitchAction::Transmit {
                egress,
                packet,
                start_after,
                serialize,
            } => match fabric.switch_peer[switch][egress.index()] {
                Some(Endpoint::Rnic(j)) => q.schedule(
                    now + start_after + serialize + prop,
                    FabricEvent::RnicPacket {
                        node: j as u32,
                        packet,
                    },
                ),
                Some(Endpoint::SwitchPort(s2, p2)) => q.schedule(
                    now + start_after + prop,
                    FabricEvent::SwitchPacket {
                        switch: s2 as u32,
                        ingress: p2,
                        packet,
                    },
                ),
                None => {
                    // A topology-construction bug: drop the packet and let
                    // the slab leak check flag it instead of aborting a run.
                    debug_assert!(false, "switch {switch} transmits on unconnected {egress}");
                }
            },
            SwitchAction::ReturnCredit { ingress, vl, bytes } => {
                match fabric.switch_peer[switch][ingress.index()] {
                    Some(Endpoint::Rnic(j)) => q.schedule(
                        now + prop,
                        FabricEvent::RnicCredit {
                            node: j as u32,
                            vl,
                            bytes,
                        },
                    ),
                    Some(Endpoint::SwitchPort(s2, p2)) => q.schedule(
                        now + prop,
                        FabricEvent::SwitchCredit {
                            switch: s2 as u32,
                            egress: p2,
                            vl,
                            bytes,
                        },
                    ),
                    None => {
                        debug_assert!(
                            false,
                            "switch {switch} returns credit on unconnected {ingress}"
                        );
                    }
                }
            }
        }
    }
}

struct WorldState {
    fabric: Fabric,
    /// One optional app per node (taken out during callbacks).
    apps: Vec<Option<Box<dyn App>>>,
    tracer: Option<Tracer>,
    /// Scratch buffers for device actions, drained by the `apply_*`
    /// routers every event so the hot loop never allocates.
    rnic_out: Vec<RnicAction>,
    switch_out: Vec<SwitchAction>,
    /// When set, [`World::handle`] drains every queued event that shares
    /// the current timestamp in the same call (batched link delivery).
    /// Off for budgeted runs, whose event accounting counts loop-level
    /// pops.
    batch: bool,
}

impl World for WorldState {
    type Event = FabricEvent;

    fn handle(&mut self, now: SimTime, event: FabricEvent, q: &mut EventQueue<FabricEvent>) {
        self.handle_one(now, event, q);
        if self.batch {
            // Batched link delivery: every event at this exact timestamp
            // (including zero-delay events scheduled while draining) is
            // dispatched here, skipping the run loop's per-event stop
            // check and virtual dispatch. Pop order is identical to the
            // unbatched loop — (time, seq) FIFO — so results are
            // bit-identical.
            while let Some(next) = q.pop_if_at(now) {
                self.handle_one(now, next, q);
            }
        }
    }
}

impl WorldState {
    #[inline]
    fn handle_one(&mut self, now: SimTime, event: FabricEvent, q: &mut EventQueue<FabricEvent>) {
        #[cfg(feature = "sim-prof")]
        let prof_kind = crate::prof::kind_of(&event);
        #[cfg(feature = "sim-prof")]
        let prof_start = std::time::Instant::now();
        if let Some(tracer) = &mut self.tracer {
            // Copy the traced fields out of the slab before the handlers
            // below consume the packet.
            match &event {
                FabricEvent::SwitchPacket {
                    switch,
                    ingress,
                    packet,
                } => {
                    let p = self.fabric.slab.get(*packet);
                    tracer.record(
                        now,
                        TraceEvent::SwitchIngress {
                            switch: *switch as usize,
                            ingress: *ingress,
                            packet: p.id,
                            payload: p.payload,
                        },
                    )
                }
                FabricEvent::RnicPacket { node, packet } => {
                    let p = self.fabric.slab.get(*packet);
                    tracer.record(
                        now,
                        TraceEvent::HostArrival {
                            node: *node as usize,
                            packet: p.id,
                            payload: p.payload,
                        },
                    )
                }
                FabricEvent::AppCqe { node, cqe } => tracer.record(
                    now,
                    TraceEvent::Completion {
                        node: *node as usize,
                        wr_id: cqe.wr_id.0,
                    },
                ),
                _ => {}
            }
        }
        // Split field borrows: the device gets `&mut` while the slab and
        // the scratch action buffer are used alongside it — all disjoint
        // fields. Hot packet/wake arms come first.
        let fabric = &mut self.fabric;
        match event {
            FabricEvent::SwitchPacket {
                switch,
                ingress,
                packet,
            } => {
                let switch = switch as usize;
                fabric.switches[switch].packet_arrival(
                    now,
                    ingress,
                    packet,
                    &fabric.slab,
                    &mut self.switch_out,
                );
                apply_switch_actions(fabric, q, switch, now, &mut self.switch_out);
            }
            FabricEvent::SwitchWake { switch, egress } => {
                let switch = switch as usize;
                fabric.switches[switch].egress_wake(now, egress, &mut self.switch_out);
                apply_switch_actions(fabric, q, switch, now, &mut self.switch_out);
            }
            FabricEvent::RnicPacket { node, packet } => {
                let node = node as usize;
                fabric.rnics[node].packet_arrival(
                    now,
                    packet,
                    &mut fabric.slab,
                    &mut self.rnic_out,
                );
                apply_rnic_actions(fabric, q, node, now, &mut self.rnic_out);
            }
            FabricEvent::RnicWake(node) => {
                let idx = node as usize;
                // Busy-wire re-arm fast path: when the wake would only
                // reschedule itself (the dominant event in bandwidth-bound
                // runs), skip the action buffer entirely.
                if let Some(at) = fabric.rnics[idx].wake_rearm_only(now) {
                    q.schedule(at, FabricEvent::RnicWake(node));
                } else {
                    fabric.rnics[idx].wake(now, &fabric.slab, &mut self.rnic_out);
                    apply_rnic_actions(fabric, q, idx, now, &mut self.rnic_out);
                }
            }
            FabricEvent::SwitchCredit {
                switch,
                egress,
                vl,
                bytes,
            } => {
                let switch = switch as usize;
                fabric.switches[switch].credit_from_downstream(
                    now,
                    egress,
                    vl,
                    bytes,
                    &mut self.switch_out,
                );
                apply_switch_actions(fabric, q, switch, now, &mut self.switch_out);
            }
            FabricEvent::RnicCredit { node, vl, bytes } => {
                let node = node as usize;
                fabric.rnics[node].credit_from_peer(
                    now,
                    vl,
                    bytes,
                    &fabric.slab,
                    &mut self.rnic_out,
                );
                apply_rnic_actions(fabric, q, node, now, &mut self.rnic_out);
            }
            FabricEvent::AppCqe { node, cqe } => {
                self.with_app(node as usize, now, q, |app, ctx| app.on_cqe(ctx, cqe));
            }
            FabricEvent::AppTimer { node, token } => {
                self.with_app(node as usize, now, q, |app, ctx| app.on_timer(ctx, token));
            }
        }
        #[cfg(feature = "sim-prof")]
        crate::prof::record(prof_kind, prof_start.elapsed().as_nanos() as u64);
    }

    fn with_app<F>(&mut self, node: usize, now: SimTime, q: &mut EventQueue<FabricEvent>, f: F)
    where
        F: FnOnce(&mut dyn App, &mut Ctx<'_>),
    {
        let Some(mut app) = self.apps[node].take() else {
            return; // completion on a node without an app: dropped
        };
        {
            let mut ctx = Ctx {
                now,
                node,
                backend: CtxBackend::Full {
                    fabric: &mut self.fabric,
                    q,
                    out: &mut self.rnic_out,
                },
            };
            f(app.as_mut(), &mut ctx);
        }
        self.apps[node] = Some(app);
    }
}

/// A ready-to-run simulation: a fabric, its applications and the event
/// queue.
///
/// # Examples
///
/// See the `quickstart` example at the repository root, or any test in
/// `rperf-workloads`.
pub struct Sim {
    world: WorldState,
    q: EventQueue<FabricEvent>,
    started: bool,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("queued_events", &self.q.len())
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

/// Process-wide count of events handled by every [`Sim`] on any thread.
///
/// Parallel sweeps (`rperf-runner`) run many `Sim`s concurrently; the
/// relaxed atomic adds commute, so the total is deterministic even though
/// the interleaving is not. The bench report divides this by wall-clock
/// to track simulator throughput (events/sec) per figure.
static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);

/// Process-wide high-water mark of live packets in any [`Sim`]'s slab.
///
/// Updated (with a relaxed `fetch_max`) at the end of every `run_*` call;
/// the bench report records it as a peak-memory proxy for the packet
/// arena.
static SLAB_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of packet handles still live when a simulation
/// reached quiescence — every count here is a leak: with no events left,
/// no packet can still be in flight.
static PACKETS_LEAKED: AtomicU64 = AtomicU64::new(0);

/// Total events processed by all simulations in this process so far.
///
/// Snapshot before and after a workload and subtract to attribute events
/// to it (valid also when the workload runs on worker threads).
pub fn events_processed_total() -> u64 {
    EVENTS_PROCESSED.load(Ordering::Relaxed)
}

/// Highest number of simultaneously live packets observed in any
/// simulation's slab in this process.
pub fn slab_high_water_total() -> u64 {
    SLAB_HIGH_WATER.load(Ordering::Relaxed)
}

/// Total packet handles found still allocated at quiescence across all
/// simulations in this process (must stay 0; anything else is a leak in
/// the device models).
pub fn packets_leaked_total() -> u64 {
    PACKETS_LEAKED.load(Ordering::Relaxed)
}

/// Adds to the process-wide event counter (the sharded engine's
/// counterpart of the `fetch_add` in [`Sim::run_until`]).
pub(crate) fn note_events(n: u64) {
    EVENTS_PROCESSED.fetch_add(n, Ordering::Relaxed);
}

/// Raises the process-wide slab high-water mark.
pub(crate) fn note_slab_high_water(n: u64) {
    SLAB_HIGH_WATER.fetch_max(n, Ordering::Relaxed);
}

impl Sim {
    /// Wraps a fabric.
    pub fn new(fabric: Fabric) -> Self {
        let nodes = fabric.nodes();
        Sim {
            world: WorldState {
                fabric,
                apps: (0..nodes).map(|_| None).collect(),
                tracer: None,
                rnic_out: Vec::with_capacity(64),
                switch_out: Vec::with_capacity(64),
                batch: true,
            },
            // Pre-size the heap: converged-traffic runs keep on the order
            // of a few hundred events in flight per node, and one up-front
            // allocation keeps regrowth out of the pop/push hot loop.
            q: EventQueue::with_capacity((nodes * 256).max(1024)),
            started: false,
        }
    }

    /// Enables packet tracing with a bounded buffer of `capacity` records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.world.tracer = Some(Tracer::new(capacity));
    }

    /// The trace collected so far (if tracing is enabled).
    pub fn trace(&self) -> Option<&Tracer> {
        self.world.tracer.as_ref()
    }

    /// Attaches an app to a node (replacing any previous app).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist or the simulation already started.
    pub fn add_app(&mut self, node: usize, app: Box<dyn App>) {
        assert!(!self.started, "apps must be attached before start()");
        self.world.apps[node] = Some(app);
    }

    /// Calls every app's [`App::start`] (in node order).
    pub fn start(&mut self) {
        assert!(!self.started, "start() may only be called once");
        self.started = true;
        for node in 0..self.world.apps.len() {
            let now = self.q.now();
            let q = &mut self.q;
            self.world.with_app(node, now, q, |app, ctx| app.start(ctx));
        }
    }

    /// Runs until the horizon (exclusive) or until the queue drains.
    ///
    /// Packets still in the slab afterwards are *not* counted as leaks:
    /// stopping at a horizon legitimately strands in-flight traffic.
    pub fn run_until(&mut self, t: SimTime) {
        let before = self.q.popped();
        self.world.batch = true;
        run(&mut self.world, &mut self.q, StopCondition::At(t));
        EVENTS_PROCESSED.fetch_add(self.q.popped() - before, Ordering::Relaxed);
        SLAB_HIGH_WATER.fetch_max(
            self.world.fabric.slab.high_water() as u64,
            Ordering::Relaxed,
        );
    }

    /// Runs toward the horizon (exclusive) under an event budget and a
    /// cooperative cancellation hook; see [`rperf_sim::run_budgeted`].
    ///
    /// Events are dispatched in deterministic (time, seq) order across
    /// pause/resume boundaries, so an uninterrupted call is bit-identical
    /// to [`Sim::run_until`]; an interrupted one leaves the simulation
    /// resumable. The global
    /// events/slab accounting is updated either way, so throughput
    /// attribution stays correct for cancelled work too.
    pub fn run_until_budgeted(
        &mut self,
        t: SimTime,
        max_events: u64,
        check_every: u64,
        cancelled: &mut dyn FnMut() -> bool,
    ) -> RunOutcome {
        let before = self.q.popped();
        // Budgeted runs count events at the run loop: batching would let
        // `handle` pop past `max_events` between checks, so it is off.
        self.world.batch = false;
        let out = run_budgeted(
            &mut self.world,
            &mut self.q,
            t,
            max_events,
            check_every,
            cancelled,
        );
        EVENTS_PROCESSED.fetch_add(self.q.popped() - before, Ordering::Relaxed);
        SLAB_HIGH_WATER.fetch_max(
            self.world.fabric.slab.high_water() as u64,
            Ordering::Relaxed,
        );
        out
    }

    /// Runs until the event queue drains completely.
    ///
    /// At quiescence no packet can still be in flight, so any handle left
    /// in the slab is a leak; it is added to [`packets_leaked_total`].
    pub fn run_to_quiescence(&mut self) {
        let before = self.q.popped();
        self.world.batch = true;
        run(&mut self.world, &mut self.q, StopCondition::QueueEmpty);
        EVENTS_PROCESSED.fetch_add(self.q.popped() - before, Ordering::Relaxed);
        SLAB_HIGH_WATER.fetch_max(
            self.world.fabric.slab.high_water() as u64,
            Ordering::Relaxed,
        );
        let live = self.world.fabric.slab.live();
        if live > 0 {
            PACKETS_LEAKED.fetch_add(live as u64, Ordering::Relaxed);
        }
        #[cfg(feature = "sim-sanitizer")]
        debug_assert_eq!(
            live, 0,
            "sim-sanitizer: {live} packet(s) still in the slab at quiescence"
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Total events processed so far (simulator throughput diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.q.popped()
    }

    /// The fabric (for stats extraction).
    pub fn fabric(&self) -> &Fabric {
        &self.world.fabric
    }

    /// Mutable fabric access (pre-start configuration).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.world.fabric
    }

    /// Downcasts the app on `node` to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node has no app or the type does not match.
    pub fn app_as<T: App + 'static>(&self, node: usize) -> &T {
        self.world.apps[node]
            .as_ref()
            .expect("node has no app")
            .as_any()
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::{ClusterConfig, Verb};
    use rperf_verbs::{CqeOpcode, WrId};

    /// Sends one RC SEND at start; records completion times.
    struct OneShot {
        target: usize,
        payload: u64,
        qp: Option<QpNum>,
        send_done: Option<SimTime>,
    }

    impl OneShot {
        fn new(target: usize, payload: u64) -> Self {
            OneShot {
                target,
                payload,
                qp: None,
                send_done: None,
            }
        }
    }

    impl App for OneShot {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let qp = ctx.create_qp(Transport::Rc);
            self.qp = Some(qp);
            let wr = SendWr::new(WrId(1), Verb::Send, self.payload)
                .to(ctx.lid_of(self.target), QpNum::new(1));
            ctx.post_send(qp, wr).unwrap();
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
            if cqe.opcode == CqeOpcode::Send {
                self.send_done = Some(ctx.now());
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Counts received messages and bytes.
    struct Sink {
        recvs: u64,
        bytes: u64,
        last_at: SimTime,
    }

    impl Sink {
        fn new() -> Self {
            Sink {
                recvs: 0,
                bytes: 0,
                last_at: SimTime::ZERO,
            }
        }
    }

    impl App for Sink {
        fn start(&mut self, ctx: &mut Ctx<'_>) {
            let qp = ctx.create_qp(Transport::Rc);
            for i in 0..1024 {
                ctx.post_recv(qp, RecvWr::new(WrId(i), 1 << 20));
            }
        }

        fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
            if cqe.opcode == CqeOpcode::Recv {
                self.recvs += 1;
                self.bytes += cqe.bytes;
                self.last_at = ctx.now();
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn run_pair(through_switch: bool, payload: u64) -> (SimTime, u64) {
        let cfg = ClusterConfig::omnet_simulator();
        let fabric = if through_switch {
            Fabric::single_switch(cfg, 2, 7)
        } else {
            Fabric::direct_pair(cfg, 7)
        };
        let mut sim = Sim::new(fabric);
        sim.add_app(0, Box::new(OneShot::new(1, payload)));
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_to_quiescence();
        let sender = sim.app_as::<OneShot>(0);
        let sink = sim.app_as::<Sink>(1);
        assert_eq!(sink.recvs, 1);
        assert_eq!(sink.bytes, payload);
        (sender.send_done.expect("send completed"), sink.bytes)
    }

    #[test]
    fn end_to_end_send_completes_direct() {
        let (done, bytes) = run_pair(false, 64);
        assert_eq!(bytes, 64);
        // Sanity: completes within a few microseconds.
        assert!(done < SimTime::from_us(5), "done at {done}");
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn switch_adds_latency() {
        let (direct, _) = run_pair(false, 64);
        let (switched, _) = run_pair(true, 64);
        let delta = switched - direct;
        // One switch traversal per direction: roughly 2 × (pipeline + prop).
        assert!(
            delta > SimDuration::from_ns(300),
            "switch should add ≥ 300 ns to the RTT, added {delta}"
        );
        assert!(
            delta < SimDuration::from_ns(800),
            "switch delta implausibly large: {delta}"
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let (a, _) = run_pair(true, 4096);
        let (b, _) = run_pair(true, 4096);
        assert_eq!(a, b, "same seed must give identical timing");
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            fired: Vec<u64>,
        }
        impl App for TimerApp {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_ns(300), 3);
                ctx.set_timer(SimDuration::from_ns(100), 1);
                ctx.set_timer(SimDuration::from_ns(200), 2);
            }
            fn on_cqe(&mut self, _: &mut Ctx<'_>, _: Cqe) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut sim = Sim::new(Fabric::direct_pair(ClusterConfig::omnet_simulator(), 1));
        sim.add_app(0, Box::new(TimerApp { fired: vec![] }));
        sim.start();
        sim.run_to_quiescence();
        assert_eq!(sim.app_as::<TimerApp>(0).fired, vec![1, 2, 3]);
    }

    #[test]
    fn bulk_transfer_through_switch_reaches_wire_rate() {
        // 200 × 4096 B messages: the sink's goodput should be close to the
        // wire-limited prediction.
        struct Blaster {
            target: usize,
            outstanding: u64,
            remaining: u64,
            qp: Option<QpNum>,
        }
        impl App for Blaster {
            fn start(&mut self, ctx: &mut Ctx<'_>) {
                let qp = ctx.create_qp(Transport::Rc);
                self.qp = Some(qp);
                let wrs: Vec<SendWr> = (0..self.outstanding)
                    .map(|i| {
                        SendWr::new(WrId(i), Verb::Send, 4096)
                            .to(ctx.lid_of(self.target), QpNum::new(1))
                    })
                    .collect();
                self.remaining -= self.outstanding;
                ctx.post_send_batch(qp, wrs).unwrap();
            }
            fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
                if cqe.opcode == CqeOpcode::Send && self.remaining > 0 {
                    self.remaining -= 1;
                    let wr = SendWr::new(cqe.wr_id, Verb::Send, 4096)
                        .to(ctx.lid_of(self.target), QpNum::new(1));
                    ctx.post_send(self.qp.unwrap(), wr).unwrap();
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let cfg = ClusterConfig::omnet_simulator();
        let expected = rperf_model::analytic::wire_limited_goodput_gbps(&cfg, 4096);
        let mut sim = Sim::new(Fabric::single_switch(cfg, 2, 3));
        sim.add_app(
            0,
            Box::new(Blaster {
                target: 1,
                outstanding: 32,
                remaining: 200,
                qp: None,
            }),
        );
        sim.add_app(1, Box::new(Sink::new()));
        sim.start();
        sim.run_to_quiescence();
        let sink = sim.app_as::<Sink>(1);
        assert_eq!(sink.recvs, 200);
        let elapsed = sink.last_at - SimTime::ZERO;
        let gbps = sink.bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e9;
        assert!(
            gbps > expected * 0.85,
            "goodput {gbps:.1} Gbps too far below wire limit {expected:.1}"
        );
        assert!(
            gbps <= expected * 1.02,
            "goodput {gbps:.1} above wire limit"
        );
    }
}
