//! Per-event vs batched link delivery through the full fabric.
//!
//! The same converged-traffic workload (8 senders incast to one sink
//! through a single switch — the regime of Figs. 11-12) is run twice:
//! once with the run loop popping one event per `World::handle` call
//! (`run_until_budgeted` with an unreachable budget, the budgeted path
//! keeps batching off), and once with batched same-timestamp delivery
//! (`run_until`, the default). Both produce bit-identical results; the
//! difference is pure dispatch overhead.

use std::any::Any;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rperf_fabric::{App, Ctx, Fabric, Sim};
use rperf_model::{ClusterConfig, QpNum, Transport, Verb};
use rperf_sim::SimTime;
use rperf_verbs::{Cqe, CqeOpcode, RecvWr, SendWr, WrId};

const SENDERS: usize = 8;
const MESSAGES: u64 = 150;

/// Posts a window of sends and re-posts on each completion.
struct Blaster {
    target: usize,
    remaining: u64,
    qp: Option<QpNum>,
}

impl App for Blaster {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let qp = ctx.create_qp(Transport::Rc);
        self.qp = Some(qp);
        let wrs: Vec<SendWr> = (0..16)
            .map(|i| {
                SendWr::new(WrId(i), Verb::Send, 4096).to(ctx.lid_of(self.target), QpNum::new(1))
            })
            .collect();
        self.remaining -= wrs.len() as u64;
        ctx.post_send_batch(qp, wrs).unwrap();
    }

    fn on_cqe(&mut self, ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode == CqeOpcode::Send && self.remaining > 0 {
            self.remaining -= 1;
            let wr =
                SendWr::new(cqe.wr_id, Verb::Send, 4096).to(ctx.lid_of(self.target), QpNum::new(1));
            ctx.post_send(self.qp.unwrap(), wr).unwrap();
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Sink {
    recvs: u64,
}

impl App for Sink {
    fn start(&mut self, ctx: &mut Ctx<'_>) {
        let qp = ctx.create_qp(Transport::Rc);
        for i in 0..4096 {
            ctx.post_recv(qp, RecvWr::new(WrId(i), 1 << 20));
        }
    }

    fn on_cqe(&mut self, _ctx: &mut Ctx<'_>, cqe: Cqe) {
        if cqe.opcode == CqeOpcode::Recv {
            self.recvs += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

fn build_sim() -> Sim {
    let cfg = ClusterConfig::omnet_simulator();
    let mut sim = Sim::new(Fabric::single_switch(cfg, SENDERS + 1, 3));
    for s in 0..SENDERS {
        sim.add_app(
            s,
            Box::new(Blaster {
                target: SENDERS,
                remaining: MESSAGES,
                qp: None,
            }),
        );
    }
    sim.add_app(SENDERS, Box::new(Sink { recvs: 0 }));
    sim
}

fn run_batched() -> u64 {
    let mut sim = build_sim();
    sim.start();
    sim.run_to_quiescence();
    let recvs = sim.app_as::<Sink>(SENDERS).recvs;
    assert_eq!(recvs, SENDERS as u64 * MESSAGES);
    sim.events_processed()
}

fn run_per_event() -> u64 {
    let mut sim = build_sim();
    sim.start();
    // The budgeted path counts events at the run loop, so batching stays
    // off; the horizon/budget are set beyond the workload so it runs to
    // completion like the batched variant.
    let mut never = || false;
    sim.run_until_budgeted(SimTime::from_us(10_000_000), u64::MAX, u64::MAX, &mut never);
    let recvs = sim.app_as::<Sink>(SENDERS).recvs;
    assert_eq!(recvs, SENDERS as u64 * MESSAGES);
    sim.events_processed()
}

fn bench_delivery(c: &mut Criterion) {
    // Identical event streams, or the comparison is meaningless.
    assert_eq!(run_batched(), run_per_event());
    c.bench_function("link_delivery/per_event_incast8", |b| {
        b.iter(|| black_box(run_per_event()))
    });
    c.bench_function("link_delivery/batched_incast8", |b| {
        b.iter(|| black_box(run_batched()))
    });
}

criterion_group!(benches, bench_delivery);
criterion_main!(benches);
