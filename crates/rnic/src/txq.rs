//! Per-VL injection queues with ACK priority.

use std::collections::VecDeque;

use rperf_model::{PacketRef, VirtualLane};

/// One queued packet: a slab handle plus the metadata the injection scan
/// needs (lane and wire size), cached at enqueue so credit checks never
/// touch the packet slab.
#[derive(Debug, Clone, Copy)]
struct TxEntry {
    packet: PacketRef,
    vl: VirtualLane,
    wire: u64,
}

/// The RNIC's wire-injection stage: a high-priority ACK queue plus one
/// FIFO per virtual lane for data packets.
///
/// ACKs are tiny and latency-critical for the requester's completion path,
/// so real RNICs inject them ahead of queued data; the model does the same.
/// Data VLs are served round-robin among those with queued packets (a
/// single node rarely drives more than one VL, but the pretend-LSG
/// experiments make a node carry both SL0 and SL1 flows).
///
/// Packets live in the fabric's `PacketSlab`; the queues hold copyable
/// handles with the VL and wire size resolved at enqueue time.
///
/// # Examples
///
/// ```
/// use rperf_rnic::TxQueue;
///
/// let q = TxQueue::new(9);
/// assert!(q.is_empty());
/// assert_eq!(q.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TxQueue {
    acks: VecDeque<TxEntry>,
    data: Vec<VecDeque<TxEntry>>,
    cursor: usize,
}

impl TxQueue {
    /// Creates queues for `vls` virtual lanes.
    pub fn new(vls: u8) -> Self {
        TxQueue {
            acks: VecDeque::new(),
            data: (0..vls).map(|_| VecDeque::new()).collect(),
            cursor: 0,
        }
    }

    /// Queues an ACK/control packet (highest priority). `vl` is the lane
    /// its flow's service level maps to; `wire` its full wire size.
    pub fn push_ack(&mut self, packet: PacketRef, vl: VirtualLane, wire: u64) {
        self.acks.push_back(TxEntry { packet, vl, wire });
    }

    /// Queues a data packet on its virtual lane.
    ///
    /// # Panics
    ///
    /// Panics if `vl` is beyond the configured lane count.
    pub fn push_data(&mut self, vl: VirtualLane, packet: PacketRef, wire: u64) {
        self.data[vl.index()].push_back(TxEntry { packet, vl, wire });
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.acks.len() + self.data.iter().map(|q| q.len()).sum::<usize>()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Picks the next packet to inject: the oldest ACK if any, otherwise a
    /// round-robin scan of data VLs.
    ///
    /// `credit_ok(vl, wire_bytes)` consults the caller's credit ledger.
    /// Returns the packet handle, its VL and its wire size.
    pub fn pop_next<F>(&mut self, mut credit_ok: F) -> Option<(PacketRef, VirtualLane, u64)>
    where
        F: FnMut(VirtualLane, u64) -> bool,
    {
        // TxEntry is Copy: peek by value, then dequeue only on success.
        if let Some(e) = self.acks.front().copied() {
            if credit_ok(e.vl, e.wire) {
                self.acks.pop_front();
                return Some((e.packet, e.vl, e.wire));
            }
        }
        let lanes = self.data.len();
        for step in 0..lanes {
            let i = (self.cursor + step) % lanes;
            if let Some(e) = self.data[i].front().copied() {
                if credit_ok(e.vl, e.wire) {
                    self.data[i].pop_front();
                    self.cursor = (i + 1) % lanes;
                    return Some((e.packet, e.vl, e.wire));
                }
            }
        }
        None
    }

    /// Queued data packets on one lane.
    pub fn data_depth(&self, vl: VirtualLane) -> usize {
        self.data[vl.index()].len()
    }

    /// Queued ACKs.
    pub fn ack_depth(&self) -> usize {
        self.acks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::arena::PacketSlab;
    use rperf_model::ids::PacketId;
    use rperf_model::{
        FlowId, Lid, MsgId, Packet, PacketKind, QpNum, ServiceLevel, Transport, Verb,
    };
    use rperf_sim::SimTime;

    fn pkt(id: u64, kind: PacketKind) -> Packet {
        Packet {
            id: PacketId::new(id),
            flow: FlowId::new(0),
            msg: MsgId::new(id),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(0),
            sl: ServiceLevel::new(0),
            kind,
            payload: 64,
            overhead: 52,
            injected_at: SimTime::ZERO,
        }
    }

    fn data(id: u64) -> Packet {
        pkt(
            id,
            PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
        )
    }

    fn push_data(q: &mut TxQueue, slab: &mut PacketSlab, vl: u8, p: Packet) {
        let wire = p.wire_size();
        let h = slab.alloc(p);
        q.push_data(VirtualLane::new(vl), h, wire);
    }

    fn push_ack(q: &mut TxQueue, slab: &mut PacketSlab, p: Packet) {
        let wire = p.wire_size();
        let h = slab.alloc(p);
        q.push_ack(h, VirtualLane::new(0), wire);
    }

    #[test]
    fn acks_jump_the_data_queue() {
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(2);
        push_data(&mut q, &mut slab, 0, data(1));
        push_ack(&mut q, &mut slab, pkt(2, PacketKind::Ack));
        let (h, vl, _) = q.pop_next(|_, _| true).unwrap();
        assert_eq!(slab.get(h).id, PacketId::new(2));
        assert_eq!(vl, VirtualLane::new(0));
    }

    #[test]
    fn data_round_robin_across_vls() {
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(2);
        for i in 0..2 {
            push_data(&mut q, &mut slab, 0, data(i));
            push_data(&mut q, &mut slab, 1, data(10 + i));
        }
        let mut order = Vec::new();
        while let Some((h, _, _)) = q.pop_next(|_, _| true) {
            order.push(slab.get(h).id.raw());
        }
        assert_eq!(order, vec![0, 10, 1, 11]);
    }

    #[test]
    fn credits_can_veto_a_lane() {
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(2);
        push_data(&mut q, &mut slab, 0, data(1));
        push_data(&mut q, &mut slab, 1, data(2));
        // Only VL1 has credits.
        let (h, vl, _) = q.pop_next(|vl, _| vl == VirtualLane::new(1)).unwrap();
        assert_eq!(slab.get(h).id, PacketId::new(2));
        assert_eq!(vl, VirtualLane::new(1));
        // VL0 still blocked: nothing to pop.
        assert!(q.pop_next(|vl, _| vl == VirtualLane::new(1)).is_none());
        assert_eq!(q.data_depth(VirtualLane::new(0)), 1);
    }

    #[test]
    fn blocked_ack_blocks_nothing_else_on_other_lane() {
        // An ACK on a credit-starved VL0 must not stop VL1 data.
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(2);
        push_ack(&mut q, &mut slab, pkt(1, PacketKind::Ack));
        push_data(&mut q, &mut slab, 1, data(2));
        let (h, _, _) = q.pop_next(|vl, _| vl == VirtualLane::new(1)).unwrap();
        assert_eq!(slab.get(h).id, PacketId::new(2));
        assert_eq!(q.ack_depth(), 1);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = TxQueue::new(1);
        assert!(q.pop_next(|_, _| true).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn depth_queries() {
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(2);
        push_ack(&mut q, &mut slab, pkt(1, PacketKind::Ack));
        push_data(&mut q, &mut slab, 1, data(2));
        assert_eq!(q.ack_depth(), 1);
        assert_eq!(q.data_depth(VirtualLane::new(1)), 1);
        assert_eq!(q.data_depth(VirtualLane::new(0)), 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_reports_cached_wire_size() {
        let mut slab = PacketSlab::new();
        let mut q = TxQueue::new(1);
        let p = data(1);
        let expect = p.wire_size();
        push_data(&mut q, &mut slab, 0, p);
        let (h, _, wire) = q.pop_next(|_, _| true).unwrap();
        assert_eq!(wire, expect);
        assert_eq!(slab.get(h).wire_size(), expect);
    }
}
