//! The RNIC device state machine.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use rperf_model::arena::{PacketRef, PacketSlab};
use rperf_model::config::{LinkConfig, RnicConfig};
use rperf_model::ids::PacketId;
use rperf_model::{
    FlowId, Lid, LinkRate, MsgId, NodeId, Packet, PacketKind, QpNum, ServiceLevel, Transport, Verb,
    VirtualLane,
};
use rperf_sim::{SimDuration, SimRng, SimTime};
use rperf_switch::CreditLedger;
use rperf_verbs::{Cqe, CqeOpcode, QueuePair, RecvWr, SendWr, VerbsError, WrId};

use crate::txq::TxQueue;

/// An externally visible effect produced by the RNIC state machine.
#[derive(Debug, Clone)]
pub enum RnicAction {
    /// Ask to be woken (via [`Rnic::wake`]) at `at`.
    Wake {
        /// The wake-up instant.
        at: SimTime,
    },
    /// Begin transmitting `packet` on the port now; the last bit leaves
    /// `serialize` from now. The packet stays in the fabric's slab until
    /// the destination RNIC consumes it.
    Transmit {
        /// Handle to the packet in the fabric's slab.
        packet: PacketRef,
        /// Wire serialization time.
        serialize: SimDuration,
    },
    /// Return receive-buffer credits to the upstream peer, effective
    /// `after` from now (when the RX engine frees the buffer).
    ReturnCredit {
        /// The virtual lane.
        vl: VirtualLane,
        /// Freed bytes.
        bytes: u64,
        /// Delay until the buffer is actually freed.
        after: SimDuration,
    },
    /// A completion becomes visible to host software at `cqe.visible_at`
    /// (may be in the future: the completion DMA write is in flight).
    Complete {
        /// The completion entry.
        cqe: Cqe,
    },
}

/// Aggregate RNIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RnicStats {
    /// Data/control packets transmitted on the wire.
    pub tx_packets: u64,
    /// Wire bytes transmitted.
    pub tx_wire_bytes: u64,
    /// Payload bytes transmitted.
    pub tx_payload_bytes: u64,
    /// Packets received.
    pub rx_packets: u64,
    /// Payload bytes received.
    pub rx_payload_bytes: u64,
    /// ACKs generated.
    pub acks_sent: u64,
    /// ACKs consumed.
    pub acks_received: u64,
    /// Incoming SENDs that found an empty receive queue and were satisfied
    /// by an auto-posted buffer (the paper's tools keep RQs charged; this
    /// counter should stay 0 when applications pre-post properly).
    pub recv_autofills: u64,
    /// Loopback messages completed.
    pub loopbacks: u64,
}

#[derive(Debug, Clone, Copy)]
enum PendingTx {
    Data(VirtualLane, PacketRef, u64),
    Ack(VirtualLane, PacketRef, u64),
}

/// A pending-TX timer: `item` becomes injectable at `at`. Ordered by
/// `(at, seq)` with the comparison reversed so a max-[`BinaryHeap`] pops the
/// earliest timer first, FIFO within a timestamp — the same drain order the
/// previous `BTreeMap<SimTime, Vec<PendingTx>>` produced, without a `Vec`
/// allocation per distinct timestamp.
#[derive(Debug, Clone, Copy)]
struct TxTimer {
    at: SimTime,
    seq: u64,
    item: PendingTx,
}

impl PartialEq for TxTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for TxTimer {}

impl PartialOrd for TxTimer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TxTimer {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The RNIC device.
///
/// Pure state machine driven by five entry points: [`Rnic::post_send`] /
/// [`Rnic::post_send_batch`] (host side), [`Rnic::packet_arrival`] /
/// [`Rnic::credit_from_peer`] (wire side) and [`Rnic::wake`] (self-
/// scheduled). See the crate docs for the modelled pipelines.
///
/// Outbound packets are allocated into the caller's [`PacketSlab`] at
/// injection and travel the fabric as [`PacketRef`] handles; inbound
/// packets are consumed out of the slab on arrival.
#[derive(Debug)]
pub struct Rnic {
    node: NodeId,
    lid: Lid,
    cfg: Arc<RnicConfig>,
    data_rate: LinkRate,
    loop_rate: LinkRate,
    pcie_rate: LinkRate,
    rng: SimRng,
    /// QP table. Numbers are handed out densely from 1 by
    /// [`Rnic::create_qp`], so QP `n` lives at index `n - 1` and the hot
    /// per-packet and per-WR lookups cost an array index instead of a
    /// tree walk.
    qps: Vec<QueuePair>,
    next_msg: u64,
    next_pkt: u64,
    /// WQE engine busy horizon (the message-rate cap).
    engine_free: SimTime,
    /// Wire (SerDes) busy horizon.
    wire_free: SimTime,
    /// RX engine busy horizon.
    rx_free: SimTime,
    /// Monotone data-packet readiness horizon: a later WQE's packets may
    /// never reach the wire before an earlier WQE's (IB preserves order on
    /// a connection even when a small inline message skips the payload DMA
    /// a larger predecessor is still waiting on).
    tx_ready_horizon: SimTime,
    /// Monotone responder-delivery horizon: receive completions surface in
    /// arrival order even when a small message's payload DMA finishes
    /// before a larger predecessor's.
    rx_deliver_horizon: SimTime,
    /// Monotone ACK-generation horizon: IB acknowledgments are cumulative
    /// and ordered; per-packet processing jitter must not reorder them.
    ack_horizon: SimTime,
    txq: TxQueue,
    pending_tx: BinaryHeap<TxTimer>,
    /// FIFO tie-break for `pending_tx` timers at the same instant.
    pending_seq: u64,
    /// Credits held toward the downstream peer (switch ingress buffer or a
    /// directly attached RNIC's receive buffer).
    peer_credits: CreditLedger,
    /// Maps outstanding messages to their owning QP (for ACK routing).
    owner: BTreeMap<u64, u32>,
    /// Payload bytes accumulated per incoming message.
    rx_accum: BTreeMap<u64, u64>,
    stats: RnicStats,
}

impl Rnic {
    /// Builds an RNIC for `node` with address `lid`. Accepts the device
    /// configuration by value or pre-shared in an [`Arc`] — a fabric hands
    /// every node the same allocation.
    pub fn new(
        node: NodeId,
        lid: Lid,
        cfg: impl Into<Arc<RnicConfig>>,
        link: &LinkConfig,
        rng: SimRng,
    ) -> Self {
        let cfg = cfg.into();
        let data_rate = link.data_rate();
        let vls = cfg.vls;
        Rnic {
            loop_rate: data_rate.scaled(cfg.loopback_factor),
            pcie_rate: cfg.pcie_rate,
            data_rate,
            node,
            lid,
            rng,
            qps: Vec::new(),
            next_msg: 0,
            next_pkt: 0,
            engine_free: SimTime::ZERO,
            wire_free: SimTime::ZERO,
            rx_free: SimTime::ZERO,
            tx_ready_horizon: SimTime::ZERO,
            rx_deliver_horizon: SimTime::ZERO,
            ack_horizon: SimTime::ZERO,
            txq: TxQueue::new(vls),
            pending_tx: BinaryHeap::new(),
            pending_seq: 0,
            peer_credits: CreditLedger::unlimited(vls),
            owner: BTreeMap::new(),
            rx_accum: BTreeMap::new(),
            stats: RnicStats::default(),
            cfg,
        }
    }

    /// The node this RNIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The port's LID.
    pub fn lid(&self) -> Lid {
        self.lid
    }

    /// The device configuration.
    pub fn config(&self) -> &RnicConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> RnicStats {
        self.stats
    }

    /// Installs the credit grant advertised by the attached peer.
    pub fn set_peer_credits(&mut self, ledger: CreditLedger) {
        self.peer_credits = ledger;
    }

    /// The receive-buffer grant this RNIC advertises to its peer.
    pub fn advertised_credits(&self) -> CreditLedger {
        CreditLedger::new(self.cfg.vls, self.cfg.rx_buffer_bytes)
    }

    /// Creates a queue pair.
    pub fn create_qp(&mut self, transport: Transport) -> QpNum {
        let num = QpNum::new(self.qps.len() as u32 + 1);
        self.qps.push(QueuePair::new(num, transport));
        num
    }

    /// Looks up QP number `raw` (0 is the "no QP" sentinel and misses).
    #[inline]
    fn qp_slot(&self, raw: u32) -> Option<&QueuePair> {
        self.qps.get(raw.wrapping_sub(1) as usize)
    }

    #[inline]
    fn qp_slot_mut(&mut self, raw: u32) -> Option<&mut QueuePair> {
        self.qps.get_mut(raw.wrapping_sub(1) as usize)
    }

    /// Read access to a queue pair (diagnostics, tests).
    ///
    /// # Panics
    ///
    /// Panics if the QP does not exist.
    pub fn qp(&self, num: QpNum) -> &QueuePair {
        self.qp_slot(num.raw()).expect("unknown QP")
    }

    /// Pre-posts a receive buffer. Posting to an unknown QP is a harness
    /// bug: debug builds assert, release builds drop the buffer (the
    /// receive side then reports an autofill instead of corrupting state).
    pub fn post_recv(&mut self, qp: QpNum, wr: RecvWr) {
        let Some(qp) = self.qp_slot_mut(qp.raw()) else {
            debug_assert!(false, "post_recv on unknown QP");
            return;
        };
        qp.post_recv(wr);
    }

    fn alloc_msg(&mut self) -> MsgId {
        let id = ((self.node.raw() as u64) << 40) | self.next_msg;
        self.next_msg += 1;
        MsgId::new(id)
    }

    fn alloc_pkt(&mut self) -> PacketId {
        let id = ((self.node.raw() as u64) << 40) | self.next_pkt;
        self.next_pkt += 1;
        PacketId::new(id)
    }

    fn vl_of_sl(&self, sl: ServiceLevel) -> VirtualLane {
        self.cfg.sl2vl.vl_for(sl)
    }

    fn pcie_time(&self, bytes: u64) -> SimDuration {
        self.pcie_rate.serialize_time(bytes)
    }

    fn schedule_tx(&mut self, at: SimTime, item: PendingTx, out: &mut Vec<RnicAction>) {
        let seq = self.pending_seq;
        self.pending_seq += 1;
        self.pending_tx.push(TxTimer { at, seq, item });
        out.push(RnicAction::Wake { at });
    }

    /// Schedules an outbound data packet: allocates it into the slab and
    /// queues the handle with its lane and wire size.
    fn schedule_data(
        &mut self,
        at: SimTime,
        vl: VirtualLane,
        packet: Packet,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        let wire = packet.wire_size();
        let handle = slab.alloc(packet);
        self.schedule_tx(at, PendingTx::Data(vl, handle, wire), out);
    }

    /// Posts one send work request (one doorbell), appending resulting
    /// actions to `out`. Single-WR fast path: no batch `Vec` is built.
    ///
    /// # Errors
    ///
    /// Propagates verbs-layer validation errors (invalid verb/transport,
    /// oversized payload, unknown QP is a panic — a harness bug).
    pub fn post_send(
        &mut self,
        now: SimTime,
        qp_num: QpNum,
        wr: SendWr,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) -> Result<(), VerbsError> {
        let Some(qp) = self.qp_slot_mut(qp_num.raw()) else {
            debug_assert!(false, "post_send on unknown QP");
            return Ok(());
        };
        qp.post_send(wr)?;
        let wqe_at = now + self.cfg.mmio_post;
        let Some(wr) = self.qp_slot_mut(qp_num.raw()).and_then(QueuePair::pop_send) else {
            debug_assert!(false, "send queue lost a just-posted WR");
            return Ok(());
        };
        self.launch_wr(now, wqe_at, qp_num, wr, slab, out);
        Ok(())
    }

    /// Posts a batch of send work requests with a single doorbell —
    /// the batching optimization the paper's BSGs (Section VIII-A) and the
    /// pretend-LSG (Section VIII-C) use. Resulting actions are appended to
    /// `out`.
    ///
    /// # Errors
    ///
    /// If any work request fails validation, no work is enqueued.
    /// Posting on an unknown QP is a harness bug: debug builds assert,
    /// release builds drop the batch and append no actions.
    pub fn post_send_batch(
        &mut self,
        now: SimTime,
        qp_num: QpNum,
        wrs: Vec<SendWr>,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) -> Result<(), VerbsError> {
        // Validate everything up front.
        let Some(qp) = self.qp_slot_mut(qp_num.raw()) else {
            debug_assert!(false, "post_send_batch on unknown QP");
            return Ok(());
        };
        for wr in &wrs {
            qp.post_send(*wr)?;
        }
        let wqe_at = now + self.cfg.mmio_post;
        for _ in 0..wrs.len() {
            // launch_wr needs &mut self, so re-fetch the QP each round.
            let Some(wr) = self.qp_slot_mut(qp_num.raw()).and_then(QueuePair::pop_send) else {
                debug_assert!(false, "send queue lost a just-posted WR");
                break;
            };
            self.launch_wr(now, wqe_at, qp_num, wr, slab, out);
        }
        Ok(())
    }

    /// Runs one WR through the engine/DMA pipeline.
    fn launch_wr(
        &mut self,
        posted_at: SimTime,
        wqe_at: SimTime,
        qp_num: QpNum,
        wr: SendWr,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        let n_packets = if wr.verb == Verb::Read {
            1 // the READ request itself is a single header-only packet
        } else {
            self.cfg.packets_for(wr.payload)
        };
        let engine_start = wqe_at.max(self.engine_free);
        let engine_done = engine_start + self.cfg.engine_time(n_packets);
        self.engine_free = engine_done;

        let msg = self.alloc_msg();
        self.owner.insert(msg.raw(), qp_num.raw());
        let Some(qp) = self.qp_slot_mut(qp_num.raw()) else {
            debug_assert!(false, "launch_wr on unknown QP");
            return;
        };
        qp.register_outstanding(msg, wr, posted_at);
        let transport = qp.transport();

        if wr.loopback {
            self.launch_loopback(engine_done, qp_num, transport, msg, wr, out);
            return;
        }

        let flow = FlowId::new(self.lid.raw() as u32);
        let inline = wr.payload <= self.cfg.inline_threshold && wr.verb != Verb::Read;
        // Inlined payloads and READ requests (no local payload) skip the
        // DMA fetch.
        let dma_base = if inline || wr.verb == Verb::Read {
            SimDuration::ZERO
        } else {
            self.cfg.dma_read_latency
        };

        if wr.verb == Verb::Read {
            let ready = engine_done.max(self.tx_ready_horizon);
            self.tx_ready_horizon = ready;
            let packet = Packet {
                id: self.alloc_pkt(),
                flow,
                msg,
                src: self.lid,
                dst: wr.remote,
                dst_qp: wr.remote_qp,
                sl: wr.sl,
                kind: PacketKind::ReadRequest { bytes: wr.payload },
                payload: 0,
                overhead: self.cfg.headers.read_request_overhead(),
                injected_at: ready,
            };
            let vl = self.vl_of_sl(wr.sl);
            self.schedule_data(ready, vl, packet, slab, out);
            return;
        }

        let mut remaining = wr.payload;
        let mut cumulative = 0u64;
        for i in 0..n_packets {
            let chunk = remaining.min(self.cfg.mtu);
            remaining -= chunk;
            cumulative += chunk;
            let first = i == 0;
            let last = i + 1 == n_packets;
            let ready = (engine_done
                + if inline {
                    SimDuration::ZERO
                } else {
                    dma_base + self.pcie_time(cumulative)
                })
            .max(self.tx_ready_horizon);
            self.tx_ready_horizon = ready;
            let packet = Packet {
                id: self.alloc_pkt(),
                flow,
                msg,
                src: self.lid,
                dst: wr.remote,
                dst_qp: wr.remote_qp,
                sl: wr.sl,
                kind: PacketKind::Data {
                    verb: wr.verb,
                    transport,
                    index: i as u32,
                    last,
                },
                payload: chunk,
                overhead: self.cfg.headers.data_overhead(wr.verb, transport, first),
                injected_at: ready,
            };
            let vl = self.vl_of_sl(wr.sl);
            self.schedule_data(ready, vl, packet, slab, out);
        }
    }

    /// Runs a loopback message: internal datapath, no wire, RC-style
    /// completion via the internal turnaround.
    fn launch_loopback(
        &mut self,
        engine_done: SimTime,
        qp_num: QpNum,
        transport: Transport,
        msg: MsgId,
        wr: SendWr,
        out: &mut Vec<RnicAction>,
    ) {
        let inline = wr.payload <= self.cfg.inline_threshold;
        let dma = if inline {
            SimDuration::ZERO
        } else {
            self.cfg.dma_read_latency + self.pcie_time(wr.payload)
        };
        let n_packets = self.cfg.packets_for(wr.payload);
        let oh_first = self.cfg.headers.data_overhead(wr.verb, transport, true);
        let oh_rest = self.cfg.headers.data_overhead(wr.verb, transport, false);
        let wire_bytes = wr.payload + oh_first + oh_rest * (n_packets - 1);
        let s_loop = self.loop_rate.serialize_time(wire_bytes);
        let delivered = engine_done + dma + s_loop;

        // Requester completion: internal turnaround plays the ACK's role.
        let visible = delivered + self.cfg.loopback_turnaround + self.cfg.dma_write_latency;
        let Some(qp) = self.qp_slot_mut(qp_num.raw()) else {
            debug_assert!(false, "loopback completion on unknown QP");
            return;
        };
        let Ok(done) = qp.complete(msg) else {
            debug_assert!(false, "loopback message was never registered");
            return;
        };
        self.owner.remove(&msg.raw());
        self.stats.loopbacks += 1;
        if done.wr.signaled {
            out.push(RnicAction::Complete {
                cqe: Cqe {
                    wr_id: done.wr.wr_id,
                    qp: qp_num,
                    opcode: opcode_of(wr.verb),
                    bytes: wr.payload,
                    visible_at: visible,
                },
            });
        }

        // Receive side of the self-addressed SEND: consume a RECV and
        // deliver a Recv completion once the payload DMA lands. The
        // loopback path bypasses the SerDes and wire parser, so it does
        // not contend with the wire RX engine.
        if wr.verb == Verb::Send {
            let rx_done = delivered + self.cfg.rx_per_packet;
            let landed = rx_done + self.cfg.dma_write_latency + self.pcie_time(wr.payload);
            let recv_wr = self.take_recv(qp_num, wr.payload);
            out.push(RnicAction::Complete {
                cqe: Cqe {
                    wr_id: recv_wr.wr_id,
                    qp: qp_num,
                    opcode: CqeOpcode::Recv,
                    bytes: wr.payload,
                    visible_at: landed,
                },
            });
        }
    }

    fn take_recv(&mut self, qp_num: QpNum, bytes: u64) -> RecvWr {
        let posted = match self.qp_slot_mut(qp_num.raw()) {
            Some(qp) => qp.consume_recv().ok(),
            None => {
                debug_assert!(false, "take_recv on unknown QP");
                None
            }
        };
        posted.unwrap_or_else(|| {
            self.stats.recv_autofills += 1;
            RecvWr::new(WrId(u64::MAX), bytes)
        })
    }

    /// A self-scheduled wake-up: moves ready packets to the injection
    /// queues and dispatches the wire, appending actions to `out`.
    pub fn wake(&mut self, now: SimTime, slab: &PacketSlab, out: &mut Vec<RnicAction>) {
        self.drain_pending(now);
        self.dispatch(now, slab, out);
    }

    /// Probes for the overwhelmingly common wake outcome in
    /// bandwidth-bound runs (sim-prof attributes ~98% of all dispatched
    /// events to it): the wire is still busy, no injection timer has
    /// matured, and packets are queued — a full [`Rnic::wake`] would do
    /// nothing but re-arm itself at `wire_free`. Returns that re-arm
    /// time so the caller can schedule it directly and skip the action
    /// buffer round-trip; `None` means take the full path.
    #[inline]
    pub fn wake_rearm_only(&self, now: SimTime) -> Option<SimTime> {
        if self.wire_free > now
            && !self.txq.is_empty()
            && self.pending_tx.peek().is_none_or(|t| t.at > now)
        {
            Some(self.wire_free)
        } else {
            None
        }
    }

    fn drain_pending(&mut self, now: SimTime) {
        // Timers pop in (at, seq) order — time-ascending, FIFO within an
        // instant — so injection-queue order matches the schedule order.
        loop {
            match self.pending_tx.peek() {
                Some(timer) if timer.at <= now => {}
                _ => break,
            }
            let Some(timer) = self.pending_tx.pop() else {
                break;
            };
            match timer.item {
                PendingTx::Data(vl, h, wire) => self.txq.push_data(vl, h, wire),
                PendingTx::Ack(vl, h, wire) => self.txq.push_ack(h, vl, wire),
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, slab: &PacketSlab, out: &mut Vec<RnicAction>) {
        if self.wire_free > now {
            if !self.txq.is_empty() {
                out.push(RnicAction::Wake { at: self.wire_free });
            }
            return;
        }
        let credits = &mut self.peer_credits;
        let picked = self.txq.pop_next(|vl, bytes| credits.can_send(vl, bytes));
        let Some((packet, vl, size)) = picked else {
            return;
        };
        let consumed = self.peer_credits.consume(vl, size);
        debug_assert!(consumed, "pop_next filtered by credits");
        let serialize = self.data_rate.serialize_time(size);
        let wire_done = now + serialize;
        self.wire_free = wire_done + self.cfg.tx_ipg;
        // One slab read per transmitted packet (stats + the UD completion
        // check); arbitration and credit gating above never touch it.
        let (payload, kind, msg) = {
            let p = slab.get(packet);
            (p.payload, p.kind, p.msg)
        };
        self.stats.tx_packets += 1;
        self.stats.tx_wire_bytes += size;
        self.stats.tx_payload_bytes += payload;
        if matches!(kind, PacketKind::Ack) {
            self.stats.acks_sent += 1;
        }

        // UD SENDs complete when the last packet exits the wire (Fig. 1c).
        if let PacketKind::Data {
            transport: Transport::Ud,
            last: true,
            ..
        } = kind
        {
            self.complete_requester(msg, wire_done, out);
        }

        out.push(RnicAction::Transmit { packet, serialize });
        out.push(RnicAction::Wake { at: self.wire_free });
    }

    fn complete_requester(&mut self, msg: MsgId, base: SimTime, out: &mut Vec<RnicAction>) {
        let Some(qp_raw) = self.owner.remove(&msg.raw()) else {
            return;
        };
        let qp_num = QpNum::new(qp_raw);
        let Some(qp) = self.qp_slot_mut(qp_raw) else {
            debug_assert!(false, "owner table references unknown QP {qp_raw}");
            return;
        };
        let Ok(done) = qp.complete(msg) else {
            return;
        };
        if done.wr.signaled {
            out.push(RnicAction::Complete {
                cqe: Cqe {
                    wr_id: done.wr.wr_id,
                    qp: qp_num,
                    opcode: opcode_of(done.wr.verb),
                    bytes: done.wr.payload,
                    visible_at: base + self.cfg.dma_write_latency,
                },
            });
        }
    }

    /// Credits returned by the attached peer; appends actions to `out`.
    pub fn credit_from_peer(
        &mut self,
        now: SimTime,
        vl: VirtualLane,
        bytes: u64,
        slab: &PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        self.peer_credits.replenish(vl, bytes);
        self.drain_pending(now);
        self.dispatch(now, slab, out);
    }

    /// A packet's last bit arrived from the wire at `now`. The RNIC is the
    /// packet's final consumer: the handle is freed out of the slab here.
    /// Resulting actions are appended to `out`.
    pub fn packet_arrival(
        &mut self,
        now: SimTime,
        packet: PacketRef,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        let packet = slab.free(packet);
        let rx_jitter = match &self.cfg.rx_jitter {
            Some(j) => j.sample(&mut self.rng),
            None => SimDuration::ZERO,
        };
        let rx_done = now.max(self.rx_free) + self.cfg.rx_per_packet + rx_jitter;
        self.rx_free = rx_done;
        self.stats.rx_packets += 1;
        self.stats.rx_payload_bytes += packet.payload;

        // Free the receive buffer once the engine is done with the packet.
        let vl = self.vl_of_sl(packet.sl);
        out.push(RnicAction::ReturnCredit {
            vl,
            bytes: packet.wire_size(),
            after: rx_done - now,
        });

        match packet.kind {
            PacketKind::Ack => {
                self.stats.acks_received += 1;
                let done_at = rx_done + self.cfg.ack_rx;
                self.complete_requester(packet.msg, done_at, out);
            }
            PacketKind::ReadRequest { bytes } => {
                self.respond_to_read(rx_done, &packet, bytes, slab, out);
            }
            PacketKind::Data {
                verb,
                transport,
                last,
                ..
            } => {
                if !last {
                    *self.rx_accum.entry(packet.msg.raw()).or_insert(0) += packet.payload;
                    return;
                }
                // Single-packet messages (the common case) never touch the
                // accumulator map.
                let total = match self.rx_accum.remove(&packet.msg.raw()) {
                    Some(acc) => acc + packet.payload,
                    None => packet.payload,
                };
                if self.owner.contains_key(&packet.msg.raw()) {
                    // READ response data landing at the requester (Fig. 1a):
                    // complete once the payload DMA write finishes.
                    let landed = rx_done + self.cfg.dma_write_latency + self.pcie_time(total);
                    self.complete_requester(packet.msg, landed, out);
                    return;
                }
                self.deliver_to_responder(rx_done, &packet, verb, transport, total, slab, out);
            }
        }
    }

    fn respond_to_read(
        &mut self,
        rx_done: SimTime,
        request: &Packet,
        bytes: u64,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        // Responder-side DMA read, then hardware-generated response data
        // (no WQE engine involvement — one-sided semantics, Fig. 1a).
        let n_packets = self.cfg.packets_for(bytes);
        let mut remaining = bytes;
        let mut cumulative = 0u64;
        for i in 0..n_packets {
            let chunk = remaining.min(self.cfg.mtu);
            remaining -= chunk;
            cumulative += chunk;
            let ready = rx_done + self.cfg.dma_read_latency + self.pcie_time(cumulative);
            let response = Packet {
                id: self.alloc_pkt(),
                flow: request.flow,
                msg: request.msg,
                src: self.lid,
                dst: request.src,
                dst_qp: QpNum::new(0),
                sl: request.sl,
                kind: PacketKind::Data {
                    verb: Verb::Read,
                    transport: Transport::Rc,
                    index: i as u32,
                    last: i + 1 == n_packets,
                },
                payload: chunk,
                overhead: self
                    .cfg
                    .headers
                    .data_overhead(Verb::Read, Transport::Rc, i == 0),
                injected_at: ready,
            };
            let vl = self.vl_of_sl(request.sl);
            self.schedule_data(ready, vl, response, slab, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_to_responder(
        &mut self,
        rx_done: SimTime,
        packet: &Packet,
        verb: Verb,
        transport: Transport,
        total: u64,
        slab: &mut PacketSlab,
        out: &mut Vec<RnicAction>,
    ) {
        let dma_done = (rx_done + self.cfg.dma_write_latency + self.pcie_time(total))
            .max(self.rx_deliver_horizon);
        self.rx_deliver_horizon = dma_done;

        if transport == Transport::Rc {
            // SEND is acknowledged immediately on receipt — before the
            // payload DMA (Fig. 1d, the property RPerf exploits). WRITE
            // acknowledges only after the remote DMA write (Fig. 1b, the
            // delay QPerf cannot subtract).
            let ack_jitter = match &self.cfg.rx_jitter {
                Some(j) => j.sample(&mut self.rng),
                None => SimDuration::ZERO,
            };
            let ack_at = match verb {
                Verb::Send => rx_done + self.cfg.ack_turnaround + ack_jitter,
                _ => dma_done + self.cfg.ack_turnaround + ack_jitter,
            }
            .max(self.ack_horizon);
            self.ack_horizon = ack_at;
            let ack = Packet {
                id: self.alloc_pkt(),
                flow: packet.flow,
                msg: packet.msg,
                src: self.lid,
                dst: packet.src,
                dst_qp: QpNum::new(0),
                sl: packet.sl,
                kind: PacketKind::Ack,
                payload: 0,
                overhead: self.cfg.headers.ack_overhead(),
                injected_at: ack_at,
            };
            let vl = self.vl_of_sl(packet.sl);
            let wire = ack.wire_size();
            let handle = slab.alloc(ack);
            self.schedule_tx(ack_at, PendingTx::Ack(vl, handle, wire), out);
        }

        if verb == Verb::Send {
            // Two-sided delivery: consume a pre-posted RECV, complete once
            // the payload lands in host memory.
            let qp_num = packet.dst_qp;
            if self.qp_slot(qp_num.raw()).is_some() {
                let recv_wr = self.take_recv(qp_num, total);
                out.push(RnicAction::Complete {
                    cqe: Cqe {
                        wr_id: recv_wr.wr_id,
                        qp: qp_num,
                        opcode: CqeOpcode::Recv,
                        bytes: total,
                        visible_at: dma_done,
                    },
                });
            } else {
                self.stats.recv_autofills += 1;
                out.push(RnicAction::Complete {
                    cqe: Cqe {
                        wr_id: WrId(u64::MAX),
                        qp: qp_num,
                        opcode: CqeOpcode::Recv,
                        bytes: total,
                        visible_at: dma_done,
                    },
                });
            }
        }
    }
}

fn opcode_of(verb: Verb) -> CqeOpcode {
    match verb {
        Verb::Send => CqeOpcode::Send,
        Verb::Write => CqeOpcode::Write,
        Verb::Read => CqeOpcode::Read,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rperf_model::ClusterConfig;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// A tiny pump that feeds an RNIC its own wakes and collects the
    /// externally visible actions. Owns the packet slab, playing the
    /// fabric's role: transmitted packets are consumed out of the slab
    /// immediately (the "wire" here is the test itself).
    struct Pump {
        rnic: Rnic,
        slab: PacketSlab,
        wakes: BinaryHeap<Reverse<u64>>,
        transmitted: Vec<(SimTime, Packet, SimDuration)>,
        completions: Vec<Cqe>,
        credits_returned: Vec<(SimTime, VirtualLane, u64)>,
    }

    impl Pump {
        fn new(node: u16) -> Self {
            let cfg = ClusterConfig::omnet_simulator();
            Pump {
                rnic: Rnic::new(
                    NodeId::new(node),
                    Lid::new(node),
                    cfg.rnic.clone(),
                    &cfg.link,
                    SimRng::new(node as u64),
                ),
                slab: PacketSlab::new(),
                wakes: BinaryHeap::new(),
                transmitted: Vec::new(),
                completions: Vec::new(),
                credits_returned: Vec::new(),
            }
        }

        fn absorb(&mut self, now: SimTime, actions: Vec<RnicAction>) {
            for a in actions {
                match a {
                    RnicAction::Wake { at } => self.wakes.push(Reverse(at.as_ps())),
                    RnicAction::Transmit { packet, serialize } => {
                        let pkt = self.slab.free(packet);
                        self.transmitted.push((now, pkt, serialize))
                    }
                    RnicAction::Complete { cqe } => self.completions.push(cqe),
                    RnicAction::ReturnCredit { vl, bytes, after } => {
                        self.credits_returned.push((now + after, vl, bytes))
                    }
                }
            }
        }

        /// Posts a send WR, feeding the resulting actions back in.
        fn post(&mut self, now: SimTime, qp: QpNum, wr: SendWr) -> Result<(), VerbsError> {
            let mut actions = Vec::new();
            self.rnic
                .post_send(now, qp, wr, &mut self.slab, &mut actions)?;
            self.absorb(now, actions);
            Ok(())
        }

        /// Delivers a packet from the wire (allocating it into this pump's
        /// slab, as the fabric would have it resident there).
        fn deliver(&mut self, now: SimTime, packet: Packet) {
            let handle = self.slab.alloc(packet);
            let mut actions = Vec::new();
            self.rnic
                .packet_arrival(now, handle, &mut self.slab, &mut actions);
            self.absorb(now, actions);
        }

        /// Runs wakes until quiescent; returns the last processed time.
        fn run(&mut self) -> SimTime {
            let mut last = SimTime::ZERO;
            let mut guard = 0;
            while let Some(Reverse(ps)) = self.wakes.pop() {
                guard += 1;
                assert!(guard < 100_000, "wake storm");
                let t = SimTime::from_ps(ps);
                last = t;
                let mut actions = Vec::new();
                self.rnic.wake(t, &self.slab, &mut actions);
                self.absorb(t, actions);
            }
            last
        }
    }

    fn send_wr(id: u64, payload: u64, dst: u16) -> SendWr {
        SendWr::new(WrId(id), Verb::Send, payload).to(Lid::new(dst), QpNum::new(1))
    }

    #[test]
    fn inline_send_timing() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        let t0 = SimTime::from_ns(1000);
        p.post(t0, qp, send_wr(1, 64, 2)).unwrap();
        p.run();
        assert_eq!(p.transmitted.len(), 1);
        let (at, packet, _) = &p.transmitted[0];
        let cfg = p.rnic.config();
        // Inline 64 B: no DMA read; ready at post + mmio + engine.
        let expected = t0 + cfg.mmio_post + cfg.engine_time(1);
        assert_eq!(*at, expected, "got {at}, expected {expected}");
        assert_eq!(packet.payload, 64);
        assert!(packet.kind.is_last_data());
        assert!(p.slab.is_empty(), "transmitted packets leave the slab");
    }

    #[test]
    fn large_send_pays_dma_read() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        let t0 = SimTime::ZERO;
        p.post(t0, qp, send_wr(1, 4096, 2)).unwrap();
        p.run();
        let (at, _, _) = &p.transmitted[0];
        let cfg = p.rnic.config();
        let expected = t0
            + cfg.mmio_post
            + cfg.engine_time(1)
            + cfg.dma_read_latency
            + cfg.pcie_rate.serialize_time(4096);
        assert_eq!(*at, expected);
    }

    #[test]
    fn multi_packet_message_respects_mtu() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        p.post(SimTime::ZERO, qp, send_wr(1, 10_000, 2)).unwrap();
        p.run();
        assert_eq!(p.transmitted.len(), 3);
        let payloads: Vec<u64> = p.transmitted.iter().map(|(_, pk, _)| pk.payload).collect();
        assert_eq!(payloads, vec![4096, 4096, 1808]);
        let lasts: Vec<bool> = p
            .transmitted
            .iter()
            .map(|(_, pk, _)| pk.kind.is_last_data())
            .collect();
        assert_eq!(lasts, vec![false, false, true]);
    }

    #[test]
    fn engine_caps_message_rate() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        let wrs: Vec<SendWr> = (0..50).map(|i| send_wr(i, 64, 2)).collect();
        let mut actions = Vec::new();
        p.rnic
            .post_send_batch(SimTime::ZERO, qp, wrs, &mut p.slab, &mut actions)
            .unwrap();
        p.absorb(SimTime::ZERO, actions);
        p.run();
        assert_eq!(p.transmitted.len(), 50);
        let cfg_engine = p.rnic.config().engine_time(1);
        for pair in p.transmitted.windows(2) {
            let gap = pair[1].0 - pair[0].0;
            assert!(
                gap >= cfg_engine,
                "messages must be engine-spaced: gap {gap} < {cfg_engine}"
            );
        }
    }

    #[test]
    fn rc_send_ack_roundtrip_completes() {
        let mut a = Pump::new(1);
        let mut b = Pump::new(2);
        let qp_a = a.rnic.create_qp(Transport::Rc);
        let qp_b = b.rnic.create_qp(Transport::Rc);
        b.rnic.post_recv(qp_b, RecvWr::new(WrId(100), 4096));

        let t0 = SimTime::ZERO;
        let wr = SendWr::new(WrId(1), Verb::Send, 64).to(Lid::new(2), qp_b);
        a.post(t0, qp_a, wr).unwrap();
        a.run();
        let (tx_at, packet, ser) = a.transmitted[0].clone();
        // Deliver last bit to B.
        let arrival = tx_at + ser + SimDuration::from_ns(5);
        b.deliver(arrival, packet);
        b.run();
        // B produced a Recv completion and an ACK on the wire.
        assert!(b
            .completions
            .iter()
            .any(|c| c.opcode == CqeOpcode::Recv && c.wr_id == WrId(100) && c.bytes == 64));
        let (ack_at, ack, ack_ser) = b
            .transmitted
            .iter()
            .find(|(_, pk, _)| matches!(pk.kind, PacketKind::Ack))
            .cloned()
            .expect("B must emit an ACK");
        // SEND: ACK generated before the payload DMA would finish.
        let recv_visible = b.completions[0].visible_at;
        assert!(
            ack_at < recv_visible,
            "RC SEND ACK ({ack_at}) must precede payload delivery ({recv_visible})"
        );

        // Return the ACK to A: the send WR completes.
        let ack_arrival = ack_at + ack_ser + SimDuration::from_ns(5);
        a.deliver(ack_arrival, ack);
        a.run();
        assert!(a
            .completions
            .iter()
            .any(|c| c.opcode == CqeOpcode::Send && c.wr_id == WrId(1)));
        assert_eq!(a.rnic.qp(qp_a).outstanding(), 0);
        assert!(a.slab.is_empty() && b.slab.is_empty(), "no leaked handles");
    }

    #[test]
    fn write_ack_waits_for_remote_dma() {
        let mut b = Pump::new(2);
        b.rnic.create_qp(Transport::Rc);
        // Hand-craft an incoming WRITE data packet.
        let packet = Packet {
            id: PacketId::new(1),
            flow: FlowId::new(0),
            msg: MsgId::new((9u64 << 40) | 1),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(1),
            sl: ServiceLevel::new(0),
            kind: PacketKind::Data {
                verb: Verb::Write,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            payload: 4096,
            overhead: 68,
            injected_at: SimTime::ZERO,
        };
        let t = SimTime::from_ns(100);
        b.deliver(t, packet.clone());
        b.run();
        let (write_ack_at, _, _) = b
            .transmitted
            .iter()
            .find(|(_, pk, _)| matches!(pk.kind, PacketKind::Ack))
            .cloned()
            .unwrap();

        // Same thing as a SEND: the ACK comes much sooner.
        let mut b2 = Pump::new(3);
        let qp = b2.rnic.create_qp(Transport::Rc);
        b2.rnic.post_recv(qp, RecvWr::new(WrId(0), 4096));
        let mut send_packet = packet;
        send_packet.kind = PacketKind::Data {
            verb: Verb::Send,
            transport: Transport::Rc,
            index: 0,
            last: true,
        };
        send_packet.dst = Lid::new(3);
        b2.deliver(t, send_packet);
        b2.run();
        let (send_ack_at, _, _) = b2
            .transmitted
            .iter()
            .find(|(_, pk, _)| matches!(pk.kind, PacketKind::Ack))
            .cloned()
            .unwrap();

        assert!(
            write_ack_at > send_ack_at,
            "WRITE ACK ({write_ack_at}) must lag SEND ACK ({send_ack_at}) by the remote DMA"
        );
        let gap = write_ack_at - send_ack_at;
        let cfg = b2.rnic.config();
        let dma = cfg.dma_write_latency + cfg.pcie_rate.serialize_time(4096);
        assert!(
            gap >= dma,
            "gap {gap} must cover the remote DMA write {dma}"
        );
    }

    #[test]
    fn ud_send_completes_on_wire_exit_without_ack() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Ud);
        let t0 = SimTime::ZERO;
        p.post(t0, qp, send_wr(1, 64, 2)).unwrap();
        p.run();
        // Completion exists even though no ACK ever arrived.
        let cqe = p
            .completions
            .iter()
            .find(|c| c.opcode == CqeOpcode::Send)
            .expect("UD completes on wire exit");
        let (tx_at, _, ser) = &p.transmitted[0];
        assert_eq!(
            cqe.visible_at,
            *tx_at + *ser + p.rnic.config().dma_write_latency
        );
    }

    #[test]
    fn read_roundtrip() {
        let mut a = Pump::new(1);
        let mut b = Pump::new(2);
        let qp_a = a.rnic.create_qp(Transport::Rc);
        b.rnic.create_qp(Transport::Rc);

        let wr = SendWr::new(WrId(1), Verb::Read, 4096).to(Lid::new(2), QpNum::new(1));
        a.post(SimTime::ZERO, qp_a, wr).unwrap();
        a.run();
        let (t, request, ser) = a.transmitted[0].clone();
        assert!(matches!(
            request.kind,
            PacketKind::ReadRequest { bytes: 4096 }
        ));
        assert_eq!(request.payload, 0);

        // Responder turns the request into response data.
        let arrival = t + ser + SimDuration::from_ns(5);
        b.deliver(arrival, request);
        b.run();
        let (rt, response, rser) = b.transmitted[0].clone();
        assert_eq!(response.payload, 4096);

        // Requester completes once the data lands.
        let back = rt + rser + SimDuration::from_ns(5);
        a.deliver(back, response);
        a.run();
        let cqe = a
            .completions
            .iter()
            .find(|c| c.opcode == CqeOpcode::Read)
            .expect("READ completion");
        assert!(cqe.visible_at > back, "completion waits for local DMA");
        assert_eq!(cqe.bytes, 4096);
    }

    #[test]
    fn loopback_never_touches_the_wire() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        p.rnic.post_recv(qp, RecvWr::new(WrId(50), 64));
        let wr = send_wr(1, 64, 1).via_loopback();
        p.post(SimTime::ZERO, qp, wr).unwrap();
        p.run();
        assert!(p.transmitted.is_empty(), "loopback must not transmit");
        assert!(p.slab.is_empty(), "loopback allocates no wire packets");
        assert!(p
            .completions
            .iter()
            .any(|c| c.opcode == CqeOpcode::Send && c.wr_id == WrId(1)));
        assert!(p
            .completions
            .iter()
            .any(|c| c.opcode == CqeOpcode::Recv && c.wr_id == WrId(50)));
        assert_eq!(p.rnic.stats().loopbacks, 1);
    }

    #[test]
    fn loopback_is_faster_than_wire_for_same_payload() {
        // The loopback completion (local-side cost) must come sooner than a
        // wire RTT would: this is the margin RPerf's subtraction measures.
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Rc);
        p.post(SimTime::ZERO, qp, send_wr(1, 4096, 1).via_loopback())
            .unwrap();
        p.run();
        let send_cqe = p
            .completions
            .iter()
            .find(|c| c.opcode == CqeOpcode::Send)
            .unwrap();
        let cfg = p.rnic.config();
        let wire_one_way = ClusterConfig::omnet_simulator()
            .link
            .data_rate()
            .serialize_time(4148);
        // Loopback serialization is strictly faster than the wire's.
        let loop_ser = ClusterConfig::omnet_simulator()
            .link
            .data_rate()
            .scaled(cfg.loopback_factor)
            .serialize_time(4148);
        assert!(loop_ser < wire_one_way);
        assert!(send_cqe.visible_at > SimTime::ZERO);
    }

    #[test]
    fn credits_block_wire_until_replenished() {
        let mut p = Pump::new(1);
        p.rnic.set_peer_credits(CreditLedger::new(9, 4_148));
        let qp = p.rnic.create_qp(Transport::Rc);
        let wrs = vec![send_wr(1, 4096, 2), send_wr(2, 4096, 2)];
        let mut actions = Vec::new();
        p.rnic
            .post_send_batch(SimTime::ZERO, qp, wrs, &mut p.slab, &mut actions)
            .unwrap();
        p.absorb(SimTime::ZERO, actions);
        p.run();
        assert_eq!(p.transmitted.len(), 1, "only one credit grant available");

        let t = SimTime::from_us(100);
        let mut actions = Vec::new();
        p.rnic
            .credit_from_peer(t, VirtualLane::new(0), 4_148, &p.slab, &mut actions);
        p.absorb(t, actions);
        p.run();
        assert_eq!(p.transmitted.len(), 2);
        assert!(p.slab.is_empty(), "both packets consumed off the slab");
    }

    #[test]
    fn rx_returns_credits_after_engine() {
        let mut p = Pump::new(2);
        p.rnic.create_qp(Transport::Rc);
        let packet = Packet {
            id: PacketId::new(1),
            flow: FlowId::new(0),
            msg: MsgId::new((9u64 << 40) | 7),
            src: Lid::new(1),
            dst: Lid::new(2),
            dst_qp: QpNum::new(1),
            sl: ServiceLevel::new(0),
            kind: PacketKind::Data {
                verb: Verb::Send,
                transport: Transport::Rc,
                index: 0,
                last: true,
            },
            payload: 64,
            overhead: 52,
            injected_at: SimTime::ZERO,
        };
        let t = SimTime::from_ns(10);
        p.deliver(t, packet);
        assert_eq!(p.credits_returned.len(), 1);
        let (when, vl, bytes) = p.credits_returned[0];
        assert_eq!(vl, VirtualLane::new(0));
        assert_eq!(bytes, 116);
        assert!(when >= t + p.rnic.config().rx_per_packet);
    }

    #[test]
    fn invalid_wr_rejected_without_side_effects() {
        let mut p = Pump::new(1);
        let qp = p.rnic.create_qp(Transport::Ud);
        let bad = SendWr::new(WrId(1), Verb::Write, 64).to(Lid::new(2), QpNum::new(1));
        let err = p.post(SimTime::ZERO, qp, bad).unwrap_err();
        assert!(matches!(err, VerbsError::InvalidVerbForTransport { .. }));
        p.run();
        assert!(p.transmitted.is_empty());
        assert!(p.slab.is_empty());
        assert_eq!(p.rnic.qp(qp).outstanding(), 0);
    }
}
