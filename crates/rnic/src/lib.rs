//! The RNIC device model (ConnectX-4 class).
//!
//! Models the complete execution paths of Fig. 1 of the paper with
//! calibrated timing:
//!
//! * **Post path** — MMIO doorbell → serial WQE engine (the ~7–8 Mpps
//!   message-rate cap that makes small-payload bandwidth collapse in
//!   Fig. 5) → payload DMA read over PCIe (skipped for inlined small
//!   payloads) → packetization at the path MTU → per-VL injection queues.
//! * **Wire TX** — serializes packets at the link data rate, subject to
//!   hop-by-hop credits toward the attached peer; ACKs jump the data queue.
//! * **RX path** — serial receive engine, verb-dependent behaviour:
//!   RC SEND generates the ACK *immediately on receipt* (before the payload
//!   DMA — the property RPerf exploits); RC WRITE acknowledges only after
//!   the remote DMA write completes (the bias QPerf suffers from); READ
//!   turns the request around through a responder-side DMA read.
//! * **Loopback** — a message to self traverses the same post path, then an
//!   internal datapath slightly faster than the line, never touching the
//!   wire: RPerf's measurement of local-side overhead.
//!
//! Like the switch, the device is a pure state machine returning
//! [`RnicAction`]s; the fabric schedules them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod txq;

pub use device::{Rnic, RnicAction, RnicStats};
pub use txq::TxQueue;
