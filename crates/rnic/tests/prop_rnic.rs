//! Property tests for the RNIC device: payload conservation,
//! packetization, wire ordering and engine pacing.

use proptest::prelude::*;
use rperf_model::arena::PacketSlab;
use rperf_model::{ClusterConfig, Lid, NodeId, Packet, QpNum, Transport, Verb};
use rperf_rnic::{Rnic, RnicAction};
use rperf_sim::{SimDuration, SimRng, SimTime};
use rperf_verbs::{SendWr, WrId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

fn pump(
    rnic: &mut Rnic,
    slab: &mut PacketSlab,
    first: Vec<RnicAction>,
) -> Vec<(SimTime, Packet, SimDuration)> {
    let mut wakes: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut transmitted = Vec::new();
    let absorb = |actions: Vec<RnicAction>,
                  now: SimTime,
                  slab: &mut PacketSlab,
                  wakes: &mut BinaryHeap<Reverse<u64>>,
                  out: &mut Vec<(SimTime, Packet, SimDuration)>| {
        for a in actions {
            match a {
                RnicAction::Wake { at } => wakes.push(Reverse(at.as_ps())),
                RnicAction::Transmit { packet, serialize } => {
                    out.push((now, slab.free(packet), serialize))
                }
                _ => {}
            }
        }
    };
    absorb(first, SimTime::ZERO, slab, &mut wakes, &mut transmitted);
    let mut guard = 0;
    while let Some(Reverse(ps)) = wakes.pop() {
        guard += 1;
        assert!(guard < 200_000, "wake storm");
        let t = SimTime::from_ps(ps);
        let mut actions = Vec::new();
        rnic.wake(t, slab, &mut actions);
        absorb(actions, t, slab, &mut wakes, &mut transmitted);
    }
    transmitted
}

fn rnic_under_test() -> Rnic {
    let cfg = ClusterConfig::omnet_simulator();
    Rnic::new(
        NodeId::new(1),
        Lid::new(1),
        cfg.rnic,
        &cfg.link,
        SimRng::new(3),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packetization conserves payload exactly, respects the MTU, and
    /// marks exactly one `last` packet per message.
    #[test]
    fn packetization_conserves_payload(payloads in prop::collection::vec(1u64..100_000, 1..20)) {
        let mut rnic = rnic_under_test();
        let mut slab = PacketSlab::new();
        let qp = rnic.create_qp(Transport::Rc);
        let total: u64 = payloads.iter().sum();
        let n_msgs = payloads.len();
        let wrs: Vec<SendWr> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| SendWr::new(WrId(i as u64), Verb::Send, p).to(Lid::new(2), QpNum::new(1)))
            .collect();
        let mut actions = Vec::new();
        rnic.post_send_batch(SimTime::ZERO, qp, wrs, &mut slab, &mut actions)
            .unwrap();
        let transmitted = pump(&mut rnic, &mut slab, actions);
        prop_assert!(slab.is_empty(), "every injected packet leaves the slab");

        let mtu = rnic.config().mtu;
        let sent: u64 = transmitted.iter().map(|(_, p, _)| p.payload).sum();
        prop_assert_eq!(sent, total, "payload conservation");
        let lasts = transmitted
            .iter()
            .filter(|(_, p, _)| p.kind.is_last_data())
            .count();
        prop_assert_eq!(lasts, n_msgs, "one last packet per message");
        for (_, p, _) in &transmitted {
            prop_assert!(p.payload <= mtu, "MTU respected");
        }
    }

    /// Wire transmissions never overlap: each packet starts at or after
    /// the previous serialization (plus inter-packet gap) finished, and
    /// messages leave in posted order.
    #[test]
    fn wire_is_serial_and_ordered(payloads in prop::collection::vec(1u64..8_192, 2..30)) {
        let mut rnic = rnic_under_test();
        let mut slab = PacketSlab::new();
        let qp = rnic.create_qp(Transport::Rc);
        let wrs: Vec<SendWr> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| SendWr::new(WrId(i as u64), Verb::Send, p).to(Lid::new(2), QpNum::new(1)))
            .collect();
        let mut actions = Vec::new();
        rnic.post_send_batch(SimTime::ZERO, qp, wrs, &mut slab, &mut actions)
            .unwrap();
        let transmitted = pump(&mut rnic, &mut slab, actions);

        for pair in transmitted.windows(2) {
            let (t0, _, s0) = &pair[0];
            let (t1, _, _) = &pair[1];
            prop_assert!(*t1 >= *t0 + *s0, "wire transmissions overlap");
        }
        // Message ids (allocation order == posting order) must be
        // non-decreasing on the wire.
        let msg_order: Vec<u64> = transmitted.iter().map(|(_, p, _)| p.msg.raw()).collect();
        let mut sorted = msg_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(msg_order, sorted, "per-connection order violated");
    }

    /// The engine paces single-packet messages at no more than the
    /// configured message rate.
    #[test]
    fn engine_rate_cap_holds(count in 2usize..100) {
        let mut rnic = rnic_under_test();
        let mut slab = PacketSlab::new();
        let qp = rnic.create_qp(Transport::Rc);
        let wrs: Vec<SendWr> = (0..count)
            .map(|i| SendWr::new(WrId(i as u64), Verb::Send, 64).to(Lid::new(2), QpNum::new(1)))
            .collect();
        let mut actions = Vec::new();
        rnic.post_send_batch(SimTime::ZERO, qp, wrs, &mut slab, &mut actions)
            .unwrap();
        let transmitted = pump(&mut rnic, &mut slab, actions);
        prop_assert_eq!(transmitted.len(), count);
        let engine = rnic.config().engine_time(1);
        let span = transmitted.last().unwrap().0 - transmitted.first().unwrap().0;
        prop_assert!(
            span >= engine * (count as u64 - 1),
            "{count} messages in {span} beats the engine cap"
        );
    }

    /// Loopback probes never reach the wire regardless of payload.
    #[test]
    fn loopback_stays_internal(payload in 1u64..1_000_000) {
        let mut rnic = rnic_under_test();
        let mut slab = PacketSlab::new();
        let qp = rnic.create_qp(Transport::Rc);
        let wr = SendWr::new(WrId(0), Verb::Send, payload)
            .to(Lid::new(1), qp)
            .via_loopback();
        let mut actions = Vec::new();
        rnic.post_send(SimTime::ZERO, qp, wr, &mut slab, &mut actions)
            .unwrap();
        let transmitted = pump(&mut rnic, &mut slab, actions);
        prop_assert!(transmitted.is_empty());
        prop_assert!(slab.is_empty());
        prop_assert_eq!(rnic.stats().loopbacks, 1);
    }
}
