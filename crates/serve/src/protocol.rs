//! The length-prefixed wire protocol (DESIGN.md §8).
//!
//! Every frame, in both directions, is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"RPSV"
//! 4       1     version = 1
//! 5       1     kind (request or response discriminant)
//! 6       4     payload length, u32 big-endian (capped by the reader)
//! 10      len   payload
//! ```
//!
//! The framing layer is deliberately dumb: it knows magic, version and a
//! hard payload cap, nothing else. Anything that fails here —
//! wrong magic, unknown version, an oversized length, a truncated
//! payload — is a [`FrameError`]; the server answers with a typed error
//! frame where the stream is still synchronizable (bad kind) and closes
//! the connection where it is not (bad magic: the peer is not speaking
//! this protocol at all).
//!
//! Payload grammars (all integers big-endian):
//!
//! | kind | payload |
//! |------|---------|
//! | [`req::SUBMIT`] | `seed: u64` ++ canonical scenario-spec text (UTF-8) |
//! | [`req::STATS`], [`req::PING`], [`req::SHUTDOWN`] | empty |
//! | [`resp::RESULT`], [`resp::RESULT_CACHED`] | deterministic outcome JSON (UTF-8) |
//! | [`resp::ERROR`] | `code: u16` ++ message (UTF-8) |
//! | [`resp::BUSY`] | `retry_after_ms: u32` |
//! | [`resp::STATS_OK`] | stats JSON (UTF-8) |
//! | [`resp::PONG`], [`resp::OK`] | empty |

use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"RPSV";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Frame header length in bytes (magic + version + kind + length).
pub const HEADER_LEN: usize = 10;

/// Default cap on payload length; a spec text is a few KiB, outcome JSON
/// tens of KiB, so anything near this cap is garbage or abuse.
pub const DEFAULT_MAX_PAYLOAD: u32 = 256 * 1024;

/// Request frame kinds (client → server).
pub mod req {
    /// Run a scenario: `seed: u64` ++ spec text.
    pub const SUBMIT: u8 = 0x01;
    /// Fetch the stats JSON.
    pub const STATS: u8 = 0x02;
    /// Begin a graceful drain.
    pub const SHUTDOWN: u8 = 0x03;
    /// Liveness probe.
    pub const PING: u8 = 0x04;
}

/// Response frame kinds (server → client).
pub mod resp {
    /// A cold (freshly simulated) outcome JSON.
    pub const RESULT: u8 = 0x81;
    /// The same outcome JSON, served from the result cache. The payload
    /// bytes are identical to the cold [`RESULT`]; only the kind differs.
    pub const RESULT_CACHED: u8 = 0x82;
    /// A typed error: `code: u16` ++ message.
    pub const ERROR: u8 = 0x90;
    /// Load shed: `retry_after_ms: u32`.
    pub const BUSY: u8 = 0x91;
    /// Stats JSON.
    pub const STATS_OK: u8 = 0x92;
    /// Reply to [`super::req::PING`].
    pub const PONG: u8 = 0x93;
    /// Bare acknowledgement (shutdown accepted).
    pub const OK: u8 = 0x94;
}

/// Typed error codes carried by [`resp::ERROR`] payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame failed structural validation (magic/length/truncation).
    BadFrame = 1,
    /// The frame's version byte is not [`VERSION`].
    BadVersion = 2,
    /// The frame kind is not a known request.
    BadKind = 3,
    /// The submitted spec text failed to parse (message has `line N:`).
    ParseError = 4,
    /// The spec parsed but failed semantic validation.
    InvalidSpec = 5,
    /// The request missed its deadline (queue wait + run exceeded it).
    DeadlineExceeded = 6,
    /// The worker running the request panicked; it has been replaced.
    WorkerPanic = 7,
    /// The server is draining and no longer admits work.
    ShuttingDown = 8,
    /// Any other server-side failure.
    Internal = 9,
}

impl ErrorCode {
    /// The wire name, stable across versions (what `submit --json` prints).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "BAD_FRAME",
            ErrorCode::BadVersion => "BAD_VERSION",
            ErrorCode::BadKind => "BAD_KIND",
            ErrorCode::ParseError => "PARSE_ERROR",
            ErrorCode::InvalidSpec => "INVALID_SPEC",
            ErrorCode::DeadlineExceeded => "DEADLINE_EXCEEDED",
            ErrorCode::WorkerPanic => "WORKER_PANIC",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Decodes a wire code (unknown codes map to [`ErrorCode::Internal`]).
    pub fn from_u16(raw: u16) -> ErrorCode {
        match raw {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadKind,
            4 => ErrorCode::ParseError,
            5 => ErrorCode::InvalidSpec,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::WorkerPanic,
            8 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One decoded frame: a kind byte and its raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The kind discriminant (see [`req`] / [`resp`]).
    pub kind: u8,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes timeouts and EOF).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte did not match [`VERSION`].
    BadVersion(u8),
    /// The declared payload length exceeded the reader's cap.
    Oversized {
        /// Length the header declared.
        declared: u32,
        /// The reader's cap.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "payload length {declared} exceeds cap {max}")
            }
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// The typed error code a server reply should carry for this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::Io(_) => ErrorCode::BadFrame,
            FrameError::BadMagic(_) => ErrorCode::BadFrame,
            FrameError::BadVersion(_) => ErrorCode::BadVersion,
            FrameError::Oversized { .. } => ErrorCode::BadFrame,
        }
    }
}

/// Writes one frame. The caller is responsible for having configured a
/// write timeout on the stream (lint rule D9 checks this in this crate).
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, enforcing `max_payload`.
///
/// A short read anywhere (header or payload) surfaces as
/// [`FrameError::Io`]; the caller treats the stream as dead. The length
/// cap is checked *before* allocating, so a hostile header cannot balloon
/// memory.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let kind = header[5];
    let len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
    if len > max_payload {
        return Err(FrameError::Oversized {
            declared: len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame { kind, payload })
}

/// Encodes a SUBMIT payload: `seed` ++ spec text.
pub fn encode_submit(seed: u64, spec_text: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + spec_text.len());
    p.extend_from_slice(&seed.to_be_bytes());
    p.extend_from_slice(spec_text.as_bytes());
    p
}

/// Decodes a SUBMIT payload into `(seed, spec_text)`.
pub fn decode_submit(payload: &[u8]) -> Result<(u64, String), String> {
    if payload.len() < 8 {
        return Err(format!(
            "submit payload too short ({} bytes)",
            payload.len()
        ));
    }
    let seed = u64::from_be_bytes([
        payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
        payload[7],
    ]);
    let text = std::str::from_utf8(&payload[8..]).map_err(|e| format!("spec not UTF-8: {e}"))?;
    Ok((seed, text.to_string()))
}

/// Encodes an ERROR payload: `code` ++ message.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + message.len());
    p.extend_from_slice(&(code as u16).to_be_bytes());
    p.extend_from_slice(message.as_bytes());
    p
}

/// Decodes an ERROR payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> (ErrorCode, String) {
    if payload.len() < 2 {
        return (ErrorCode::Internal, "malformed error payload".to_string());
    }
    let code = ErrorCode::from_u16(u16::from_be_bytes([payload[0], payload[1]]));
    let msg = String::from_utf8_lossy(&payload[2..]).into_owned();
    (code, msg)
}

/// Encodes a BUSY payload.
pub fn encode_busy(retry_after_ms: u32) -> Vec<u8> {
    retry_after_ms.to_be_bytes().to_vec()
}

/// Decodes a BUSY payload (malformed payloads read as 0 ms).
pub fn decode_busy(payload: &[u8]) -> u32 {
    match payload {
        [a, b, c, d] => u32::from_be_bytes([*a, *b, *c, *d]),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, req::SUBMIT, b"hello").expect("write");
        let mut r = buf.as_slice();
        let f = read_frame(&mut r, DEFAULT_MAX_PAYLOAD).expect("read");
        assert_eq!(f.kind, req::SUBMIT);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, req::PING, b"").expect("write");
        let mut garbled = buf.clone();
        garbled[0] = b'X';
        match read_frame(&mut garbled.as_slice(), 1024) {
            Err(FrameError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let mut wrong_ver = buf.clone();
        wrong_ver[4] = 9;
        match read_frame(&mut wrong_ver.as_slice(), 1024) {
            Err(FrameError::BadVersion(9)) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn oversized_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(req::SUBMIT);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut buf.as_slice(), 1024) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_io_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, req::SUBMIT, b"full payload").expect("write");
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3] {
            match read_frame(&mut &buf[..cut], 1024) {
                Err(FrameError::Io(_)) => {}
                other => panic!("cut {cut}: expected Io, got {other:?}"),
            }
        }
    }

    #[test]
    fn submit_and_error_payloads_round_trip() {
        let p = encode_submit(0xDEAD_BEEF, "name = \"x\"");
        let (seed, text) = decode_submit(&p).expect("decode");
        assert_eq!(seed, 0xDEAD_BEEF);
        assert_eq!(text, "name = \"x\"");
        assert!(decode_submit(&p[..4]).is_err());

        let e = encode_error(ErrorCode::DeadlineExceeded, "too slow");
        let (code, msg) = decode_error(&e);
        assert_eq!(code, ErrorCode::DeadlineExceeded);
        assert_eq!(msg, "too slow");

        assert_eq!(decode_busy(&encode_busy(250)), 250);
        assert_eq!(decode_busy(b"xx"), 0);
    }

    #[test]
    fn error_codes_round_trip_u16() {
        for code in [
            ErrorCode::BadFrame,
            ErrorCode::BadVersion,
            ErrorCode::BadKind,
            ErrorCode::ParseError,
            ErrorCode::InvalidSpec,
            ErrorCode::DeadlineExceeded,
            ErrorCode::WorkerPanic,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), code);
        }
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::Internal);
    }
}
