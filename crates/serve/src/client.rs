//! The submitting client: one-shot requests with capped exponential
//! backoff and deterministic jitter (DESIGN.md §8).
//!
//! Retry policy: transient failures — connect errors, I/O timeouts,
//! `BUSY` shedding, `WORKER_PANIC` (the replacement worker will serve the
//! retry) — back off exponentially from `backoff_base_ms`, doubling per
//! attempt up to `backoff_cap_ms`, each delay jittered into
//! `[d/2, d)` by a [`SimRng`] stream seeded from `retry_seed`. Permanent
//! failures — parse/validation errors, deadline exhaustion, shutdown —
//! surface immediately: retrying a deterministic rejection cannot change
//! the answer. The jitter being `SimRng`-derived keeps even the *client's
//! timing* reproducible for a fixed seed, which the chaos harness leans
//! on.

use std::net::TcpStream;
use std::time::Duration;

use rperf_sim::SimRng;

use crate::protocol::{
    decode_busy, decode_error, encode_submit, read_frame, req, resp, write_frame, ErrorCode, Frame,
    FrameError, DEFAULT_MAX_PAYLOAD,
};

/// Client tunables; `Default` matches the server defaults.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Socket read/write timeout, ms. The read timeout doubles as the
    /// client-side deadline on waiting for a response frame.
    pub io_timeout_ms: u64,
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// First backoff delay, ms.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, ms.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic retry jitter.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7117".to_string(),
            io_timeout_ms: 40_000,
            attempts: 5,
            backoff_base_ms: 100,
            backoff_cap_ms: 2_000,
            retry_seed: 0,
        }
    }
}

/// Why a submission (after all retries) failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on the final attempt.
    Io(String),
    /// The server answered, but not with a frame this client understands.
    Protocol(String),
    /// A typed server error (terminal ones surface immediately).
    Server {
        /// The typed code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// Every attempt was shed or failed transiently.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final attempt's failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "{code}: {message}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts (last: {last})")
            }
        }
    }
}

/// A successful submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The deterministic outcome JSON, byte-identical for identical
    /// (spec, seed) whether cold or cached.
    pub json: String,
    /// True when the server answered from its result cache.
    pub cached: bool,
    /// Attempts consumed (1 = first try).
    pub attempts: u32,
}

/// What one attempt produced, before retry classification.
enum Attempt {
    Done { json: String, cached: bool },
    Busy { retry_after_ms: u32 },
    ServerError { code: ErrorCode, message: String },
    IoFailed(String),
    ProtocolFailed(String),
}

/// A handle for submitting scenarios to one server.
#[derive(Debug, Clone)]
pub struct Client {
    cfg: ClientConfig,
}

impl Client {
    /// A client for `cfg.addr`.
    pub fn new(cfg: ClientConfig) -> Self {
        Client { cfg }
    }

    /// Submits `spec_text` with `seed`, retrying transient failures with
    /// capped exponential backoff + deterministic jitter.
    pub fn submit(&self, spec_text: &str, seed: u64) -> Result<SubmitOutcome, ClientError> {
        let mut rng = SimRng::new(self.cfg.retry_seed);
        let attempts = self.cfg.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match self.submit_once(spec_text, seed) {
                Attempt::Done { json, cached } => {
                    return Ok(SubmitOutcome {
                        json,
                        cached,
                        attempts: attempt + 1,
                    })
                }
                Attempt::Busy { retry_after_ms } => {
                    last = format!("SERVER_BUSY (retry after {retry_after_ms} ms)");
                    if attempt + 1 < attempts {
                        let d = self
                            .backoff_ms(attempt, &mut rng)
                            .max(retry_after_ms as u64);
                        std::thread::sleep(Duration::from_millis(d));
                    }
                }
                Attempt::ServerError { code, message } => {
                    if code == ErrorCode::WorkerPanic {
                        // Transient by design: the pool respawned; retry.
                        last = format!("{code}: {message}");
                        if attempt + 1 < attempts {
                            let d = self.backoff_ms(attempt, &mut rng);
                            std::thread::sleep(Duration::from_millis(d));
                        }
                    } else {
                        return Err(ClientError::Server { code, message });
                    }
                }
                Attempt::IoFailed(e) => {
                    last = format!("i/o: {e}");
                    if attempt + 1 < attempts {
                        let d = self.backoff_ms(attempt, &mut rng);
                        std::thread::sleep(Duration::from_millis(d));
                    }
                }
                Attempt::ProtocolFailed(e) => return Err(ClientError::Protocol(e)),
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Fetches the server's stats JSON.
    pub fn stats(&self) -> Result<String, ClientError> {
        let mut stream = self.connect().map_err(|e| ClientError::Io(e.to_string()))?;
        write_frame(&mut stream, req::STATS, b"").map_err(|e| ClientError::Io(e.to_string()))?;
        let frame = self.read_response(&mut stream)?;
        match frame.kind {
            resp::STATS_OK => String::from_utf8(frame.payload)
                .map_err(|e| ClientError::Protocol(format!("stats not UTF-8: {e}"))),
            other => Err(ClientError::Protocol(format!(
                "unexpected response kind {other:#04x} to STATS"
            ))),
        }
    }

    /// Asks the server to begin a graceful drain.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        let mut stream = self.connect().map_err(|e| ClientError::Io(e.to_string()))?;
        write_frame(&mut stream, req::SHUTDOWN, b"").map_err(|e| ClientError::Io(e.to_string()))?;
        let frame = self.read_response(&mut stream)?;
        match frame.kind {
            resp::OK => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response kind {other:#04x} to SHUTDOWN"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        let mut stream = self.connect().map_err(|e| ClientError::Io(e.to_string()))?;
        write_frame(&mut stream, req::PING, b"").map_err(|e| ClientError::Io(e.to_string()))?;
        let frame = self.read_response(&mut stream)?;
        match frame.kind {
            resp::PONG => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response kind {other:#04x} to PING"
            ))),
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.cfg.addr)?;
        let t = Duration::from_millis(self.cfg.io_timeout_ms.max(1));
        stream.set_read_timeout(Some(t))?;
        stream.set_write_timeout(Some(t))?;
        Ok(stream)
    }

    fn read_response(&self, stream: &mut TcpStream) -> Result<Frame, ClientError> {
        match read_frame(stream, DEFAULT_MAX_PAYLOAD) {
            Ok(f) => Ok(f),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e.to_string())),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    fn submit_once(&self, spec_text: &str, seed: u64) -> Attempt {
        let mut stream = match self.connect() {
            Ok(s) => s,
            Err(e) => return Attempt::IoFailed(e.to_string()),
        };
        let payload = encode_submit(seed, spec_text);
        if let Err(e) = write_frame(&mut stream, req::SUBMIT, &payload) {
            return Attempt::IoFailed(e.to_string());
        }
        let frame = match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
            Ok(f) => f,
            Err(FrameError::Io(e)) => return Attempt::IoFailed(e.to_string()),
            Err(e) => return Attempt::ProtocolFailed(e.to_string()),
        };
        match frame.kind {
            resp::RESULT | resp::RESULT_CACHED => match String::from_utf8(frame.payload) {
                Ok(json) => Attempt::Done {
                    json,
                    cached: frame.kind == resp::RESULT_CACHED,
                },
                Err(e) => Attempt::ProtocolFailed(format!("result not UTF-8: {e}")),
            },
            resp::BUSY => Attempt::Busy {
                retry_after_ms: decode_busy(&frame.payload),
            },
            resp::ERROR => {
                let (code, message) = decode_error(&frame.payload);
                Attempt::ServerError { code, message }
            }
            other => Attempt::ProtocolFailed(format!("unexpected response kind {other:#04x}")),
        }
    }

    /// The delay before retry number `attempt + 1`: exponential from the
    /// base, capped, jittered into `[d/2, d)` deterministically.
    fn backoff_ms(&self, attempt: u32, rng: &mut SimRng) -> u64 {
        let base = self.cfg.backoff_base_ms.max(1);
        let cap = self.cfg.backoff_cap_ms.max(base);
        let d = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let half = (d / 2).max(1);
        half + rng.below(half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(attempts: u32) -> Client {
        Client::new(ClientConfig {
            attempts,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            retry_seed: 7,
            ..ClientConfig::default()
        })
    }

    #[test]
    fn backoff_is_capped_exponential_with_jitter() {
        let c = client(8);
        let mut rng = SimRng::new(7);
        let mut prev_max = 0u64;
        for attempt in 0..8 {
            let d = c.backoff_ms(attempt, &mut rng);
            let nominal = (100u64 << attempt).min(1_000);
            assert!(
                d >= nominal / 2 && d < nominal.max(2),
                "attempt {attempt}: delay {d} outside [{}, {})",
                nominal / 2,
                nominal
            );
            prev_max = prev_max.max(d);
        }
        assert!(prev_max < 1_000, "cap violated: {prev_max}");
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let c = client(5);
        let series = |seed: u64| {
            let mut rng = SimRng::new(seed);
            (0..5)
                .map(|a| c.backoff_ms(a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(series(7), series(7));
        assert_ne!(series(7), series(8));
    }
}
