//! The `rperf-serve` daemon binary.
//!
//! ```text
//! rperf-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--cache N] [--deadline-ms N] [--io-timeout-ms N]
//! ```
//!
//! Binds, prints the listening address, and serves until a client sends a
//! SHUTDOWN frame (`rperf-cli serve-stats --shutdown`), then drains
//! gracefully and prints the final stats snapshot to stdout.

#![forbid(unsafe_code)]

use rperf_serve::{ServeConfig, Server};
use std::process::ExitCode;

const USAGE: &str = "usage: rperf-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                     [--cache N] [--deadline-ms N] [--io-timeout-ms N]";

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7117".to_string(),
        ..ServeConfig::default()
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = value(args, i, "--addr")?;
                i += 2;
            }
            "--workers" => {
                cfg.workers = value(args, i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                i += 2;
            }
            "--queue-depth" => {
                cfg.queue_depth = value(args, i, "--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
                i += 2;
            }
            "--cache" => {
                cfg.cache_entries = value(args, i, "--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
                i += 2;
            }
            "--deadline-ms" => {
                cfg.deadline_ms = value(args, i, "--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                i += 2;
            }
            "--io-timeout-ms" => {
                cfg.io_timeout_ms = value(args, i, "--io-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--io-timeout-ms: {e}"))?;
                i += 2;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rperf-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("rperf-serve listening on {}", server.addr());
    let final_stats = server.run_until_shutdown();
    println!("{final_stats}");
    ExitCode::SUCCESS
}
