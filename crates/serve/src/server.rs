//! The daemon: acceptor, connection handlers, warm worker pool, result
//! cache, load shedding and graceful drain (DESIGN.md §8).
//!
//! Robustness invariants this module enforces end-to-end:
//!
//! * **Deadlines** — every submission gets `deadline_ms` of wall clock,
//!   measured from frame receipt. The budget covers queue wait *and*
//!   simulation (a cooperative cancellation hook polls the clock between
//!   event chunks inside `rperf::execute_budgeted`), and socket
//!   read/write timeouts bound the transport on both sides.
//! * **Bounded admission** — the worker pool's queue is a fixed-depth
//!   `sync_channel`; when it is full the server *sheds* with a typed
//!   `BUSY` + retry-after hint instead of queueing unboundedly.
//! * **Panic isolation** — a worker panic is caught at the job boundary
//!   (`rperf_runner::WorkerPool`); the poisoned request is answered with
//!   a typed `WORKER_PANIC` error by a reply drop-guard that runs during
//!   unwinding, and a replacement worker restores capacity.
//! * **Request coalescing** — concurrent submissions of the same
//!   (spec, seed) share one simulation: later arrivals register as
//!   waiters on the in-flight key instead of duplicating work.
//! * **Graceful drain** — on shutdown the acceptor stops, new submits
//!   are rejected with `SHUTTING_DOWN`, in-flight work finishes or
//!   deadlines out, and the final stats snapshot is flushed.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rperf::{execute_budgeted, ExecBudget, ScenarioSpec};
use rperf_runner::{SubmitError, WorkerPool};
use rperf_stats::json;

use crate::cache::{cache_key, ResultCache};
use crate::chaos::FaultPlan;
use crate::protocol::{
    decode_submit, encode_busy, encode_error, read_frame, req, resp, write_frame, ErrorCode,
    FrameError,
};

/// Identifies the build for cache-key derivation: outcomes are a pure
/// function of (spec, seed, code version), so a version bump fences all
/// cached results from older code.
pub const CODE_VERSION: &str = concat!("rperf-serve/", env!("CARGO_PKG_VERSION"));

/// Server tunables. `Default` suits tests and local runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads in the warm pool.
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it, submissions shed.
    pub queue_depth: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Per-request wall-clock budget (queue wait + simulation), ms.
    pub deadline_ms: u64,
    /// Socket read/write timeout, ms (also the idle-connection bound).
    pub io_timeout_ms: u64,
    /// Cap on frame payload length, bytes.
    pub max_payload: u32,
    /// Cap on simulated events per request (`u64::MAX` = deadline only).
    pub max_events: u64,
    /// Events between cancellation-hook polls in the executor.
    pub check_every: u64,
    /// Deterministic fault schedule (chaos testing).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_entries: 256,
            deadline_ms: 30_000,
            io_timeout_ms: 10_000,
            max_payload: crate::protocol::DEFAULT_MAX_PAYLOAD,
            max_events: u64::MAX,
            check_every: 8_192,
            faults: FaultPlan::default(),
        }
    }
}

/// Monotonic service counters, exported via the STATS response.
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    requests: AtomicU64,
    submits: AtomicU64,
    results_ok: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    shed_busy: AtomicU64,
    deadline_exceeded: AtomicU64,
    parse_errors: AtomicU64,
    invalid_specs: AtomicU64,
    bad_frames: AtomicU64,
    shutdown_rejected: AtomicU64,
}

macro_rules! bump {
    ($shared:expr, $field:ident) => {
        $shared.stats.$field.fetch_add(1, Ordering::Relaxed)
    };
}

/// What a worker reports back to every waiter of one cache key.
#[derive(Clone)]
enum Reply {
    Done(Arc<String>),
    Deadline,
    Panicked,
}

/// One admitted unit of work.
struct Job {
    seq: u64,
    key: u128,
    spec: ScenarioSpec,
    seed: u64,
    deadline: Instant,
}

struct Shared {
    cfg: ServeConfig,
    stats: Stats,
    cache: Mutex<ResultCache>,
    waiters: Mutex<std::collections::BTreeMap<u128, Vec<SyncSender<Reply>>>>,
    pool: WorkerPool<Job>,
    draining: AtomicBool,
    job_seq: AtomicU64,
    conns_live: AtomicUsize,
}

/// Sends `reply` to every waiter registered under `key`.
fn broadcast(shared: &Shared, key: u128, reply: &Reply) {
    let mut map = shared.waiters.lock().expect("waiters lock poisoned");
    if let Some(txs) = map.remove(&key) {
        for tx in txs {
            // A waiter that already gave up (deadline) dropped its
            // receiver; its slot errors out harmlessly.
            let _ = tx.send(reply.clone());
        }
    }
}

/// Guarantees every admitted job answers its waiters, even when the
/// worker panics mid-run: `Drop` runs during unwinding and broadcasts a
/// typed `WORKER_PANIC` reply, so the poisoned request never hangs.
struct ReplyGuard {
    shared: Arc<Shared>,
    key: u128,
    armed: bool,
}

impl Drop for ReplyGuard {
    fn drop(&mut self) {
        if self.armed {
            broadcast(&self.shared, self.key, &Reply::Panicked);
        }
    }
}

/// Runs one admitted job on a pool worker.
fn run_job(shared: &Arc<Shared>, job: Job) {
    let mut guard = ReplyGuard {
        shared: Arc::clone(shared),
        key: job.key,
        armed: true,
    };
    // Queued past the deadline? Refuse to start: the waiter has already
    // timed out or is about to, and simulating for nobody wastes a worker.
    if Instant::now() >= job.deadline {
        bump!(shared, deadline_exceeded);
        broadcast(shared, job.key, &Reply::Deadline);
        guard.armed = false;
        return;
    }
    if shared.cfg.faults.should_panic(job.seq) {
        panic!("chaos: injected worker panic on job {}", job.seq);
    }
    let deadline = job.deadline;
    let mut cancelled = move || Instant::now() >= deadline;
    let budget = ExecBudget {
        max_events: shared.cfg.max_events,
        check_every: shared.cfg.check_every,
        cancelled: Some(&mut cancelled),
    };
    match execute_budgeted(&job.spec, job.seed, budget) {
        Ok(outcome) => {
            let bytes = Arc::new(outcome.to_json());
            shared
                .cache
                .lock()
                .expect("cache lock poisoned")
                .insert(job.key, Arc::clone(&bytes));
            bump!(shared, results_ok);
            broadcast(shared, job.key, &Reply::Done(bytes));
        }
        Err(_interrupt) => {
            // Wall-clock cancellation and event-budget exhaustion both
            // surface as a deadline to the client: the request cost more
            // than its budget allows.
            bump!(shared, deadline_exceeded);
            broadcast(shared, job.key, &Reply::Deadline);
        }
    }
    guard.armed = false;
}

/// A running server; dropping it does **not** stop the daemon — call
/// [`Server::shutdown`] for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("draining", &self.shared.draining.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, spawns the warm worker pool and the acceptor, and returns.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let shared = Arc::new_cyclic(|weak: &std::sync::Weak<Shared>| {
            let weak = weak.clone();
            let pool = WorkerPool::new(cfg.workers, cfg.queue_depth, move |job: Job| {
                if let Some(shared) = weak.upgrade() {
                    run_job(&shared, job);
                }
            });
            Shared {
                cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
                waiters: Mutex::new(std::collections::BTreeMap::new()),
                pool,
                draining: AtomicBool::new(false),
                job_seq: AtomicU64::new(0),
                conns_live: AtomicUsize::new(0),
                stats: Stats::default(),
                cfg,
            }
        });

        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("rperf-serve-accept".to_string())
            .spawn(move || accept_loop(listener, acceptor_shared))?;

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain has begun (locally or via a SHUTDOWN frame).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// A point-in-time stats snapshot as deterministic-writer JSON.
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Blocks until a drain begins (e.g. a client sent SHUTDOWN), then
    /// completes it; returns the final stats snapshot.
    pub fn run_until_shutdown(mut self) -> String {
        while !self.is_draining() {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.finish_drain()
    }

    /// Gracefully drains: stop accepting, reject new submits, let
    /// in-flight work finish or deadline out, stop the workers, flush
    /// stats. Returns the final stats snapshot.
    pub fn shutdown(mut self) -> String {
        self.shared.begin_drain();
        self.finish_drain()
    }

    fn finish_drain(&mut self) -> String {
        let cfg = &self.shared.cfg;
        // Connections bound themselves: reads time out after
        // io_timeout_ms and in-flight submissions resolve within
        // deadline_ms, so anything beyond that is a bug we refuse to
        // hang on.
        let conn_wait_ms = cfg.io_timeout_ms + cfg.deadline_ms + 2_000;
        let mut waited = 0u64;
        while self.shared.conns_live.load(Ordering::SeqCst) > 0 && waited < conn_wait_ms {
            std::thread::sleep(Duration::from_millis(5));
            waited += 5;
        }
        self.shared.pool.drain(5, cfg.deadline_ms + 2_000);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        stats_json(&self.shared)
    }
}

impl Shared {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Close admission; queued jobs still run to completion.
        self.pool.close();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                bump!(shared, connections);
                shared.conns_live.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("rperf-serve-conn".to_string())
                    .spawn(move || {
                        serve_conn(stream, &conn_shared);
                        conn_shared.conns_live.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.conns_live.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection until it closes, errors, stalls past the I/O
/// timeout, or sends an unsynchronizable frame.
fn serve_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    let mut stream = stream;
    if stream.set_read_timeout(Some(io_timeout)).is_err()
        || stream.set_write_timeout(Some(io_timeout)).is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_payload) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => {
                // EOF, a transport error, or a stalled/truncating client
                // hitting the read timeout: nothing to salvage.
                return;
            }
            Err(e) => {
                // Structurally bad frame: answer typed, then close — the
                // stream offset is no longer trustworthy.
                bump!(shared, bad_frames);
                let payload = encode_error(e.code(), &e.to_string());
                let _ = write_frame(&mut stream, resp::ERROR, &payload);
                return;
            }
        };
        bump!(shared, requests);
        let ok = match frame.kind {
            req::SUBMIT => handle_submit(&mut stream, shared, &frame.payload),
            req::STATS => {
                write_frame(&mut stream, resp::STATS_OK, stats_json(shared).as_bytes()).is_ok()
            }
            req::PING => write_frame(&mut stream, resp::PONG, b"").is_ok(),
            req::SHUTDOWN => {
                // Drain *before* acknowledging: a client that read the OK
                // may immediately observe `SHUTTING_DOWN` on other
                // connections, never a still-accepting server.
                shared.begin_drain();
                let _ = write_frame(&mut stream, resp::OK, b"");
                false
            }
            other => {
                let payload = encode_error(
                    ErrorCode::BadKind,
                    &format!("unknown request kind {other:#04x}"),
                );
                write_frame(&mut stream, resp::ERROR, &payload).is_ok()
            }
        };
        if !ok {
            return;
        }
    }
}

/// Milliseconds a shed client should wait before retrying: a fraction of
/// the deadline, clamped to a sensible band.
fn retry_after_ms(cfg: &ServeConfig) -> u32 {
    (cfg.deadline_ms / 10).clamp(50, 1_000) as u32
}

fn reply_error(stream: &mut TcpStream, code: ErrorCode, msg: &str) -> bool {
    let payload = encode_error(code, msg);
    write_frame(stream, resp::ERROR, &payload).is_ok()
}

/// Handles one SUBMIT end-to-end; returns false when the connection
/// should close.
fn handle_submit(stream: &mut TcpStream, shared: &Arc<Shared>, payload: &[u8]) -> bool {
    bump!(shared, submits);
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.deadline_ms);

    let (seed, text) = match decode_submit(payload) {
        Ok(pair) => pair,
        Err(msg) => {
            bump!(shared, bad_frames);
            return reply_error(stream, ErrorCode::BadFrame, &msg);
        }
    };
    let spec = match ScenarioSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            bump!(shared, parse_errors);
            return reply_error(stream, ErrorCode::ParseError, &e.to_string());
        }
    };
    if let Err(msg) = spec.validate() {
        bump!(shared, invalid_specs);
        return reply_error(stream, ErrorCode::InvalidSpec, &msg);
    }

    // Canonical text, not client bytes: formatting differences share a
    // cache line. The `shards` knob is normalized away too — it selects
    // an execution engine, not a scenario, and sharded outcomes are
    // byte-identical to sequential ones (DESIGN.md §3.7) — so a sharded
    // submission is served from a sequential run's cache entry and vice
    // versa.
    let canonical = spec.clone().with_shards(1).to_text();
    let key = cache_key(&canonical, seed, CODE_VERSION);

    if let Some(bytes) = shared.cache.lock().expect("cache lock poisoned").get(key) {
        bump!(shared, cache_hits);
        return write_frame(stream, resp::RESULT_CACHED, bytes.as_bytes()).is_ok();
    }
    bump!(shared, cache_misses);

    if shared.draining.load(Ordering::SeqCst) {
        bump!(shared, shutdown_rejected);
        return reply_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }

    // Register as a waiter; the waiters lock is held across admission so
    // a worker's broadcast cannot slip between "no entry" and "queued".
    let (tx, rx) = sync_channel::<Reply>(1);
    {
        let mut map = shared.waiters.lock().expect("waiters lock poisoned");
        if let Some(entry) = map.get_mut(&key) {
            // Same (spec, seed) already in flight: share its simulation.
            entry.push(tx);
            bump!(shared, coalesced);
        } else {
            let job = Job {
                seq: shared.job_seq.fetch_add(1, Ordering::SeqCst),
                key,
                spec,
                seed,
                deadline,
            };
            match shared.pool.try_submit(job) {
                Ok(()) => {
                    map.insert(key, vec![tx]);
                }
                Err(SubmitError::Full(_)) => {
                    drop(map);
                    bump!(shared, shed_busy);
                    let payload = encode_busy(retry_after_ms(&shared.cfg));
                    return write_frame(stream, resp::BUSY, &payload).is_ok();
                }
                Err(SubmitError::Closed(_)) => {
                    drop(map);
                    bump!(shared, shutdown_rejected);
                    return reply_error(stream, ErrorCode::ShuttingDown, "server is draining");
                }
            }
        }
    }

    // Wait out the deadline plus one cancellation-poll of slack (the
    // worker needs a moment to notice the clock and reply).
    let wait = deadline.saturating_duration_since(Instant::now()) + Duration::from_millis(500);
    match rx.recv_timeout(wait) {
        Ok(Reply::Done(bytes)) => write_frame(stream, resp::RESULT, bytes.as_bytes()).is_ok(),
        Ok(Reply::Deadline) => reply_error(
            stream,
            ErrorCode::DeadlineExceeded,
            &format!("request exceeded its {} ms budget", shared.cfg.deadline_ms),
        ),
        Ok(Reply::Panicked) => reply_error(
            stream,
            ErrorCode::WorkerPanic,
            "worker panicked while running this scenario; a replacement was spawned",
        ),
        Err(RecvTimeoutError::Timeout) => {
            bump!(shared, deadline_exceeded);
            reply_error(
                stream,
                ErrorCode::DeadlineExceeded,
                &format!("no worker reply within {} ms", shared.cfg.deadline_ms),
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            reply_error(stream, ErrorCode::Internal, "reply channel dropped")
        }
    }
}

fn stats_json(shared: &Shared) -> String {
    let s = &shared.stats;
    let get = |a: &AtomicU64| json::uint(a.load(Ordering::Relaxed));
    let cache_len = shared.cache.lock().expect("cache lock poisoned").len() as u64;
    json::object([
        ("connections", get(&s.connections)),
        ("requests", get(&s.requests)),
        ("submits", get(&s.submits)),
        ("results_ok", get(&s.results_ok)),
        ("cache_hits", get(&s.cache_hits)),
        ("cache_misses", get(&s.cache_misses)),
        ("coalesced", get(&s.coalesced)),
        ("shed_busy", get(&s.shed_busy)),
        ("deadline_exceeded", get(&s.deadline_exceeded)),
        ("parse_errors", get(&s.parse_errors)),
        ("invalid_specs", get(&s.invalid_specs)),
        ("bad_frames", get(&s.bad_frames)),
        ("shutdown_rejected", get(&s.shutdown_rejected)),
        ("worker_panics", json::uint(shared.pool.panics())),
        ("workers_respawned", json::uint(shared.pool.respawned())),
        (
            "workers_live",
            json::uint(shared.pool.live_workers() as u64),
        ),
        ("cache_entries", json::uint(cache_len)),
        (
            "draining",
            json::uint(u64::from(shared.draining.load(Ordering::SeqCst))),
        ),
        ("queue_depth", json::uint(shared.cfg.queue_depth as u64)),
        ("workers", json::uint(shared.cfg.workers as u64)),
        ("code_version", json::string(CODE_VERSION)),
    ])
}
