//! Deterministic fault injection (DESIGN.md §8).
//!
//! Chaos testing here is *scripted*, not random: a [`FaultPlan`] names
//! exactly which admitted jobs panic their worker, and the client-side
//! injectors each perform one precisely malformed interaction. Every
//! chaos run is therefore reproducible — the same plan produces the same
//! fault sequence, so a failure found once can be replayed forever.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A scripted fault schedule for one server instance.
///
/// Job sequence numbers are assigned at admission (0-based, monotonic),
/// so "panic worker on job 2" is deterministic given a deterministic
/// request order — and harmless noise otherwise: some job's worker dies,
/// that request gets a typed `WORKER_PANIC`, and a respawn restores the
/// pool either way.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Admission sequence numbers whose worker panics mid-request.
    pub panic_on_jobs: Vec<u64>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the job with admission number `seq` must panic.
    pub fn should_panic(&self, seq: u64) -> bool {
        self.panic_on_jobs.contains(&seq)
    }
}

/// Sends raw garbage (wrong magic) and returns the server's reply bytes
/// (a typed `BAD_FRAME` error frame, read to EOF since the server closes
/// after an unsynchronizable frame).
pub fn inject_malformed_frame(addr: &str, io_timeout: Duration) -> std::io::Result<Vec<u8>> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(io_timeout))?;
    s.set_write_timeout(Some(io_timeout))?;
    s.write_all(b"JUNKJUNKJUNKJUNK")?;
    let mut reply = Vec::new();
    let _ = s.read_to_end(&mut reply);
    Ok(reply)
}

/// Sends a frame header that promises `declared` payload bytes, delivers
/// only a fragment, and half-closes. Returns the bytes the server sent
/// back before closing (expected: none — a truncated frame is an I/O
/// error, not a protocol reply).
pub fn inject_truncated_frame(addr: &str, io_timeout: Duration) -> std::io::Result<Vec<u8>> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(io_timeout))?;
    s.set_write_timeout(Some(io_timeout))?;
    let mut frame = Vec::new();
    frame.extend_from_slice(&crate::protocol::MAGIC);
    frame.push(crate::protocol::VERSION);
    frame.push(crate::protocol::req::SUBMIT);
    frame.extend_from_slice(&100u32.to_be_bytes());
    frame.extend_from_slice(b"only ten b"); // 10 of the promised 100
    s.write_all(&frame)?;
    s.shutdown(std::net::Shutdown::Write)?;
    let mut reply = Vec::new();
    let _ = s.read_to_end(&mut reply);
    Ok(reply)
}

/// Connects, sends half a header, then stalls for `hold`. Returns `true`
/// if the server had closed the connection by the time the stall ended —
/// the defense a read timeout buys against slow-loris clients.
pub fn inject_stalled_client(addr: &str, hold: Duration) -> std::io::Result<bool> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(hold + Duration::from_millis(500)))?;
    s.set_write_timeout(Some(Duration::from_millis(2_000)))?;
    s.write_all(&crate::protocol::MAGIC[..2])?;
    std::thread::sleep(hold);
    // After the server's read timeout, the socket is closed: a read sees
    // EOF (Ok(0)) or a reset error; both count as "closed on us".
    let mut buf = [0u8; 16];
    match s.read(&mut buf) {
        Ok(0) => Ok(true),
        Ok(_) => Ok(false),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ) =>
        {
            Ok(true)
        }
        Err(_) => Ok(false),
    }
}
