//! The content-addressed result cache (DESIGN.md §8).
//!
//! Determinism makes caching *sound*: a scenario outcome is a pure
//! function of (canonical spec text, seed, code version), so the cache
//! key is a 128-bit FNV-1a hash over exactly those three inputs and a
//! hit can be served byte-identical to a cold run. The code-version
//! component fences cache entries across builds — a behavior change that
//! alters outcomes also changes the key, so a stale entry can never
//! shadow a corrected result (entries do not persist across processes,
//! but the fence keeps the key derivation honest either way).
//!
//! The store is a bounded LRU built on two `BTreeMap`s (key → entry and
//! recency-stamp → key); the workspace bans `HashMap` (lint rule D1), and
//! O(log n) on a few hundred entries is nowhere near any hot path.

use std::collections::BTreeMap;
use std::sync::Arc;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x1000000000000000000013b;

/// 128-bit FNV-1a over `bytes` (the workspace is offline; a tiny
/// well-known hash beats carrying a crypto dependency, and cache keys
/// need collision *rarity*, not adversarial resistance — a forged
/// collision could only ever poison the forger's own cache entry).
fn fnv1a_128(h: u128, bytes: &[u8]) -> u128 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV128_PRIME);
    }
    h
}

/// Derives the cache key for one submission.
///
/// `canonical_spec` must be [`to_text`](rperf::ScenarioSpec::to_text)
/// output, not raw client bytes: two textual spellings of the same spec
/// (comments, field order) then share one cache line.
pub fn cache_key(canonical_spec: &str, seed: u64, code_version: &str) -> u128 {
    let mut h = fnv1a_128(FNV128_OFFSET, canonical_spec.as_bytes());
    h = fnv1a_128(h, &seed.to_be_bytes());
    fnv1a_128(h, code_version.as_bytes())
}

struct Entry {
    stamp: u64,
    bytes: Arc<String>,
}

/// A bounded LRU mapping cache keys to outcome JSON.
pub struct ResultCache {
    cap: usize,
    tick: u64,
    by_key: BTreeMap<u128, Entry>,
    by_stamp: BTreeMap<u64, u128>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("cap", &self.cap)
            .field("len", &self.by_key.len())
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// An empty cache holding at most `cap` entries (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        ResultCache {
            cap: cap.max(1),
            tick: 0,
            by_key: BTreeMap::new(),
            by_stamp: BTreeMap::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<Arc<String>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.by_key.get_mut(&key)?;
        self.by_stamp.remove(&entry.stamp);
        entry.stamp = tick;
        self.by_stamp.insert(tick, key);
        Some(Arc::clone(&entry.bytes))
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&mut self, key: u128, bytes: Arc<String>) {
        self.tick += 1;
        if let Some(old) = self.by_key.remove(&key) {
            self.by_stamp.remove(&old.stamp);
        } else if self.by_key.len() >= self.cap {
            if let Some((&oldest, &victim)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&oldest);
                self.by_key.remove(&victim);
            }
        }
        self.by_key.insert(
            key,
            Entry {
                stamp: self.tick,
                bytes,
            },
        );
        self.by_stamp.insert(self.tick, key);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn key_depends_on_every_component() {
        let base = cache_key("spec", 1, "v1");
        assert_ne!(base, cache_key("spec!", 1, "v1"));
        assert_ne!(base, cache_key("spec", 2, "v1"));
        assert_ne!(base, cache_key("spec", 1, "v2"));
        assert_eq!(base, cache_key("spec", 1, "v1"));
    }

    #[test]
    fn component_boundaries_do_not_alias() {
        // Moving bytes between the spec and version components must not
        // produce the same key (the seed's fixed width separates them).
        assert_ne!(cache_key("ab", 0, "c"), cache_key("a", 0, "bc"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, a("one"));
        c.insert(2, a("two"));
        assert_eq!(c.get(1).as_deref().map(|s| s.as_str()), Some("one"));
        c.insert(3, a("three")); // evicts 2, the LRU
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(1, a("one"));
        c.insert(1, a("one again"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).as_deref().map(|s| s.as_str()), Some("one again"));
        assert!(!c.is_empty());
    }
}
