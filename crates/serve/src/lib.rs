//! `rperf-serve`: a fault-tolerant scenario-serving daemon.
//!
//! The ROADMAP's north star is a production-scale service answering
//! scenario queries for many users; this crate is its front door. It
//! accepts canonical [`ScenarioSpec`](rperf::ScenarioSpec) text over a
//! hand-rolled length-prefixed TCP protocol ([`protocol`]), runs
//! simulations on a warm, panic-isolated worker pool
//! ([`rperf_runner::WorkerPool`]) and returns the deterministic outcome
//! JSON — byte-identical for identical (spec, seed), which makes the
//! content-addressed result cache ([`cache`]) sound.
//!
//! Robustness is the headline design axis (DESIGN.md §8):
//!
//! * per-request **deadlines** enforced end-to-end (socket timeouts +
//!   wall-clock/event budgets via `rperf::execute_budgeted`'s
//!   cooperative cancellation hook),
//! * **bounded admission** with typed `SERVER_BUSY` load shedding and a
//!   retry-after hint,
//! * **worker panic isolation** — catch, typed `WORKER_PANIC` reply,
//!   respawn,
//! * client-side **retry** with capped exponential backoff and
//!   deterministic jitter ([`client`]),
//! * **graceful drain** on shutdown, flushing a final stats snapshot,
//! * a scripted, reproducible **chaos harness** ([`chaos`]).
//!
//! Everything is std-only: no async runtime, no serialization crates —
//! one thread per connection, a `sync_channel` admission queue, and the
//! workspace's deterministic JSON writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod protocol;
mod server;

pub use client::{Client, ClientConfig, ClientError, SubmitOutcome};
pub use server::{ServeConfig, Server, CODE_VERSION};
