//! The deterministic chaos schedule (ISSUE 6 acceptance): scripted
//! faults — a worker killed mid-request, truncated frames, stalled
//! clients, an overload burst past the admission bound, a request whose
//! budget cannot cover its simulation — each must surface as a *typed*
//! outcome, never a hang, and the server must keep serving afterwards.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use rperf_serve::chaos::{inject_stalled_client, inject_truncated_frame, FaultPlan};
use rperf_serve::protocol::{
    decode_error, encode_submit, read_frame, req, resp, write_frame, ErrorCode, DEFAULT_MAX_PAYLOAD,
};
use rperf_serve::{Client, ClientConfig, ClientError, ServeConfig, Server};
use rperf_stats::json::{parse, Value};

fn spec_text(name: &str) -> String {
    let path = format!(
        "{}/../../examples/scenarios/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats snapshot missing counter `{key}`"))
}

fn one_shot_client(addr: &str) -> Client {
    Client::new(ClientConfig {
        addr: addr.to_string(),
        io_timeout_ms: 60_000,
        attempts: 1,
        ..ClientConfig::default()
    })
}

/// Worker killed mid-request: the waiter gets a typed `WORKER_PANIC`
/// (no retry masking it), the pool respawns, and the very next request
/// succeeds on the replacement worker.
#[test]
fn worker_panic_mid_request_is_typed_and_recovered() {
    let server = Server::start(ServeConfig {
        workers: 1,
        faults: FaultPlan {
            panic_on_jobs: vec![0],
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let spec = spec_text("incast_8.scn");

    // WORKER_PANIC is transient to the client (the pool respawns), so a
    // one-shot client reports it as exhaustion wrapping the typed code.
    match one_shot_client(&addr).submit(&spec, 1) {
        Err(ClientError::Exhausted { last, .. }) => {
            assert!(
                last.contains("WORKER_PANIC"),
                "untyped panic outcome: {last}"
            )
        }
        other => panic!("expected a typed WORKER_PANIC, got {other:?}"),
    }

    // The replacement worker serves the retry — same key, cold cache.
    let ok = one_shot_client(&addr)
        .submit(&spec, 1)
        .expect("replacement worker must serve the retry");
    assert!(!ok.cached);

    let stats = parse(&server.shutdown()).expect("final stats parse");
    assert_eq!(stat(&stats, "worker_panics"), 1);
    assert_eq!(stat(&stats, "workers_respawned"), 1);
    assert_eq!(stat(&stats, "results_ok"), 1);
}

/// A truncated frame (header promises more bytes than arrive) is an I/O
/// timeout, not a crash: the connection dies quietly and the server keeps
/// answering well-formed traffic.
#[test]
fn truncated_frame_times_out_quietly() {
    let server = Server::start(ServeConfig {
        io_timeout_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let reply = inject_truncated_frame(&addr, Duration::from_secs(5))
        .expect("truncated-frame injection failed");
    assert!(
        reply.is_empty(),
        "a truncated frame must be dropped, not answered: got {} bytes",
        reply.len()
    );

    one_shot_client(&addr)
        .ping()
        .expect("server must survive a truncated frame");
    let _ = server.shutdown();
}

/// A stalled (slow-loris) client is disconnected once the read timeout
/// lapses, and the listener keeps accepting.
#[test]
fn stalled_client_is_disconnected_by_the_read_timeout() {
    let server = Server::start(ServeConfig {
        io_timeout_ms: 200,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let closed = inject_stalled_client(&addr, Duration::from_millis(900))
        .expect("stalled-client injection failed");
    assert!(
        closed,
        "server left a stalled connection open past its read timeout"
    );

    one_shot_client(&addr)
        .ping()
        .expect("server must survive a stalled client");
    let _ = server.shutdown();
}

/// An overload burst past the bounded admission queue sheds with typed
/// `SERVER_BUSY` — nobody hangs, and the requests that were admitted all
/// complete.
#[test]
fn overload_burst_sheds_with_typed_busy() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        deadline_ms: 60_000,
        io_timeout_ms: 60_000,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    // A slower variant of the example scenario widens the window in which
    // the burst lands on a busy pool.
    let spec = spec_text("incast_8.scn").replace("duration_ms = 2", "duration_ms = 10");
    assert!(
        spec.contains("duration_ms = 10"),
        "smoke spec shape changed"
    );

    let mut handles = Vec::new();
    for seed in 0..16u64 {
        let addr = addr.clone();
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            one_shot_client(&addr).submit(&spec, seed)
        }));
    }

    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(_) => served += 1,
            // attempts = 1, so a shed surfaces as Exhausted wrapping the
            // typed SERVER_BUSY (retries would have absorbed it).
            Err(ClientError::Exhausted { last, .. }) if last.contains("SERVER_BUSY") => {
                shed += 1;
            }
            Err(other) => panic!("untyped overload outcome: {other}"),
        }
    }
    assert_eq!(served + shed, 16);
    assert!(served >= 1, "at least the admitted requests must complete");
    assert!(
        shed >= 1,
        "a 16-deep burst into workers=1/queue=1 must shed"
    );

    let stats = parse(&server.shutdown()).expect("final stats parse");
    assert_eq!(stat(&stats, "shed_busy"), shed);
    assert_eq!(stat(&stats, "results_ok"), served);
}

/// A request whose event budget cannot cover its simulation gets a typed
/// `DEADLINE_EXCEEDED` — deterministically, via the executor's
/// cooperative cancellation machinery rather than a wall-clock race.
#[test]
fn exhausted_budget_is_a_typed_deadline() {
    let server = Server::start(ServeConfig {
        max_events: 1_000,
        check_every: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    match one_shot_client(&addr).submit(&spec_text("incast_8.scn"), 2) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::DeadlineExceeded)
        }
        other => panic!("expected a typed DEADLINE_EXCEEDED, got {other:?}"),
    }

    let stats = parse(&server.shutdown()).expect("final stats parse");
    assert!(stat(&stats, "deadline_exceeded") >= 1);
    assert_eq!(stat(&stats, "results_ok"), 0);
}

/// Cache cold-vs-hit byte identity: the served response equals a local
/// `rperf::execute` of the same (spec, seed) byte-for-byte, and the cached
/// replay equals the cold response.
#[test]
fn cached_replay_is_byte_identical_to_cold_and_local() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let text = spec_text("chain_gaming.scn");

    let spec = rperf::ScenarioSpec::parse(&text).expect("example spec parses");
    let local = rperf::execute(&spec, 7).to_json();

    let cold = one_shot_client(&addr)
        .submit(&text, 7)
        .expect("cold submit");
    assert!(!cold.cached);
    assert_eq!(cold.json, local, "served outcome differs from a local run");

    let warm = one_shot_client(&addr)
        .submit(&text, 7)
        .expect("warm submit");
    assert!(warm.cached, "identical (spec, seed) must hit the cache");
    assert_eq!(warm.json, cold.json);

    // A different seed is a different key: cold again.
    let other = one_shot_client(&addr)
        .submit(&text, 8)
        .expect("other-seed submit");
    assert!(!other.cached);

    let stats = parse(&server.shutdown()).expect("final stats parse");
    assert_eq!(stat(&stats, "cache_hits"), 1);
    assert_eq!(stat(&stats, "cache_misses"), 2);
}

/// Graceful drain: once a SHUTDOWN is acknowledged, already-open
/// connections that submit new work get a typed `SHUTTING_DOWN`, and the
/// final snapshot records the rejection.
#[test]
fn drain_rejects_new_submissions_with_typed_shutting_down() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();

    // Open a connection *before* the drain begins...
    let mut early = TcpStream::connect(&addr).expect("connect before drain");
    early
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // ...then drain; the OK is only written after the draining flag is set.
    one_shot_client(&addr)
        .shutdown()
        .expect("SHUTDOWN handshake");
    assert!(server.is_draining());

    let payload = encode_submit(99, &spec_text("incast_8.scn"));
    write_frame(&mut early, req::SUBMIT, &payload).expect("submit on pre-drain connection");
    early.flush().expect("flush");
    let frame = read_frame(&mut early, DEFAULT_MAX_PAYLOAD).expect("typed reply while draining");
    assert_eq!(frame.kind, resp::ERROR);
    let (code, _msg) = decode_error(&frame.payload);
    assert_eq!(code, ErrorCode::ShuttingDown);
    drop(early);

    let stats = parse(&server.run_until_shutdown()).expect("final stats parse");
    assert_eq!(stat(&stats, "shutdown_rejected"), 1);
    assert_eq!(stat(&stats, "draining"), 1);
    assert_eq!(stat(&stats, "workers_live"), 0);
}
