//! Wire-protocol property tests (ISSUE 6, satellite 3): arbitrary
//! truncations, oversized length declarations, wrong magic, wrong
//! version, and random bit flips of otherwise-valid frames must all
//! resolve to a typed [`FrameError`] or a clean frame — [`read_frame`]
//! never panics, and a live server never answers garbage with garbage.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use rperf_serve::protocol::{
    decode_error, encode_submit, read_frame, req, resp, write_frame, FrameError, HEADER_LEN, MAGIC,
    VERSION,
};
use rperf_serve::{ServeConfig, Server};

/// Serializes a valid SUBMIT frame for mutation.
fn valid_frame(seed: u64, text: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, req::SUBMIT, &encode_submit(seed, text))
        .expect("Vec<u8> writes are infallible");
    buf
}

/// Feeds `bytes` to the decoder and asserts the outcome is typed: either
/// a parsed frame or a specific [`FrameError`] — never a panic (the
/// harness would catch one as a test failure).
fn decode_is_typed(bytes: &[u8], max_payload: u32) -> Result<(), TestCaseError> {
    match read_frame(&mut &bytes[..], max_payload) {
        Ok(frame) => prop_assert!(frame.payload.len() as u64 <= max_payload as u64),
        Err(FrameError::BadMagic(_))
        | Err(FrameError::BadVersion(_))
        | Err(FrameError::Oversized { .. })
        | Err(FrameError::Io(_)) => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random byte soup: decode never panics, always typed.
    #[test]
    fn random_bytes_decode_typed(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        decode_is_typed(&bytes, 4096)?;
    }

    /// Truncations of a valid frame at every length: the decoder reports
    /// an I/O error (unexpected EOF) for every strict prefix and parses
    /// the full frame exactly.
    #[test]
    fn truncated_valid_frames_decode_typed(seed in any::<u64>(), cut in 0usize..64) {
        let frame = valid_frame(seed, "mode = \"x\"");
        let cut = cut.min(frame.len());
        decode_is_typed(&frame[..cut], 4096)?;
        if cut < frame.len() {
            prop_assert!(matches!(
                read_frame(&mut &frame[..cut], 4096),
                Err(FrameError::Io(_))
            ));
        }
    }

    /// A single flipped bit anywhere in a valid frame stays typed: magic
    /// and version corruption yield their dedicated errors, header-length
    /// corruption yields Oversized or Io, payload corruption still frames.
    #[test]
    fn bit_flipped_frames_decode_typed(
        seed in any::<u64>(),
        pos in 0usize..64,
        bit in 0u8..8,
    ) {
        let mut frame = valid_frame(seed, "mode = \"x\"");
        let pos = pos % frame.len();
        frame[pos] ^= 1 << bit;
        decode_is_typed(&frame, 4096)?;
    }

    /// Declared lengths beyond the cap are rejected *before* any payload
    /// allocation, whatever the declared size says.
    #[test]
    fn oversized_declarations_are_rejected(extra in 1u32..u32::MAX - 4096) {
        let max = 4096u32;
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(req::SUBMIT);
        frame.extend_from_slice(&(max + extra).to_be_bytes());
        prop_assert!(matches!(
            read_frame(&mut &frame[..], max),
            Err(FrameError::Oversized { declared, max: m })
                if declared == max + extra && m == max
        ));
    }
}

/// Live-server fuzz: each mutated frame goes to a real listener, which
/// must either answer with a *well-formed typed error frame* or close the
/// connection — never hang (bounded by the socket timeout) and never
/// reply with bytes that fail to parse as a frame.
#[test]
fn live_server_answers_mutations_typed_or_closes() {
    let server = Server::start(ServeConfig {
        io_timeout_ms: 500,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();

    let base = valid_frame(3, "mode = \"x\"");
    let mut cases: Vec<Vec<u8>> = Vec::new();
    // Wrong magic, wrong version, unknown kind, oversized declaration.
    for (pos, val) in [(0usize, b'X'), (4, 99u8), (5, 0x7f)] {
        let mut f = base.clone();
        f[pos] = val;
        cases.push(f);
    }
    let mut oversized = base.clone();
    oversized[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&u32::MAX.to_be_bytes());
    cases.push(oversized);
    // Truncations at a few depths, and pure noise.
    for cut in [1usize, HEADER_LEN - 1, HEADER_LEN + 3] {
        cases.push(base[..cut].to_vec());
    }
    cases.push(b"not a frame at all".to_vec());

    for (i, bytes) in cases.iter().enumerate() {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        s.set_write_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        s.write_all(bytes).expect("send mutation");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut reply = Vec::new();
        if let Err(e) = s.read_to_end(&mut reply) {
            // A server that closes with unread bytes in its receive buffer
            // sends RST; the reset *is* the clean close. Anything else
            // (notably a timeout = hang) stays fatal.
            assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
                ),
                "case {i}: unexpected transport failure: {e}"
            );
            continue;
        }
        if !reply.is_empty() {
            let frame = read_frame(&mut &reply[..], 4096).unwrap_or_else(|e| {
                panic!("case {i}: server reply is not a well-formed frame: {e}")
            });
            assert_eq!(
                frame.kind,
                resp::ERROR,
                "case {i}: reply not typed as an error"
            );
            let (_code, msg) = decode_error(&frame.payload);
            assert!(!msg.is_empty(), "case {i}: error frame carries no message");
        }
    }

    let _ = server.shutdown();
}
