//! The `make serve-smoke` gate: ≥200 concurrent submissions of the two
//! example scenarios against one in-process server, with one injected
//! worker panic and one malformed frame riding along. Asserts:
//!
//! * every submission resolves typed (here: all succeed, retries absorb
//!   the injected panic),
//! * identical (spec, seed) submissions produce byte-identical outcome
//!   JSON, cold or cached,
//! * the cache hit rate is > 0 after a warm second pass,
//! * the panicked worker was respawned and the malformed frame answered
//!   with a typed `BAD_FRAME` error,
//! * shutdown drains cleanly and flushes a coherent final stats snapshot.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use rperf_serve::chaos::{inject_malformed_frame, FaultPlan};
use rperf_serve::protocol::{decode_error, read_frame, resp, ErrorCode, DEFAULT_MAX_PAYLOAD};
use rperf_serve::{Client, ClientConfig, ServeConfig, Server};
use rperf_stats::json::{parse, Value};

/// Reads an example scenario from the repo's `examples/scenarios/`.
fn spec_text(name: &str) -> String {
    let path = format!(
        "{}/../../examples/scenarios/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Pulls a counter out of a parsed stats snapshot.
fn stat(stats: &Value, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("stats snapshot missing counter `{key}`"))
}

fn client_for(addr: &str, retry_seed: u64) -> Client {
    Client::new(ClientConfig {
        addr: addr.to_string(),
        io_timeout_ms: 120_000,
        attempts: 8,
        backoff_base_ms: 25,
        backoff_cap_ms: 500,
        retry_seed,
    })
}

#[test]
fn two_hundred_concurrent_submissions_with_injected_faults() {
    const SUBMISSIONS: usize = 200;
    const SEEDS: u64 = 3; // 2 specs x 3 seeds = 6 distinct cache keys

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 8,
        deadline_ms: 90_000,
        io_timeout_ms: 120_000,
        // Kill the worker running the second admitted job, mid-request.
        faults: FaultPlan {
            panic_on_jobs: vec![1],
        },
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let specs: Arc<[String; 2]> =
        Arc::new([spec_text("incast_8.scn"), spec_text("chain_gaming.scn")]);

    // One malformed frame injected concurrently with the burst: the server
    // must answer it typed and keep serving everyone else.
    let malformed = {
        let addr = addr.clone();
        std::thread::spawn(move || inject_malformed_frame(&addr, Duration::from_secs(30)))
    };

    // The cold burst: 200 threads over 6 distinct (spec, seed) keys.
    let mut handles = Vec::with_capacity(SUBMISSIONS);
    for i in 0..SUBMISSIONS {
        let specs = Arc::clone(&specs);
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let spec_idx = i % 2;
            let seed = (i as u64) % SEEDS;
            let outcome = client_for(&addr, i as u64).submit(&specs[spec_idx], seed);
            (spec_idx, seed, outcome)
        }));
    }

    // Every submission must resolve to a typed outcome; with retries
    // covering the one injected panic, all of them succeed here.
    let mut by_key: BTreeMap<(usize, u64), BTreeSet<String>> = BTreeMap::new();
    for h in handles {
        let (spec_idx, seed, outcome) = h.join().expect("client thread panicked");
        let ok = outcome
            .unwrap_or_else(|e| panic!("submission (spec {spec_idx}, seed {seed}) failed: {e}"));
        by_key.entry((spec_idx, seed)).or_default().insert(ok.json);
    }
    assert_eq!(by_key.len(), 2 * SEEDS as usize, "all keys exercised");
    for (key, jsons) in &by_key {
        assert_eq!(
            jsons.len(),
            1,
            "key {key:?} produced {} distinct outcome bodies; identical \
             (spec, seed) must be byte-identical",
            jsons.len()
        );
    }

    // The malformed frame got a typed BAD_FRAME error before the close.
    let reply = malformed
        .join()
        .expect("injector thread panicked")
        .expect("malformed-frame injection failed");
    let frame = read_frame(&mut &reply[..], DEFAULT_MAX_PAYLOAD)
        .expect("reply to a malformed frame is itself a well-formed frame");
    assert_eq!(frame.kind, resp::ERROR);
    let (code, _msg) = decode_error(&frame.payload);
    assert_eq!(code, ErrorCode::BadFrame);

    // Warm second pass: every key must now come straight from the cache,
    // byte-identical to the cold burst.
    for (&(spec_idx, seed), jsons) in &by_key {
        let cold = jsons.iter().next().expect("non-empty by construction");
        let warm = client_for(&addr, 10_000 + seed)
            .submit(&specs[spec_idx], seed)
            .expect("warm submission failed");
        assert!(
            warm.cached,
            "(spec {spec_idx}, seed {seed}) not served from cache"
        );
        assert_eq!(&warm.json, cold, "cached body differs from cold body");
    }

    // Live stats: the panic was caught exactly once, the worker respawned,
    // the cache is earning its keep.
    let stats = parse(&client_for(&addr, 0).stats().expect("stats request failed"))
        .expect("stats snapshot parses");
    assert_eq!(stat(&stats, "worker_panics"), 1);
    assert_eq!(stat(&stats, "workers_respawned"), 1);
    assert_eq!(stat(&stats, "workers_live"), 4);
    assert!(stat(&stats, "bad_frames") >= 1);
    assert!(
        stat(&stats, "cache_hits") >= 2 * SEEDS,
        "hit rate must be > 0"
    );
    assert!(stat(&stats, "results_ok") >= 2 * SEEDS);
    assert!(stat(&stats, "submits") >= SUBMISSIONS as u64);
    assert_eq!(stat(&stats, "draining"), 0);

    // Clean drain: shutdown returns the final snapshot with all workers
    // stopped, and the listener is gone.
    let final_stats = parse(&server.shutdown()).expect("final stats snapshot parses");
    assert_eq!(stat(&final_stats, "draining"), 1);
    assert_eq!(stat(&final_stats, "workers_live"), 0);
    assert!(
        client_for(&addr, 0).ping().is_err(),
        "server still accepting connections after shutdown"
    );
}

#[test]
fn sharded_submission_shares_the_sequential_cache_line() {
    // `shards` selects an execution engine, not a scenario (DESIGN.md
    // §3.7): the server normalizes it out of the cache key, so a
    // `shards = 4` submission is a cache *hit* against the sequential
    // run of the same spec — and byte-identical to it.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        deadline_ms: 90_000,
        io_timeout_ms: 120_000,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let sequential = spec_text("incast_8.scn");
    let sharded = format!("shards = 4\n{sequential}");

    let cold = client_for(&addr, 1)
        .submit(&sequential, 7)
        .expect("sequential submission failed");
    let warm = client_for(&addr, 2)
        .submit(&sharded, 7)
        .expect("sharded submission failed");
    assert!(warm.cached, "sharded spec missed the sequential cache line");
    assert_eq!(warm.json, cold.json);
    server.shutdown();
}
