//! A minimal, fully deterministic property-testing harness exposing the
//! subset of the `proptest` crate's surface this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be vendored; this in-workspace stand-in keeps the existing
//! `proptest! { ... }` test files compiling and running unchanged. It
//! supports:
//!
//! * `proptest! { #[test] fn f(x in 0u64..100, v in prop::collection::vec(..)) { .. } }`
//! * `#![proptest_config(ProptestConfig::with_cases(n))]` as the first item
//! * range strategies over the integer types and `f64` (half-open and
//!   inclusive), tuples of strategies, `any::<T>()`,
//!   `prop::collection::vec`, `prop::sample::select`, and `.prop_map`
//! * `prop_assert!` / `prop_assert_eq!` (they panic like `assert!`)
//! * bodies that `return Ok(())` / `return Err(TestCaseError::fail(..))`
//!   (the body runs in a closure returning [`TestCaseResult`], as
//!   upstream's does; `TestCaseError::Reject` skips the case)
//!
//! Unlike the real crate there is **no shrinking**: a failing case prints
//! its inputs via the assertion message only. Generation is seeded from
//! the test's module path and name, so every run of a given test sees the
//! same cases (reproducibility is a workspace-wide requirement; see
//! DESIGN.md §6). Set `PROPTEST_CASES` to override the per-test case
//! count (default 64).

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Why a property case did not pass (upstream:
/// `proptest::test_runner::TestCaseError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed; the runner panics with this message.
    Fail(String),
    /// The input was rejected as uninteresting; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Upstream-compatible module path for the error types.
pub mod test_runner {
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Runner configuration: how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (overridden by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The generator's RNG: SplitMix64 (deterministic, dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary byte string (the test's full name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        // Modulo bias is negligible for test-case generation.
        self.next_u64() % n
    }
}

/// A value generator. The associated `Value` mirrors the real crate so
/// `impl Strategy<Value = T>` signatures keep compiling.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // next_f64 is in [0, 1); nudge the top so `hi` is reachable.
        lo + rng.next_f64() * (hi - lo) * (1.0 + f64::EPSILON)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The whole-domain strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len` and whose elements are
        /// drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.0.is_empty(), "select from an empty set");
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// `prop::sample::select(vec![..])`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select(options)
        }
    }
}

/// Asserts a condition inside a property (panics with the case's inputs
/// visible in the assertion message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::ProptestConfig::resolved_cases(&$cfg);
                let mut __rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cases {
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                    // The body runs in a closure returning `TestCaseResult`
                    // so `return Ok(())` / `return Err(..)` work as they do
                    // upstream; plain `()` bodies fall through to `Ok(())`.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome = (|| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(__reason)) => panic!(
                            "property `{}` failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __reason
                        ),
                    }
                }
            }
        )*
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::sample(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
            let g = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn vec_and_select_and_map() {
        let mut rng = TestRng::from_name("vecsel");
        let s = prop::collection::vec(0u8..4, 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&n));
            let pick = Strategy::sample(&prop::sample::select(vec!["a", "b"]), &mut rng);
            assert!(pick == "a" || pick == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuple patterns, multiple args, any::<T>().
        #[test]
        fn macro_roundtrip((a, b) in (0u32..10, 0u32..10), flip in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            let _ = flip;
            prop_assert_eq!(a + b, b + a);
        }

        /// Bodies may early-return `TestCaseResult`s, as upstream allows:
        /// `Ok` passes, `Reject` skips, and the fall-through is `Ok(())`.
        #[test]
        fn result_bodies_work(x in 0u32..10) {
            if x > 100 {
                return Err(TestCaseError::fail("unreachable"));
            }
            if x == 3 {
                return Err(TestCaseError::reject("skip threes"));
            }
            if x == 4 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }
}
