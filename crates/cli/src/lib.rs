//! Argument parsing and command execution for `rperf-cli`.
//!
//! The command-line front end drives the same scenarios the paper's
//! evaluation uses, with an interface deliberately reminiscent of the
//! OFED micro-benchmark tools:
//!
//! ```console
//! $ rperf-cli lat --payload 64
//! $ rperf-cli lat --tool perftest --payload 4096
//! $ rperf-cli bw  --payload 1024 --no-switch
//! $ rperf-cli converged --bsgs 5 --qos dedicated
//! $ rperf-cli multihop --policy rr
//! $ rperf-cli chain --switches 3 --bsgs 2
//! $ rperf-cli scenario my_experiment.scn --seed 3 --json
//! ```
//!
//! The `scenario` subcommand runs an arbitrary experiment from a
//! scenario-spec file (see `rperf::spec::ScenarioSpec::parse` for the
//! format) through the generic executor — topologies, traffic matrices
//! and QoS setups beyond the paper's figures need no recompilation.
//!
//! Argument parsing is hand-rolled (the suite takes no CLI dependency);
//! every flag error produces a usage message rather than a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use rperf::scenario::{
    chain_latency, converged, multihop, one_to_one_bandwidth, one_to_one_perftest,
    one_to_one_qperf, one_to_one_rperf, QosMode, RunSpec,
};
use rperf_model::config::SchedPolicy;
use rperf_model::ClusterConfig;
use rperf_sim::SimDuration;

/// Which measurement tool `lat` should model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// The paper's RPerf (Section IV).
    RPerf,
    /// OFED perftest-style software ping-pong.
    Perftest,
    /// OFED qperf-style post-poll WRITE.
    Qperf,
}

/// Which device profile to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The calibrated hardware testbed.
    Hardware,
    /// The paper's OMNeT simulator profile.
    Omnet,
}

/// A fully parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// One-to-one latency measurement.
    Lat {
        /// Probe payload bytes.
        payload: u64,
        /// Skip the switch (back-to-back cabling).
        no_switch: bool,
        /// The tool model to run.
        tool: Tool,
        /// Common options.
        common: Common,
    },
    /// One-to-one bandwidth measurement.
    Bw {
        /// Message payload bytes.
        payload: u64,
        /// Skip the switch.
        no_switch: bool,
        /// Common options.
        common: Common,
    },
    /// The converged many-to-one scenario.
    Converged {
        /// Number of bandwidth generators.
        bsgs: usize,
        /// BSG payload bytes.
        payload: u64,
        /// Doorbell batch size.
        batch: usize,
        /// QoS configuration.
        qos: QosMode,
        /// Common options.
        common: Common,
    },
    /// The paper's two-switch multi-hop scenario.
    Multihop {
        /// Scheduling policy on both switches.
        policy: SchedPolicy,
        /// Common options.
        common: Common,
    },
    /// The switch-chain extension.
    Chain {
        /// Number of switches in the path.
        switches: usize,
        /// BSGs local to the destination switch.
        bsgs: usize,
        /// Common options.
        common: Common,
    },
    /// An arbitrary experiment loaded from a scenario-spec file.
    Scenario {
        /// Path of the spec file.
        file: String,
        /// Experiment seed.
        seed: u64,
        /// Emit the outcome as deterministic JSON instead of text.
        json: bool,
        /// Worker domains for sharded execution; `None` keeps whatever
        /// the spec file says (default 1, the sequential engine).
        /// Results are identical either way — this is a wall-clock knob.
        shards: Option<usize>,
        /// Print the per-switch forwarding tables the subnet planner
        /// programmed for the spec's topology instead of running it.
        dump_routes: bool,
    },
    /// Submit a scenario-spec file to a running `rperf-serve` daemon.
    Submit {
        /// Path of the spec file.
        file: String,
        /// Experiment seed.
        seed: u64,
        /// Daemon address, `host:port`.
        addr: String,
        /// Total attempts (1 = no retries).
        attempts: u32,
        /// Socket/read timeout in milliseconds.
        timeout_ms: u64,
    },
    /// Fetch a running daemon's stats snapshot (or ask it to drain).
    ServeStats {
        /// Daemon address, `host:port`.
        addr: String,
        /// Send SHUTDOWN instead of STATS: begin a graceful drain.
        shutdown: bool,
    },
    /// A payload sweep (64 B – 4096 B) averaged over seeds, fanned across
    /// worker threads.
    Sweep {
        /// What to measure at each payload.
        what: SweepWhat,
        /// Skip the switch.
        no_switch: bool,
        /// Number of seeds to average (seeded `seed`, `seed+1`, ...).
        seeds: u64,
        /// Common options.
        common: Common,
    },
    /// Print usage.
    Help,
}

/// The metric a `sweep` measures at each payload point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWhat {
    /// RPerf RTT p50 (µs).
    Lat,
    /// One-to-one goodput (Gbps).
    Bw,
}

/// Options shared by every command.
#[derive(Debug, Clone, PartialEq)]
pub struct Common {
    /// Measurement window in milliseconds.
    pub duration_ms: f64,
    /// Experiment seed.
    pub seed: u64,
    /// Device profile.
    pub profile: Profile,
    /// Scheduling policy (where applicable).
    pub policy: SchedPolicy,
    /// Worker threads for sweeps (`--jobs`; 0 = available parallelism).
    /// Output is identical for any value — independent simulations are
    /// fanned out and collected in deterministic order.
    pub jobs: usize,
}

impl Default for Common {
    fn default() -> Self {
        Common {
            duration_ms: 5.0,
            seed: 1,
            profile: Profile::Hardware,
            policy: SchedPolicy::Fcfs,
            jobs: 0,
        }
    }
}

impl Common {
    /// The effective worker-thread count (`--jobs`, defaulting to the
    /// machine's available parallelism).
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            rperf_runner::available_parallelism()
        } else {
            self.jobs
        }
    }
}

/// A parse failure, carrying the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// A command failure, typed so `main` can map each class to a distinct
/// process exit code — scripts (and `make scenario-smoke`) can tell flag
/// misuse from a bad spec from transport trouble without scraping stderr:
///
/// | variant   | exit code | meaning                                       |
/// |-----------|-----------|-----------------------------------------------|
/// | `Usage`   | 1         | unknown command / malformed flags             |
/// | `Spec`    | 2         | scenario text failed to parse (line-numbered) |
/// | `Io`      | 3         | file unreadable or server unreachable         |
/// | `Runtime` | 4         | the run itself failed (validation, deadline,  |
/// |           |           | server-side error)                            |
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Unknown command or malformed flags (exit 1).
    Usage(String),
    /// The scenario text failed to parse; the message carries the file
    /// path and 1-based line number (exit 2).
    Spec(String),
    /// A file could not be read or a server could not be reached (exit 3).
    Io(String),
    /// The run failed after parsing: spec validation, a deadline, or a
    /// typed server-side failure (exit 4).
    Runtime(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Spec(_) => 2,
            CliError::Io(_) => 3,
            CliError::Runtime(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Spec(m) | CliError::Io(m) | CliError::Runtime(m) => {
                write!(f, "{m}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
rperf-cli — InfiniBand switch evaluation (simulated)

USAGE:
    rperf-cli <COMMAND> [OPTIONS]

COMMANDS:
    lat        one-to-one RTT          [--payload N] [--no-switch] [--tool rperf|perftest|qperf]
    bw         one-to-one goodput      [--payload N] [--no-switch]
    converged  many-to-one mix         [--bsgs N] [--payload N] [--batch N]
                                       [--qos shared|dedicated|gamed]
    multihop   two-switch topology     [--policy fcfs|rr|fair]
    chain      switch-chain extension  [--switches N] [--bsgs N]
    sweep      payload sweep 64B-4096B [--what lat|bw] [--no-switch] [--seeds N]
    scenario   run a spec file         <FILE> [--seed N] [--json] [--shards N]
                                       [--dump-routes]
    submit     send a spec file to a running rperf-serve daemon
                                       <FILE> [--seed N] [--addr HOST:PORT]
                                       [--attempts N] [--timeout-ms N]
    serve-stats  fetch daemon stats    [--addr HOST:PORT] [--shutdown]
    help       this text

EXIT CODES:
    0 success   1 usage   2 spec parse error   3 I/O   4 runtime failure

COMMON OPTIONS:
    --duration MS     measurement window in milliseconds (default 5)
    --seed N          experiment seed (default 1)
    --profile hw|omnet
    --policy fcfs|rr|fair
    --jobs N          worker threads for sweeps (default: all cores;
                      any value gives identical output)
    --shards N        (scenario only) worker domains inside one run;
                      any value gives identical output
    --dump-routes     (scenario only) print the per-switch forwarding
                      tables for the spec's topology instead of running
";

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, ParseError> {
    let v = value.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| ParseError(format!("{flag}: `{v}` is not a number")))
}

fn parse_f64(flag: &str, value: Option<&String>) -> Result<f64, ParseError> {
    let v = value.ok_or_else(|| ParseError(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| ParseError(format!("{flag}: `{v}` is not a number")))
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending flag.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    // `scenario` takes a positional file path plus its own small flag set.
    if cmd == "scenario" {
        let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
            return Err(ParseError("scenario needs a spec file path".into()));
        };
        let mut seed = 1u64;
        let mut json = false;
        let mut shards = None;
        let mut dump_routes = false;
        let mut i = 2;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    seed = parse_u64("--seed", args.get(i + 1))?;
                    i += 2;
                }
                "--json" => {
                    json = true;
                    i += 1;
                }
                "--dump-routes" => {
                    dump_routes = true;
                    i += 1;
                }
                "--shards" => {
                    let n = parse_u64("--shards", args.get(i + 1))?;
                    if n == 0 || n > 64 {
                        return Err(ParseError(format!("--shards must be in 1..=64, got {n}")));
                    }
                    shards = Some(n as usize);
                    i += 2;
                }
                other => return Err(ParseError(format!("unknown option `{other}` for scenario"))),
            }
        }
        return Ok(Command::Scenario {
            file: file.clone(),
            seed,
            json,
            shards,
            dump_routes,
        });
    }
    // `submit` mirrors `scenario` but sends the spec to a daemon.
    if cmd == "submit" {
        let Some(file) = args.get(1).filter(|a| !a.starts_with("--")) else {
            return Err(ParseError("submit needs a spec file path".into()));
        };
        let mut seed = 1u64;
        let mut addr = "127.0.0.1:7117".to_string();
        let mut attempts = 5u32;
        let mut timeout_ms = 40_000u64;
        let mut i = 2;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    seed = parse_u64("--seed", args.get(i + 1))?;
                    i += 2;
                }
                "--addr" => {
                    addr = args
                        .get(i + 1)
                        .ok_or_else(|| ParseError("--addr needs a value".into()))?
                        .clone();
                    i += 2;
                }
                "--attempts" => {
                    attempts = parse_u64("--attempts", args.get(i + 1))?.clamp(1, 100) as u32;
                    i += 2;
                }
                "--timeout-ms" => {
                    timeout_ms = parse_u64("--timeout-ms", args.get(i + 1))?;
                    i += 2;
                }
                other => return Err(ParseError(format!("unknown option `{other}` for submit"))),
            }
        }
        return Ok(Command::Submit {
            file: file.clone(),
            seed,
            addr,
            attempts,
            timeout_ms,
        });
    }
    if cmd == "serve-stats" {
        let mut addr = "127.0.0.1:7117".to_string();
        let mut shutdown = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--addr" => {
                    addr = args
                        .get(i + 1)
                        .ok_or_else(|| ParseError("--addr needs a value".into()))?
                        .clone();
                    i += 2;
                }
                "--shutdown" => {
                    shutdown = true;
                    i += 1;
                }
                other => {
                    return Err(ParseError(format!(
                        "unknown option `{other}` for serve-stats"
                    )))
                }
            }
        }
        return Ok(Command::ServeStats { addr, shutdown });
    }
    let mut payload: Option<u64> = None;
    let mut no_switch = false;
    let mut tool = Tool::RPerf;
    let mut bsgs = 5usize;
    let mut batch = 1usize;
    let mut qos = QosMode::SharedSl;
    let mut switches = 2usize;
    let mut what = SweepWhat::Lat;
    let mut seeds = 3u64;
    let mut common = Common::default();

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match flag {
            "--payload" => {
                payload = Some(parse_u64(flag, value)?);
                i += 2;
            }
            "--no-switch" => {
                no_switch = true;
                i += 1;
            }
            "--tool" => {
                tool = match value.map(String::as_str) {
                    Some("rperf") => Tool::RPerf,
                    Some("perftest") => Tool::Perftest,
                    Some("qperf") => Tool::Qperf,
                    other => {
                        return Err(ParseError(format!(
                            "--tool: expected rperf|perftest|qperf, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--bsgs" => {
                bsgs = parse_u64(flag, value)? as usize;
                i += 2;
            }
            "--batch" => {
                batch = parse_u64(flag, value)?.max(1) as usize;
                i += 2;
            }
            "--qos" => {
                qos = match value.map(String::as_str) {
                    Some("shared") => QosMode::SharedSl,
                    Some("dedicated") => QosMode::DedicatedSl,
                    Some("gamed") => QosMode::DedicatedSlWithPretend,
                    other => {
                        return Err(ParseError(format!(
                            "--qos: expected shared|dedicated|gamed, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--switches" => {
                switches = parse_u64(flag, value)?.max(1) as usize;
                i += 2;
            }
            "--what" => {
                what = match value.map(String::as_str) {
                    Some("lat") => SweepWhat::Lat,
                    Some("bw") => SweepWhat::Bw,
                    other => {
                        return Err(ParseError(format!(
                            "--what: expected lat|bw, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--seeds" => {
                seeds = parse_u64(flag, value)?.max(1);
                i += 2;
            }
            "--jobs" => {
                common.jobs = parse_u64(flag, value)? as usize;
                i += 2;
            }
            "--duration" => {
                common.duration_ms = parse_f64(flag, value)?;
                i += 2;
            }
            "--seed" => {
                common.seed = parse_u64(flag, value)?;
                i += 2;
            }
            "--profile" => {
                common.profile = match value.map(String::as_str) {
                    Some("hw") | Some("hardware") => Profile::Hardware,
                    Some("omnet") | Some("sim") => Profile::Omnet,
                    other => {
                        return Err(ParseError(format!(
                            "--profile: expected hw|omnet, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            "--policy" => {
                common.policy = match value.map(String::as_str) {
                    Some("fcfs") => SchedPolicy::Fcfs,
                    Some("rr") => SchedPolicy::RoundRobin,
                    Some("fair") => SchedPolicy::FairShare,
                    other => {
                        return Err(ParseError(format!(
                            "--policy: expected fcfs|rr|fair, got {other:?}"
                        )))
                    }
                };
                i += 2;
            }
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }

    Ok(match cmd.as_str() {
        // Probe-style commands default to the paper's 64 B probes; bulk
        // commands default to its 4096 B messages.
        "lat" => Command::Lat {
            payload: payload.unwrap_or(64),
            no_switch,
            tool,
            common,
        },
        "bw" => Command::Bw {
            payload: payload.unwrap_or(4096),
            no_switch,
            common,
        },
        "converged" => Command::Converged {
            bsgs,
            payload: payload.unwrap_or(4096),
            batch,
            qos,
            common,
        },
        "multihop" => Command::Multihop {
            policy: common.policy,
            common,
        },
        "chain" => Command::Chain {
            switches,
            bsgs: if bsgs == 5 { 0 } else { bsgs },
            common,
        },
        "sweep" => Command::Sweep {
            what,
            no_switch,
            seeds,
            common,
        },
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ParseError(format!("unknown command `{other}`"))),
    })
}

fn spec_of(common: &Common) -> RunSpec {
    let cfg = match common.profile {
        Profile::Hardware => ClusterConfig::hardware(),
        Profile::Omnet => ClusterConfig::omnet_simulator(),
    }
    .with_policy(common.policy);
    RunSpec::new(cfg)
        .with_seed(common.seed)
        .with_duration(SimDuration::from_secs_f64(common.duration_ms * 1e-3))
}

/// Loads, validates and executes a scenario-spec file.
///
/// Each failure class maps to its own [`CliError`] variant (distinct exit
/// code): an unreadable file is `Io`, a syntax error is `Spec` — with the
/// parser's 1-based line number preserved as `file:line N: message` — and
/// a spec that parses but fails validation is `Runtime`.
fn run_scenario(
    file: &str,
    seed: u64,
    json: bool,
    shards: Option<usize>,
    dump_routes: bool,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(file).map_err(|e| CliError::Io(format!("{file}: {e}")))?;
    // `ParseError` renders as `line N: msg`; prefixing the path yields the
    // compiler-style `file:line N: msg` the smoke test greps for.
    let mut spec =
        rperf::ScenarioSpec::parse(&text).map_err(|e| CliError::Spec(format!("{file}:{e}")))?;
    if dump_routes {
        // Routing is a property of the topology alone, so the role-table
        // validation is skipped: a spec with nothing but a `[topology]`
        // section dumps fine. Parse failures above keep exit code 2.
        return Ok(rperf::dump_routes(&spec, seed));
    }
    if let Some(shards) = shards {
        spec.shards = shards;
    }
    spec.validate()
        .map_err(|e| CliError::Runtime(format!("{file}: {e}")))?;
    let out = rperf::execute(&spec, seed);
    Ok(if json {
        out.to_json()
    } else {
        render_outcome(&out)
    })
}

/// Reads a spec file and submits it to a running `rperf-serve` daemon,
/// retrying transient failures; prints the outcome JSON on success.
fn run_submit(
    file: &str,
    seed: u64,
    addr: &str,
    attempts: u32,
    timeout_ms: u64,
) -> Result<String, CliError> {
    use rperf_serve::protocol::ErrorCode;
    use rperf_serve::{Client, ClientConfig, ClientError};

    let text = std::fs::read_to_string(file).map_err(|e| CliError::Io(format!("{file}: {e}")))?;
    let client = Client::new(ClientConfig {
        addr: addr.to_string(),
        io_timeout_ms: timeout_ms,
        attempts,
        retry_seed: seed,
        ..ClientConfig::default()
    });
    match client.submit(&text, seed) {
        Ok(outcome) => Ok(outcome.json),
        Err(ClientError::Server { code, message }) => match code {
            // The server parses the same grammar `scenario` does, so the
            // message already carries the 1-based line number.
            ErrorCode::ParseError => Err(CliError::Spec(format!("{file}:{message}"))),
            ErrorCode::InvalidSpec => Err(CliError::Runtime(format!("{file}: {message}"))),
            other => Err(CliError::Runtime(format!("{other}: {message}"))),
        },
        Err(ClientError::Io(e)) => Err(CliError::Io(format!("{addr}: {e}"))),
        Err(ClientError::Protocol(e)) => Err(CliError::Io(format!("{addr}: protocol: {e}"))),
        Err(e @ ClientError::Exhausted { .. }) => {
            // Whether the attempts died on transport or on shedding, the
            // service was effectively unreachable.
            Err(CliError::Io(format!("{addr}: {e}")))
        }
    }
}

/// Fetches a daemon's stats snapshot, or (with `shutdown`) begins its
/// graceful drain.
fn run_serve_stats(addr: &str, shutdown: bool) -> Result<String, CliError> {
    use rperf_serve::{Client, ClientConfig};
    let client = Client::new(ClientConfig {
        addr: addr.to_string(),
        attempts: 1,
        ..ClientConfig::default()
    });
    if shutdown {
        client
            .shutdown()
            .map_err(|e| CliError::Io(format!("{addr}: {e}")))?;
        Ok(format!("rperf-serve at {addr}: drain acknowledged"))
    } else {
        client
            .stats()
            .map_err(|e| CliError::Io(format!("{addr}: {e}")))
    }
}

/// Human-readable rendering of a scenario outcome, one line per role.
fn render_outcome(out: &rperf::ScenarioOutcome) -> String {
    use rperf::RoleReport;
    let mut text = format!(
        "scenario {}  seed={}  end={:.3} ms",
        out.name,
        out.seed,
        out.end.as_ps() as f64 / 1e9,
    );
    for (node, r) in &out.reports {
        let line = match r {
            RoleReport::RPerf(rep) => format!(
                "rperf        RTT p50 {:.3} us | p99.9 {:.3} us over {} probes",
                rep.summary.p50_us(),
                rep.summary.p999_us(),
                rep.iterations,
            ),
            RoleReport::Latency(s) => format!(
                "latency      RTT p50 {:.3} us | p99.9 {:.3} us",
                s.p50_us(),
                s.p999_us(),
            ),
            RoleReport::Qperf(rep) => format!(
                "qperf        avg {:.3} us over {} iterations",
                rep.avg_us, rep.iterations,
            ),
            RoleReport::BsgGbps(g) => format!("bsg          goodput {g:.2} Gbps"),
            RoleReport::PretendGbps(g) => format!("pretend-lsg  goodput {g:.2} Gbps"),
            RoleReport::Sink { recvs } => format!("sink         {recvs} messages delivered"),
            RoleReport::Server => "server".to_string(),
        };
        text.push_str(&format!("\nnode {node:<3} {line}"));
    }
    text
}

/// Executes a parsed command; `Err` carries the message for stderr plus
/// the failure class that picks the process exit code.
///
/// # Errors
///
/// Only the file- and network-backed commands can fail: `scenario`
/// (unreadable file → `Io`, syntax error with line number → `Spec`,
/// failed validation → `Runtime`), `submit` and `serve-stats` (the same
/// classes, with transport failures as `Io`).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Scenario {
            file,
            seed,
            json,
            shards,
            dump_routes,
        } => run_scenario(file, *seed, *json, *shards, *dump_routes),
        Command::Submit {
            file,
            seed,
            addr,
            attempts,
            timeout_ms,
        } => run_submit(file, *seed, addr, *attempts, *timeout_ms),
        Command::ServeStats { addr, shutdown } => run_serve_stats(addr, *shutdown),
        other => Ok(execute(other)),
    }
}

/// Executes a parsed command and returns the text to print (scenario
/// failures are folded into the returned text; [`run`] keeps them as
/// `Err` for exit codes).
pub fn execute(cmd: &Command) -> String {
    match cmd {
        Command::Help => USAGE.to_string(),
        Command::Scenario {
            file,
            seed,
            json,
            shards,
            dump_routes,
        } => run_scenario(file, *seed, *json, *shards, *dump_routes)
            .unwrap_or_else(|e| format!("error: {e}")),
        Command::Submit {
            file,
            seed,
            addr,
            attempts,
            timeout_ms,
        } => run_submit(file, *seed, addr, *attempts, *timeout_ms)
            .unwrap_or_else(|e| format!("error: {e}")),
        Command::ServeStats { addr, shutdown } => {
            run_serve_stats(addr, *shutdown).unwrap_or_else(|e| format!("error: {e}"))
        }
        Command::Lat {
            payload,
            no_switch,
            tool,
            common,
        } => {
            let spec = spec_of(common);
            match tool {
                Tool::RPerf => {
                    let r = one_to_one_rperf(&spec, !no_switch, *payload);
                    format!(
                        "rperf  payload={payload}B  switch={}\n\
                         iterations: {}\n\
                         RTT p50 {:.3} us | p99 {:.3} us | p99.9 {:.3} us | max {:.3} us",
                        !no_switch,
                        r.iterations,
                        r.summary.p50_us(),
                        r.summary.p99_ps as f64 / 1e6,
                        r.summary.p999_us(),
                        r.summary.max_ps as f64 / 1e6,
                    )
                }
                Tool::Perftest => {
                    if *no_switch {
                        return "--no-switch is not supported for the perftest model".into();
                    }
                    let s = one_to_one_perftest(&spec, *payload);
                    format!(
                        "perftest  payload={payload}B\n\
                         RTT p50 {:.3} us | p99.9 {:.3} us  (includes end-point overheads)",
                        s.p50_us(),
                        s.p999_us(),
                    )
                }
                Tool::Qperf => {
                    if *no_switch {
                        return "--no-switch is not supported for the qperf model".into();
                    }
                    let r = one_to_one_qperf(&spec, *payload);
                    format!(
                        "qperf  payload={payload}B\n\
                         latency {:.2} us  (average only; the real tool reports no tail)",
                        r.avg_us,
                    )
                }
            }
        }
        Command::Bw {
            payload,
            no_switch,
            common,
        } => {
            let spec = spec_of(common);
            let gbps = one_to_one_bandwidth(&spec, !no_switch, *payload);
            format!(
                "bw  payload={payload}B  switch={}\ngoodput {gbps:.2} Gbps",
                !no_switch
            )
        }
        Command::Converged {
            bsgs,
            payload,
            batch,
            qos,
            common,
        } => {
            let spec = spec_of(common);
            let honest = if *qos == QosMode::DedicatedSlWithPretend {
                bsgs.saturating_sub(1)
            } else {
                *bsgs
            };
            let out = converged(&spec, honest, *payload, *batch, true, *qos);
            let lsg = out.lsg.expect("LSG attached");
            let mut text = format!(
                "converged  bsgs={bsgs}  payload={payload}B  qos={qos:?}\n\
                 LSG RTT p50 {:.2} us | p99.9 {:.2} us\n\
                 total bulk goodput {:.1} Gbps",
                lsg.summary.p50_us(),
                lsg.summary.p999_us(),
                out.total_gbps,
            );
            if let Some(p) = out.pretend_gbps {
                text.push_str(&format!("\npretend LSG goodput {p:.1} Gbps"));
            }
            text
        }
        Command::Multihop { policy, common } => {
            let spec = spec_of(common);
            let out = multihop(&spec, *policy);
            let lsg = out.lsg.expect("LSG attached");
            format!(
                "multihop  policy={policy:?}\n\
                 LSG RTT p50 {:.2} us | p99.9 {:.2} us\n\
                 total bulk goodput {:.1} Gbps",
                lsg.summary.p50_us(),
                lsg.summary.p999_us(),
                out.total_gbps,
            )
        }
        Command::Chain {
            switches,
            bsgs,
            common,
        } => {
            let spec = spec_of(common);
            let r = chain_latency(&spec, *switches, *bsgs);
            format!(
                "chain  switches={switches}  tail bsgs={bsgs}\n\
                 LSG RTT p50 {:.2} us | p99.9 {:.2} us over {} probes",
                r.summary.p50_us(),
                r.summary.p999_us(),
                r.iterations,
            )
        }
        Command::Sweep {
            what,
            no_switch,
            seeds,
            common,
        } => {
            const PAYLOADS: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];
            let pairs: Vec<(u64, u64)> = PAYLOADS
                .iter()
                .flat_map(|&p| (0..*seeds).map(move |k| (p, common.seed + k)))
                .collect();
            let runner = rperf_runner::Sweep::new(common.effective_jobs());
            let per_pair = runner.run(pairs, |_, (payload, seed)| {
                let spec = spec_of(&Common {
                    seed,
                    ..common.clone()
                });
                match what {
                    SweepWhat::Lat => one_to_one_rperf(&spec, !no_switch, payload)
                        .summary
                        .p50_us(),
                    SweepWhat::Bw => one_to_one_bandwidth(&spec, !no_switch, payload),
                }
            });
            let (label, unit) = match what {
                SweepWhat::Lat => ("RTT p50", "us"),
                SweepWhat::Bw => ("goodput", "Gbps"),
            };
            let mut text = format!(
                "sweep  what={what:?}  switch={}  seeds={seeds}  jobs={}\n\
                 | payload (B) | {label} ({unit}) |\n|---|---|",
                !no_switch,
                runner.workers(),
            );
            let k = *seeds as usize;
            for (i, &payload) in PAYLOADS.iter().enumerate() {
                let chunk = &per_pair[i * k..(i + 1) * k];
                let avg = chunk.iter().sum::<f64>() / k as f64;
                text.push_str(&format!("\n| {payload} | {avg:.3} |"));
            }
            text
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_lat_defaults() {
        let cmd = parse(&args("lat")).unwrap();
        assert_eq!(
            cmd,
            Command::Lat {
                payload: 64,
                no_switch: false,
                tool: Tool::RPerf,
                common: Common::default(),
            }
        );
    }

    #[test]
    fn converged_payload_flag_is_respected_even_at_64() {
        // Regression: an explicit `--payload 64` used to be silently
        // replaced by the bulk default.
        let cmd = parse(&args("converged --payload 64")).unwrap();
        match cmd {
            Command::Converged { payload, .. } => assert_eq!(payload, 64),
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse(&args("converged")).unwrap();
        match cmd {
            Command::Converged { payload, .. } => assert_eq!(payload, 4096),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_all_flags() {
        let cmd = parse(&args(
            "converged --bsgs 4 --payload 2048 --batch 8 --qos gamed \
             --duration 2 --seed 9 --profile omnet --policy rr",
        ))
        .unwrap();
        match cmd {
            Command::Converged {
                bsgs,
                payload,
                batch,
                qos,
                common,
            } => {
                assert_eq!(bsgs, 4);
                assert_eq!(payload, 2048);
                assert_eq!(batch, 8);
                assert_eq!(qos, QosMode::DedicatedSlWithPretend);
                assert_eq!(common.duration_ms, 2.0);
                assert_eq!(common.seed, 9);
                assert_eq!(common.profile, Profile::Omnet);
                assert_eq!(common.policy, SchedPolicy::RoundRobin);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("lat --what 3")).is_err());
        assert!(parse(&args("lat --payload")).is_err());
        assert!(parse(&args("lat --payload abc")).is_err());
        assert!(parse(&args("lat --tool iperf")).is_err());
        assert!(parse(&args("lat --qos none")).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert!(execute(&Command::Help).contains("USAGE"));
    }

    #[test]
    fn executes_a_quick_latency_run() {
        let cmd = parse(&args("lat --payload 64 --duration 1")).unwrap();
        let out = execute(&cmd);
        assert!(out.contains("RTT p50"), "{out}");
    }

    #[test]
    fn executes_a_quick_bandwidth_run() {
        let cmd = parse(&args("bw --payload 4096 --duration 1 --no-switch")).unwrap();
        let out = execute(&cmd);
        assert!(out.contains("goodput"), "{out}");
    }

    #[test]
    fn parses_sweep_flags() {
        let cmd = parse(&args("sweep --what bw --no-switch --seeds 2 --jobs 4")).unwrap();
        match cmd {
            Command::Sweep {
                what,
                no_switch,
                seeds,
                common,
            } => {
                assert_eq!(what, SweepWhat::Bw);
                assert!(no_switch);
                assert_eq!(seeds, 2);
                assert_eq!(common.jobs, 4);
                assert_eq!(common.effective_jobs(), 4);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: lat, 3 seeds, jobs = available parallelism.
        let cmd = parse(&args("sweep")).unwrap();
        match cmd {
            Command::Sweep {
                what,
                seeds,
                common,
                ..
            } => {
                assert_eq!(what, SweepWhat::Lat);
                assert_eq!(seeds, 3);
                assert!(common.effective_jobs() >= 1);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&args("sweep --what iops")).is_err());
    }

    #[test]
    fn sweep_output_is_identical_for_any_job_count() {
        let serial =
            execute(&parse(&args("sweep --what bw --seeds 1 --duration 1 --jobs 1")).unwrap());
        let parallel =
            execute(&parse(&args("sweep --what bw --seeds 1 --duration 1 --jobs 4")).unwrap());
        // The job count is echoed in the header; everything below it must
        // match byte for byte.
        let body = |s: &str| s.split_once('\n').unwrap().1.to_string();
        assert_eq!(body(&serial), body(&parallel));
        assert!(serial.contains("| 4096 |"), "{serial}");
    }

    #[test]
    fn perftest_refuses_no_switch() {
        let cmd = parse(&args("lat --tool perftest --no-switch --duration 1")).unwrap();
        assert!(execute(&cmd).contains("not supported"));
    }

    #[test]
    fn parses_scenario_command() {
        let cmd = parse(&args("scenario exp.scn --seed 7 --json")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                file: "exp.scn".into(),
                seed: 7,
                json: true,
                shards: None,
                dump_routes: false,
            }
        );
        let cmd = parse(&args("scenario exp.scn --dump-routes")).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                file: "exp.scn".into(),
                seed: 1,
                json: false,
                shards: None,
                dump_routes: true,
            }
        );
        assert!(parse(&args("scenario")).is_err(), "missing file path");
        assert!(parse(&args("scenario --json")).is_err(), "flag before path");
        assert!(parse(&args("scenario exp.scn --bogus")).is_err());
    }

    /// A scratch file inside the workspace target directory.
    fn scratch_file(name: &str, contents: &str) -> String {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).expect("create target/tmp");
        let path = dir.join(name);
        std::fs::write(&path, contents).expect("write scratch spec");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn runs_a_scenario_file_end_to_end() {
        let file = scratch_file(
            "cli_probe.scn",
            "name = \"probe\"\nwarmup_us = 50\nduration_us = 400\n\n\
             [topology]\nkind = \"single_switch\"\nhosts = 2\n\n\
             [[role]]\nnode = 0\nkind = \"rperf\"\ntarget = 1\n\n\
             [[role]]\nnode = 1\nkind = \"sink\"\n",
        );
        let text = run(&Command::Scenario {
            file: file.clone(),
            seed: 1,
            json: false,
            shards: None,
            dump_routes: false,
        })
        .unwrap();
        assert!(text.contains("rperf"), "{text}");
        assert!(text.contains("messages delivered"), "{text}");
        let json = run(&Command::Scenario {
            file: file.clone(),
            seed: 1,
            json: true,
            shards: None,
            dump_routes: false,
        })
        .unwrap();
        assert!(json.starts_with("{\"scenario\":\"probe\""), "{json}");
        // Sharded execution is byte-identical to the sequential engine.
        let sharded = run(&Command::Scenario {
            file,
            seed: 1,
            json: true,
            shards: Some(3),
            dump_routes: false,
        })
        .unwrap();
        assert_eq!(json, sharded, "--shards must not change results");
    }

    #[test]
    fn dump_routes_prints_tables_without_running() {
        // A topology-only spec is enough: no roles, no duration.
        let file = scratch_file(
            "cli_routes.scn",
            "name = \"clos\"\n\n[topology]\nkind = \"fattree\"\nk = 4\ntiers = 3\n",
        );
        let dump = |file: String| {
            run(&Command::Scenario {
                file,
                seed: 1,
                json: false,
                shards: None,
                dump_routes: true,
            })
        };
        let text = dump(file.clone()).expect("route dump");
        assert!(text.contains("hosts=16  switches=20"), "{text}");
        assert!(text.contains("switch 19  entries=16"), "{text}");
        assert!(text.contains("lid1 -> port0"), "{text}");
        // Deterministic output.
        assert_eq!(text, dump(file).unwrap());

        // A syntax error keeps the exit-2 Spec contract.
        let bad = scratch_file(
            "cli_routes_bad.scn",
            "[topology]\nkind = \"fattree\"\nk = 5\n",
        );
        let err = dump(bad).unwrap_err();
        assert!(matches!(err, CliError::Spec(_)), "{err:?}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn scenario_failures_are_typed_with_context() {
        // Unreadable file: Io, exit 3.
        let missing = run(&Command::Scenario {
            file: "no/such/file.scn".into(),
            seed: 1,
            json: false,
            shards: None,
            dump_routes: false,
        })
        .unwrap_err();
        assert!(matches!(missing, CliError::Io(_)), "{missing:?}");
        assert_eq!(missing.exit_code(), 3);
        assert!(
            missing.to_string().contains("no/such/file.scn"),
            "{missing}"
        );

        // Syntax error: Spec, exit 2, line-numbered diagnostic.
        let bad = scratch_file("cli_bad.scn", "name = \"x\"\nbogus_key = 1\n");
        let syntax = run(&Command::Scenario {
            file: bad.clone(),
            seed: 1,
            json: false,
            shards: None,
            dump_routes: false,
        })
        .unwrap_err();
        assert!(matches!(syntax, CliError::Spec(_)), "{syntax:?}");
        assert_eq!(syntax.exit_code(), 2);
        assert!(syntax.to_string().contains("line 2"), "{syntax}");

        // Parses but fails validation: Runtime, exit 4.
        let invalid = scratch_file(
            "cli_invalid.scn",
            "[topology]\nkind = \"direct_pair\"\n\n[[role]]\nnode = 5\nkind = \"sink\"\n",
        );
        let semantic = run(&Command::Scenario {
            file: invalid,
            seed: 1,
            json: false,
            shards: None,
            dump_routes: false,
        })
        .unwrap_err();
        assert!(matches!(semantic, CliError::Runtime(_)), "{semantic:?}");
        assert_eq!(semantic.exit_code(), 4);
        assert!(semantic.to_string().contains("2 hosts"), "{semantic}");
    }

    #[test]
    fn parses_submit_and_serve_stats() {
        let cmd = parse(&args(
            "submit exp.scn --seed 7 --addr 127.0.0.1:9000 --attempts 3 --timeout-ms 500",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Submit {
                file: "exp.scn".into(),
                seed: 7,
                addr: "127.0.0.1:9000".into(),
                attempts: 3,
                timeout_ms: 500,
            }
        );
        assert!(parse(&args("submit")).is_err(), "missing file path");
        assert!(parse(&args("submit exp.scn --bogus")).is_err());

        let cmd = parse(&args("serve-stats --addr 127.0.0.1:9000 --shutdown")).unwrap();
        assert_eq!(
            cmd,
            Command::ServeStats {
                addr: "127.0.0.1:9000".into(),
                shutdown: true,
            }
        );
        assert!(parse(&args("serve-stats --bogus")).is_err());
    }

    #[test]
    fn submit_failures_are_typed() {
        // Unreadable spec never touches the network: Io, exit 3.
        let missing = run(&Command::Submit {
            file: "no/such/file.scn".into(),
            seed: 1,
            addr: "127.0.0.1:1".into(),
            attempts: 1,
            timeout_ms: 100,
        })
        .unwrap_err();
        assert!(matches!(missing, CliError::Io(_)), "{missing:?}");

        // Unreachable server (port 1, one attempt): Io, exit 3.
        let file = scratch_file("cli_submit_probe.scn", "name = \"x\"\n");
        let down = run(&Command::Submit {
            file,
            seed: 1,
            addr: "127.0.0.1:1".into(),
            attempts: 1,
            timeout_ms: 200,
        })
        .unwrap_err();
        assert!(matches!(down, CliError::Io(_)), "{down:?}");
        assert_eq!(down.exit_code(), 3);
    }

    #[test]
    fn submit_round_trips_against_a_live_server() {
        let server = rperf_serve::Server::start(rperf_serve::ServeConfig::default())
            .expect("bind ephemeral port");
        let addr = server.addr().to_string();

        let file = scratch_file(
            "cli_submit_live.scn",
            "name = \"probe\"\nwarmup_us = 50\nduration_us = 400\n\n\
             [topology]\nkind = \"single_switch\"\nhosts = 2\n\n\
             [[role]]\nnode = 0\nkind = \"rperf\"\ntarget = 1\n\n\
             [[role]]\nnode = 1\nkind = \"sink\"\n",
        );
        let submit = |file: String| {
            run(&Command::Submit {
                file,
                seed: 1,
                addr: addr.clone(),
                attempts: 3,
                timeout_ms: 30_000,
            })
        };
        let json = submit(file.clone()).expect("live submit");
        assert!(json.starts_with("{\"scenario\":\"probe\""), "{json}");
        // The local executor and the daemon agree byte-for-byte.
        let local = run(&Command::Scenario {
            file: file.clone(),
            seed: 1,
            json: true,
            shards: None,
            dump_routes: false,
        })
        .expect("local run");
        assert_eq!(json, local);

        // A parse failure crosses the wire typed, with its line number.
        let bad = scratch_file("cli_submit_bad.scn", "name = \"x\"\nbogus_key = 1\n");
        let syntax = submit(bad).unwrap_err();
        assert!(matches!(syntax, CliError::Spec(_)), "{syntax:?}");
        assert_eq!(syntax.exit_code(), 2);
        assert!(syntax.to_string().contains("line 2"), "{syntax}");

        // Stats round-trip, then drain.
        let stats = run(&Command::ServeStats {
            addr: addr.clone(),
            shutdown: false,
        })
        .expect("stats");
        assert!(stats.contains("\"results_ok\":1"), "{stats}");
        let ack = run(&Command::ServeStats {
            addr: addr.clone(),
            shutdown: true,
        })
        .expect("shutdown handshake");
        assert!(ack.contains("drain acknowledged"), "{ack}");
        let _ = server.run_until_shutdown();
    }
}
