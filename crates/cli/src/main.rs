//! `rperf-cli`: the command-line front end.
//!
//! Exit codes are part of the interface (scripts and `make
//! scenario-smoke` assert on them): 0 success, 1 usage, 2 spec parse
//! error, 3 I/O, 4 runtime failure. Diagnostics go to stderr; stdout
//! carries only command output.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rperf_cli::parse(&args) {
        Ok(cmd) => match rperf_cli::run(&cmd) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", rperf_cli::USAGE);
            ExitCode::from(1)
        }
    }
}
