//! `rperf-cli`: the command-line front end.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rperf_cli::parse(&args) {
        Ok(cmd) => match rperf_cli::run(&cmd) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", rperf_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
