//! The interprocedural rules I1–I4, run over the workspace call graph.
//!
//! Where D1–D10 pattern-match token sequences one file at a time, these
//! rules reason about *reachability*: a `thread_rng()` three helper
//! calls below a figure generator is exactly as nondeterministic as one
//! written inline, and the token rules cannot see it. Each rule names
//! its entry points in `lint.toml` (`entries = [...]`), the graph
//! ([`crate::graph`]) computes the reachable set, and violations are
//! reported *at the offending site* with the full call chain from the
//! entry in the message — so the diagnostic tells you both what is
//! wrong and why the analyzer believes the hot/result path can get
//! there.
//!
//! | id | invariant |
//! |----|-----------|
//! | I1 | no ambient-input source (RNG, wall clock, env, infinite socket wait) reachable from a result-producing entry |
//! | I2 | no `panic!`/`unwrap`/`expect`/`todo!` reachable from a hot-loop entry |
//! | I3 | no `static` reachable from shard-executed code (telemetry atomics via `[[allow]]`) |
//! | I4 | a `pub fn` calling an ordering-contract-documented API fn must carry a contract doc itself |
//!
//! Conservatism and its consequences are catalogued in DESIGN.md §5.1;
//! the short version: method-name call edges over-approximate (I2/I3
//! may flag a panic in a same-named method the entry never calls — use
//! a justified `[[allow]]`), and I4 follows only exactly-resolved
//! edges, because name-level edges would demand ordering docs from
//! every `Vec::push` caller.

use std::collections::BTreeSet;

use crate::config::{Config, RuleCfg};
use crate::graph::{EdgeKind, Graph};
use crate::rules::{default_hint, Diagnostic, SourceFile};

/// Words whose presence (case-insensitive) in a doc comment marks it as
/// stating an ordering contract — shared with D7's intent.
const CONTRACT_MARKS: [&str; 4] = ["order", "fifo", "(time, seq)", "deterministic"];

fn has_contract_doc(doc: &str) -> bool {
    let lower = doc.to_lowercase();
    CONTRACT_MARKS.iter().any(|m| lower.contains(m))
}

fn mk_diag(
    files: &[SourceFile],
    file: usize,
    line: u32,
    col: u32,
    rule: &'static str,
    msg: String,
    cfg: &RuleCfg,
) -> Diagnostic {
    let f = &files[file];
    Diagnostic {
        path: f.path.clone(),
        line,
        col,
        rule,
        msg,
        line_text: f
            .lines
            .get(line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default(),
        hint: cfg
            .hint
            .clone()
            .unwrap_or_else(|| default_hint(rule).to_string()),
    }
}

/// Runs every enabled interprocedural rule over the workspace graph.
/// `files` must span the whole analysis scope (the workspace, or a
/// fixture's files); diagnostics come back unsorted and unfiltered.
pub fn run_inter(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let needs_graph = ["I1", "I2", "I3", "I4"]
        .iter()
        .any(|id| cfg.rule(id).is_some());
    if !needs_graph {
        return Vec::new();
    }
    let g = Graph::build(files, &cfg.off_features);
    let mut out = Vec::new();
    if let Some(rule) = cfg.rule("I1") {
        i1_taint_reachability(files, &g, rule, &mut out);
    }
    if let Some(rule) = cfg.rule("I2") {
        i2_panic_reachability(files, &g, rule, &mut out);
    }
    if let Some(rule) = cfg.rule("I3") {
        i3_shard_purity(files, &g, rule, &mut out);
    }
    if let Some(rule) = cfg.rule("I4") {
        i4_contract_propagation(files, &g, rule, &mut out);
    }
    out
}

/// True when the node's defining crate is in the rule's scope.
fn node_in_scope(g: &Graph, cfg: &RuleCfg, node: usize) -> bool {
    cfg.crates.iter().any(|c| c == &g.nodes[node].crate_key)
}

fn i1_taint_reachability(
    files: &[SourceFile],
    g: &Graph,
    cfg: &RuleCfg,
    out: &mut Vec<Diagnostic>,
) {
    let entries = g.match_entries(&cfg.entries);
    let parent = g.reach(&entries);
    let mut seen = BTreeSet::new();
    for (id, n) in g.nodes.iter().enumerate() {
        if parent[id].is_none() || !node_in_scope(g, cfg, id) {
            continue;
        }
        for (kind, site) in &n.taints {
            if !seen.insert((n.file, site.line, site.col)) {
                continue;
            }
            out.push(mk_diag(
                files,
                n.file,
                site.line,
                site.col,
                "I1",
                format!(
                    "{} `{}` reachable from a result-producing entry: {}",
                    kind.label(),
                    site.what,
                    g.chain(&parent, id)
                ),
                cfg,
            ));
        }
    }
}

fn i2_panic_reachability(
    files: &[SourceFile],
    g: &Graph,
    cfg: &RuleCfg,
    out: &mut Vec<Diagnostic>,
) {
    let entries = g.match_entries(&cfg.entries);
    let parent = g.reach(&entries);
    let mut seen = BTreeSet::new();
    for (id, n) in g.nodes.iter().enumerate() {
        if parent[id].is_none() || !node_in_scope(g, cfg, id) {
            continue;
        }
        for site in &n.panics {
            if !seen.insert((n.file, site.line, site.col)) {
                continue;
            }
            out.push(mk_diag(
                files,
                n.file,
                site.line,
                site.col,
                "I2",
                format!(
                    "`{}` reachable from a hot-loop entry: {}",
                    site.what,
                    g.chain(&parent, id)
                ),
                cfg,
            ));
        }
    }
}

fn i3_shard_purity(files: &[SourceFile], g: &Graph, cfg: &RuleCfg, out: &mut Vec<Diagnostic>) {
    let entries = g.match_entries(&cfg.entries);
    let parent = g.reach(&entries);
    // One diagnostic per (static, referencing file): the first use site
    // stands for all of them, so exempting a telemetry atomic takes one
    // `[[allow]]` per file, not one per counter bump.
    let mut seen = BTreeSet::new();
    for u in g.static_uses(&parent) {
        let n = &g.nodes[u.node];
        if !node_in_scope(g, cfg, u.node) {
            continue;
        }
        if !seen.insert((u.st.crate_key.clone(), u.st.name.clone(), n.file)) {
            continue;
        }
        out.push(mk_diag(
            files,
            n.file,
            u.site.line,
            u.site.col,
            "I3",
            format!(
                "{} `{}: {}` reachable from shard-executed code: {}",
                if u.st.is_atomic {
                    "shared atomic"
                } else {
                    "global state"
                },
                u.st.name,
                u.st.ty,
                g.chain(&parent, u.node)
            ),
            cfg,
        ));
    }
}

fn i4_contract_propagation(
    files: &[SourceFile],
    g: &Graph,
    cfg: &RuleCfg,
    out: &mut Vec<Diagnostic>,
) {
    let api = cfg.api_crate.as_deref().unwrap_or("sim");
    for (id, n) in g.nodes.iter().enumerate() {
        if !n.is_pub || !node_in_scope(g, cfg, id) || has_contract_doc(&n.doc) {
            continue;
        }
        // Only exactly-resolved edges: a name-level `.push(..)` edge to
        // the event-queue API would demand ordering docs from every
        // Vec::push caller in scope.
        let culprit = n.calls.iter().find(|e| {
            e.kind == EdgeKind::Exact
                && g.nodes[e.to].crate_key == api
                && has_contract_doc(&g.nodes[e.to].doc)
        });
        if let Some(e) = culprit {
            out.push(mk_diag(
                files,
                n.file,
                n.line,
                n.col,
                "I4",
                format!(
                    "pub fn `{}` calls ordering-contract API `{}` (line {}) but its doc \
                     states no ordering contract",
                    n.key, g.nodes[e.to].key, e.line
                ),
                cfg,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleCfg;

    fn rule(id: &str, entries: &[&str]) -> RuleCfg {
        RuleCfg {
            id: id.to_string(),
            crates: vec!["fixture".to_string()],
            files: Vec::new(),
            hint: None,
            entries: entries.iter().map(|s| s.to_string()).collect(),
            api_crate: Some("fixture".to_string()),
        }
    }

    fn run(srcs: &[(&str, &str)], r: RuleCfg) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, (ck, src))| {
                SourceFile::analyze(&format!("crates/{ck}/src/f{i}.rs"), ck, false, src)
            })
            .collect();
        let cfg = Config {
            rules: vec![r],
            ..Config::default()
        };
        run_inter(&files, &cfg)
    }

    #[test]
    fn i1_sees_through_helper_crates() {
        let diags = run(
            &[(
                "fixture",
                "pub fn fig_latency() { helper(); }\nfn helper() { noise(); }\n\
                     fn noise() { let r = thread_rng(); }\nfn unrelated() { thread_rng(); }",
            )],
            rule("I1", &["fig_latency"]),
        );
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("ambient RNG"));
        assert!(
            diags[0]
                .msg
                .contains("fixture::fig_latency -> fixture::helper -> fixture::noise"),
            "{}",
            diags[0].msg
        );
    }

    #[test]
    fn i2_prunes_debug_assert_and_test_code() {
        let src = "pub fn handle_one() { step(); }\n\
                   fn step() { debug_assert!(deep_check()); tail(); }\n\
                   fn deep_check() -> bool { Some(1).unwrap() > 0 }\n\
                   fn tail() { inner(); }\nfn inner() { panic!(\"slab\"); }\n\
                   #[cfg(test)]\nmod t { fn boom() { panic!(\"test only\"); } }";
        let diags = run(&[("fixture", src)], rule("I2", &["handle_one"]));
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("panic!"));
        assert!(diags[0].msg.contains("fixture::tail -> fixture::inner"));
    }

    #[test]
    fn i3_flags_statics_once_per_file() {
        let src = "static HITS: AtomicU64 = AtomicU64::new(0);\n\
                   pub fn run_window() { HITS.fetch_add(1, R); tick(); }\n\
                   fn tick() { HITS.fetch_add(1, R); }\npub fn cold() { HITS.load(R); }";
        let diags = run(&[("fixture", src)], rule("I3", &["run_window"]));
        assert_eq!(diags.len(), 1, "one per (static, file): {diags:#?}");
        assert!(diags[0].msg.contains("shared atomic `HITS"));
    }

    #[test]
    fn i4_requires_contract_docs_on_exact_calls() {
        let api = "/// Pops events in (time, seq) FIFO order.\npub fn pop_next() {}";
        let caller = "use fixture::pop_next;\n\
                      pub fn undocumented() { pop_next(); }\n\
                      /// Preserves (time, seq) order end to end.\n\
                      pub fn documented() { pop_next(); }\n\
                      fn private_ok() { pop_next(); }";
        let files = [("fixture", api), ("fixture", caller)];
        let mut r = rule("I4", &[]);
        r.crates = vec!["fixture".to_string()];
        let diags = run(&files, r);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].msg.contains("undocumented"), "{diags:#?}");
    }
}
