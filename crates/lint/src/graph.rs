//! Workspace symbol index and conservative call graph.
//!
//! Built from every file's [`crate::parse::ItemTree`], this module gives
//! the interprocedural rules ([`crate::inter`]) the three facts they
//! reason over: *which functions exist* (nodes), *which functions each
//! body may call* (edges), and *what each body touches directly* (taint
//! sources, panic sites, static references).
//!
//! ## Conservatism
//!
//! The graph is a deliberate over-approximation — it must never miss a
//! real call, and it accepts phantom edges to get that:
//!
//! * **Bare calls** `foo(..)` resolve to *every* function named `foo` in
//!   the calling crate, plus whatever a `use` alias brings in.
//! * **Path calls** `a::b::f(..)` resolve the leading segment through
//!   `crate`/`self`/`super`, the file's `use` aliases, and the workspace
//!   crate-name map (`rperf_sim` → `sim`); `Type::f(..)` resolves to the
//!   methods of every `impl Type` in the workspace.
//! * **Method calls** `.f(..)` resolve to every impl/trait method named
//!   `f` anywhere in the workspace — receiver types are not inferred.
//!   This is the big hammer that catches dynamic dispatch (`Box<dyn
//!   App>`) and trait calls, at the cost of edges like `Vec::pop` being
//!   conflated with `EventQueue::pop`.
//!
//! Known under-approximations (documented in DESIGN.md §5.1): calls
//! through function pointers/closures passed as values, `std` callbacks
//! (e.g. `sort_by` invoking a comparator — the closure body is still
//! scanned as part of its enclosing function, so its *sites* are seen),
//! and slice-index panics, which are not modeled as panic sites.
//!
//! Functions gated `#[cfg(test)]` are not nodes; tokens gated by a
//! feature named in `off_features` (lint.toml) are invisible to the body
//! scan, so `sim-prof`-only instrumentation neither calls nor taints.

use std::collections::BTreeMap;

use crate::lexer::{TokKind, Token};
use crate::parse::{self, FnDecl};
use crate::rules::SourceFile;

/// What kind of ambient-input taint a token introduces (rule I1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `thread_rng` / `rand::` — ambient RNG.
    Rng,
    /// `Instant` / `SystemTime` / `std::time` — wall clock.
    Clock,
    /// `env::var` / `var_os` / `vars` — environment read.
    Env,
    /// `set_read_timeout(None)` / `set_write_timeout(None)` — a socket
    /// configured to wait forever.
    Socket,
}

impl TaintKind {
    /// Human label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            TaintKind::Rng => "ambient RNG",
            TaintKind::Clock => "wall clock",
            TaintKind::Env => "environment read",
            TaintKind::Socket => "infinite socket timeout",
        }
    }
}

/// A token-level fact found inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending token text (`thread_rng`, `unwrap`, a static name).
    pub what: String,
}

/// How confident the resolver is about a call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Resolved through a path, type, or unique bare name — the target
    /// is what the source names.
    Exact,
    /// Resolved by method name alone (`.f(..)` to every method `f`).
    MethodName,
}

/// One call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Resolution confidence.
    pub kind: EdgeKind,
    /// 1-based line of the call site.
    pub line: u32,
}

/// One function node.
#[derive(Debug)]
pub struct Node {
    /// Index of the defining file in the workspace file list.
    pub file: usize,
    /// Crate key of the defining file.
    pub crate_key: String,
    /// Bare name.
    pub name: String,
    /// Impl self type, if a method.
    pub self_ty: Option<String>,
    /// Trait name, if a trait/trait-impl method.
    pub trait_name: Option<String>,
    /// Display key: `crate::Type::name` / `crate::name`.
    pub key: String,
    /// True for `pub` (any scope).
    pub is_pub: bool,
    /// Outer doc text.
    pub doc: String,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Outgoing calls, sorted and deduplicated.
    pub calls: Vec<Edge>,
    /// Ambient-input sources in this body.
    pub taints: Vec<(TaintKind, Site)>,
    /// Panic sites in this body (`unwrap`/`expect`/`panic!`/`todo!`/
    /// `unimplemented!`), `debug_assert!` bodies excluded.
    pub panics: Vec<Site>,
    /// Workspace statics this body references, as (static index, site).
    pub static_refs: Vec<(usize, Site)>,
}

/// One workspace static the body scan can resolve references to.
#[derive(Debug)]
pub struct StaticNode {
    /// Crate key of the defining file.
    pub crate_key: String,
    /// Item name.
    pub name: String,
    /// Declared type text.
    pub ty: String,
    /// True when the type mentions `Atomic*`.
    pub is_atomic: bool,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Function nodes, ordered by (file, declaration order) — the
    /// deterministic traversal order every rule uses.
    pub nodes: Vec<Node>,
    /// Statics visible to the body scan.
    pub statics: Vec<StaticNode>,
}

/// Maps an extern-crate lib ident to the workspace crate key it names.
fn crate_key_of(ident: &str) -> Option<String> {
    match ident {
        "rperf" => Some("core".to_string()),
        "rperf_lab" => Some("root".to_string()),
        "proptest" => Some("proptest-shim".to_string()),
        "criterion" => Some("criterion-shim".to_string()),
        _ => ident
            .strip_prefix("rperf_")
            .map(|rest| rest.replace('_', "-")),
    }
}

/// True when `name` starts with an uppercase letter — the heuristic for
/// "this path segment is a type, not a module".
fn is_type_like(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

struct Indexes {
    /// (crate key, fn name) -> node ids (free fns and methods alike).
    by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// method name -> node ids of all impl/trait methods with that name.
    methods: BTreeMap<String, Vec<usize>>,
    /// (self type, method name) -> node ids.
    ty_methods: BTreeMap<(String, String), Vec<usize>>,
    /// (crate key, static name) -> static index.
    statics: BTreeMap<(String, String), usize>,
}

impl Graph {
    /// Builds the graph over `files` (all of which must carry parsed
    /// item trees). `off_features` lists cargo features the analysis
    /// assumes disabled.
    pub fn build(files: &[SourceFile], off_features: &[String]) -> Graph {
        let mut g = Graph::default();
        let mut idx = Indexes {
            by_crate_name: BTreeMap::new(),
            methods: BTreeMap::new(),
            ty_methods: BTreeMap::new(),
            statics: BTreeMap::new(),
        };
        // Pass 1: nodes and indexes.
        for (fi, file) in files.iter().enumerate() {
            for s in &file.tree.statics {
                if s.in_test || s.features.iter().any(|f| off_features.contains(f)) {
                    continue;
                }
                let id = g.statics.len();
                g.statics.push(StaticNode {
                    crate_key: file.crate_key.clone(),
                    name: s.name.clone(),
                    ty: s.ty.clone(),
                    is_atomic: s.is_atomic,
                });
                idx.statics
                    .entry((file.crate_key.clone(), s.name.clone()))
                    .or_insert(id);
            }
            for d in &file.tree.fns {
                if d.in_test || d.features.iter().any(|f| off_features.contains(f)) {
                    continue;
                }
                let id = g.nodes.len();
                let key = match &d.self_ty {
                    Some(ty) => format!("{}::{}::{}", file.crate_key, ty, d.name),
                    None => match &d.trait_name {
                        Some(tr) => format!("{}::{}::{}", file.crate_key, tr, d.name),
                        None => format!("{}::{}", file.crate_key, d.name),
                    },
                };
                g.nodes.push(Node {
                    file: fi,
                    crate_key: file.crate_key.clone(),
                    name: d.name.clone(),
                    self_ty: d.self_ty.clone(),
                    trait_name: d.trait_name.clone(),
                    key,
                    is_pub: d.is_pub,
                    doc: d.doc.clone(),
                    line: d.line,
                    col: d.col,
                    calls: Vec::new(),
                    taints: Vec::new(),
                    panics: Vec::new(),
                    static_refs: Vec::new(),
                });
                idx.by_crate_name
                    .entry((file.crate_key.clone(), d.name.clone()))
                    .or_default()
                    .push(id);
                if d.self_ty.is_some() || d.trait_name.is_some() {
                    idx.methods.entry(d.name.clone()).or_default().push(id);
                    if let Some(ty) = &d.self_ty {
                        idx.ty_methods
                            .entry((ty.clone(), d.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    if let Some(tr) = &d.trait_name {
                        idx.ty_methods
                            .entry((tr.clone(), d.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        // Pass 2: body scans. Node order matches (file, decl) order, so
        // walk the same zip again.
        let mut node_id = 0usize;
        for file in files {
            let off_mask = parse::off_feature_mask(&file.tokens, off_features);
            for d in &file.tree.fns {
                if d.in_test || d.features.iter().any(|f| off_features.contains(f)) {
                    continue;
                }
                scan_body(&mut g, &idx, node_id, file, d, &off_mask);
                node_id += 1;
            }
        }
        for n in &mut g.nodes {
            n.calls.sort_by_key(|e| (e.to, e.kind, e.line));
            n.calls.dedup_by_key(|e| (e.to, e.kind));
        }
        g
    }

    /// Node ids matching an entry pattern. Patterns:
    ///
    /// * `name` — every function with that bare name;
    /// * `Type::name` — methods of `Type` (self type or trait);
    /// * `crate::name` — functions named `name` in that crate;
    /// * `crate::Type::name` — both constraints.
    ///
    /// A trailing `*` on the final segment prefix-matches names
    /// (`bench::fig*`).
    pub fn match_entries(&self, patterns: &[String]) -> Vec<usize> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            for pat in patterns {
                let segs: Vec<&str> = pat.split("::").collect();
                let (name_pat, quals) = match segs.split_last() {
                    Some((l, q)) => (*l, q),
                    None => continue,
                };
                let name_ok = match name_pat.strip_suffix('*') {
                    Some(prefix) => n.name.starts_with(prefix),
                    None => n.name == name_pat,
                };
                if !name_ok {
                    continue;
                }
                let quals_ok = quals.iter().all(|q| {
                    if is_type_like(q) {
                        n.self_ty.as_deref() == Some(*q) || n.trait_name.as_deref() == Some(*q)
                    } else {
                        n.crate_key == *q
                    }
                });
                if quals_ok {
                    out.push(id);
                    break;
                }
            }
        }
        out
    }

    /// Multi-source BFS from `entries` over all call edges. Returns, for
    /// every node, `Some(parent)` when reachable (entries have
    /// `Some(usize::MAX)`), `None` otherwise. Traversal is deterministic:
    /// entries in ascending id order, neighbours in edge order.
    pub fn reach(&self, entries: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut sorted = entries.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &e in &sorted {
            if e < self.nodes.len() && parent[e].is_none() {
                parent[e] = Some(usize::MAX);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for e in &self.nodes[n].calls {
                if parent[e.to].is_none() {
                    parent[e.to] = Some(n);
                    queue.push_back(e.to);
                }
            }
        }
        parent
    }

    /// Renders the entry → … → `node` chain recorded by [`Graph::reach`]
    /// as `a → b → c`, eliding the middle beyond 5 hops.
    pub fn chain(&self, parent: &[Option<usize>], node: usize) -> String {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(Some(p)) = parent.get(cur) {
            if *p == usize::MAX || path.len() > 64 {
                break;
            }
            path.push(*p);
            cur = *p;
        }
        path.reverse();
        let keys: Vec<&str> = path.iter().map(|&i| self.nodes[i].key.as_str()).collect();
        if keys.len() <= 5 {
            keys.join(" -> ")
        } else {
            format!(
                "{} -> {} -> ... -> {} -> {}",
                keys[0],
                keys[1],
                keys[keys.len() - 2],
                keys[keys.len() - 1]
            )
        }
    }
}

/// Scans one function body for calls, taints, panic sites, and static
/// references, pushing them onto node `id`.
fn scan_body(
    g: &mut Graph,
    idx: &Indexes,
    id: usize,
    file: &SourceFile,
    d: &FnDecl,
    off_mask: &[bool],
) {
    let Some((start, end)) = d.body else { return };
    // Filtered positions: significant tokens inside the body that are
    // not feature-masked.
    let b: Vec<usize> = (start..=end.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| {
            !matches!(file.tokens[i].kind, TokKind::Comment | TokKind::DocComment)
                && !off_mask.get(i).copied().unwrap_or(false)
        })
        .collect();
    let tok = |k: usize| -> Option<&Token> { b.get(k).map(|&i| &file.tokens[i]) };
    let crate_key = &file.crate_key;

    let mut k = 0usize;
    while k < b.len() {
        let t = &file.tokens[b[k]];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let next_bang = tok(k + 1).is_some_and(|n| n.is_punct('!'));
        if next_bang {
            match t.text.as_str() {
                // debug_assert bodies run only in debug builds: skip the
                // whole argument list for every fact class.
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne" => {
                    let mut m = k + 2;
                    if let Some(open) = tok(m).filter(|t| t.is_punct('(')) {
                        let _ = open;
                        let mut depth = 0isize;
                        while m < b.len() {
                            let q = &file.tokens[b[m]];
                            if q.is_punct('(') {
                                depth += 1;
                            } else if q.is_punct(')') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            m += 1;
                        }
                    }
                    k = m + 1;
                    continue;
                }
                "panic" | "todo" | "unimplemented" => {
                    g.nodes[id].panics.push(Site {
                        line: t.line,
                        col: t.col,
                        what: format!("{}!", t.text),
                    });
                    k += 2;
                    continue;
                }
                _ => {}
            }
        }
        // Taint sources.
        let taint = match t.text.as_str() {
            "thread_rng" => Some(TaintKind::Rng),
            "rand"
                if tok(k + 1).is_some_and(|n| n.is_punct(':'))
                    && tok(k + 2).is_some_and(|n| n.is_punct(':')) =>
            {
                Some(TaintKind::Rng)
            }
            "Instant" | "SystemTime" => Some(TaintKind::Clock),
            "env"
                if tok(k + 1).is_some_and(|n| n.is_punct(':'))
                    && tok(k + 2).is_some_and(|n| n.is_punct(':'))
                    && tok(k + 3).is_some_and(|n| {
                        n.is_ident("var") || n.is_ident("var_os") || n.is_ident("vars")
                    }) =>
            {
                Some(TaintKind::Env)
            }
            _ => None,
        };
        if let Some(kind) = taint {
            g.nodes[id].taints.push((
                kind,
                Site {
                    line: t.line,
                    col: t.col,
                    what: t.text.clone(),
                },
            ));
            k += 1;
            continue;
        }

        let called = tok(k + 1).is_some_and(|n| n.is_punct('('));
        let prev_dot = k > 0 && tok(k - 1).is_some_and(|p| p.is_punct('.'));
        if called && prev_dot {
            match t.text.as_str() {
                "unwrap" | "expect" => {
                    g.nodes[id].panics.push(Site {
                        line: t.line,
                        col: t.col,
                        what: format!(".{}()", t.text),
                    });
                }
                "set_read_timeout" | "set_write_timeout"
                    if tok(k + 2).is_some_and(|n| n.is_ident("None")) =>
                {
                    g.nodes[id].taints.push((
                        TaintKind::Socket,
                        Site {
                            line: t.line,
                            col: t.col,
                            what: format!("{}(None)", t.text),
                        },
                    ));
                }
                name => {
                    if let Some(ids) = idx.methods.get(name) {
                        for &to in ids {
                            g.nodes[id].calls.push(Edge {
                                to,
                                kind: EdgeKind::MethodName,
                                line: t.line,
                            });
                        }
                    }
                }
            }
            k += 1;
            continue;
        }
        if called && !prev_dot && !(k > 0 && tok(k - 1).is_some_and(|p| p.is_ident("fn"))) {
            // Reconstruct a leading path (`a :: b :: name`).
            let mut segs: Vec<String> = vec![t.text.clone()];
            let mut j = k;
            while j >= 3
                && tok(j - 1).is_some_and(|p| p.is_punct(':'))
                && tok(j - 2).is_some_and(|p| p.is_punct(':'))
                && tok(j - 3).is_some_and(|p| p.kind == TokKind::Ident)
            {
                segs.push(tok(j - 3).map(|p| p.text.clone()).unwrap_or_default());
                j -= 3;
            }
            segs.reverse();
            let targets = resolve_call(idx, file, crate_key, d, &segs);
            for (to, kind) in targets {
                g.nodes[id].calls.push(Edge {
                    to,
                    kind,
                    line: t.line,
                });
            }
            k += 1;
            continue;
        }
        // Static references: bare name, or resolved through a path that
        // stayed in this crate. Skip the `NAME` in `NAME ::` position —
        // that's a path prefix (type or module), not a static read.
        if !prev_dot && !tok(k + 1).is_some_and(|n| n.is_punct(':')) {
            let in_path = k >= 2
                && tok(k - 1).is_some_and(|p| p.is_punct(':'))
                && tok(k - 2).is_some_and(|p| p.is_punct(':'));
            if !in_path {
                if let Some(&sid) = idx.statics.get(&(crate_key.clone(), t.text.clone())) {
                    g.nodes[id].static_refs.push((
                        sid,
                        Site {
                            line: t.line,
                            col: t.col,
                            what: t.text.clone(),
                        },
                    ));
                }
            }
        }
        k += 1;
    }
}

/// Resolves a (possibly multi-segment) call path to candidate nodes.
fn resolve_call(
    idx: &Indexes,
    file: &SourceFile,
    crate_key: &str,
    d: &FnDecl,
    segs: &[String],
) -> Vec<(usize, EdgeKind)> {
    let mut segs: Vec<String> = segs.to_vec();
    // Normalize leading `crate` / `self` / `super` to "this crate".
    while segs
        .first()
        .is_some_and(|s| s == "crate" || s == "self" || s == "super")
    {
        segs.remove(0);
    }
    if segs.is_empty() {
        return Vec::new();
    }
    // Splice a use-alias for the first segment, unless the segment
    // already names an extern crate.
    if crate_key_of(&segs[0]).is_none() {
        if let Some(u) = file.tree.uses.iter().find(|u| u.alias == segs[0]) {
            let mut spliced = u.path.clone();
            spliced.extend(segs[1..].iter().cloned());
            segs = spliced;
            while segs
                .first()
                .is_some_and(|s| s == "crate" || s == "self" || s == "super")
            {
                segs.remove(0);
            }
        }
    }
    let (target_crate, rest): (Option<String>, &[String]) = match crate_key_of(&segs[0]) {
        Some(key) => (Some(key), &segs[1..]),
        None => (None, &segs[..]),
    };
    if rest.is_empty() {
        return Vec::new();
    }
    let name = rest[rest.len() - 1].clone();
    let qual = rest.len().checked_sub(2).map(|i| rest[i].as_str());

    match qual {
        // `Type::name` / `Self::name`: impl-method resolution.
        Some(q) if is_type_like(q) || q == "Self" => {
            let ty = if q == "Self" {
                match &d.self_ty {
                    Some(t) => t.clone(),
                    None => return Vec::new(),
                }
            } else {
                q.to_string()
            };
            if let Some(ids) = idx.ty_methods.get(&(ty, name.clone())) {
                return ids.iter().map(|&i| (i, EdgeKind::Exact)).collect();
            }
            // Unknown type (std, enum variant, …): if the crate is known,
            // fall back to name resolution inside it.
            if let Some(c) = target_crate {
                if let Some(ids) = idx.by_crate_name.get(&(c, name)) {
                    return ids.iter().map(|&i| (i, EdgeKind::Exact)).collect();
                }
            }
            Vec::new()
        }
        // `module::name` within a known crate, or plain `name`.
        _ => {
            let c = target_crate.unwrap_or_else(|| crate_key.to_string());
            if qual.is_some() && crate_key_of(&segs[0]).is_none() && segs[0] != *name {
                // A multi-segment path whose head is neither a workspace
                // crate, an alias, nor a type (`std::mem::take`): not ours.
                let head_known = idx
                    .by_crate_name
                    .range((c.clone(), String::new())..(format!("{c}\u{1}"), String::new()))
                    .next()
                    .is_some();
                let _ = head_known;
                // Only resolve when the head segment is a module of this
                // crate — approximated by "the crate defines fn `name`".
                // std paths fall through to the same lookup and miss.
            }
            match idx.by_crate_name.get(&(c, name)) {
                Some(ids) => ids.iter().map(|&i| (i, EdgeKind::Exact)).collect(),
                None => Vec::new(),
            }
        }
    }
}

/// A static referenced on a shard path, with its resolved metadata —
/// convenience for rule I3.
#[derive(Debug)]
pub struct StaticUse<'g> {
    /// The referencing node.
    pub node: usize,
    /// The referenced static.
    pub st: &'g StaticNode,
    /// Where in the node's body.
    pub site: Site,
}

impl Graph {
    /// All static references made by `reachable` nodes, in node order.
    pub fn static_uses<'g>(&'g self, parent: &[Option<usize>]) -> Vec<StaticUse<'g>> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if parent.get(id).is_some_and(Option::is_some) {
                for (sid, site) in &n.static_refs {
                    out.push(StaticUse {
                        node: id,
                        st: &self.statics[*sid],
                        site: site.clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, crate_key: &str, src: &str) -> SourceFile {
        SourceFile::analyze(path, crate_key, false, src)
    }

    fn build(files: &[SourceFile]) -> Graph {
        Graph::build(files, &[])
    }

    fn node<'g>(g: &'g Graph, key: &str) -> (usize, &'g Node) {
        g.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.key == key)
            .unwrap_or_else(|| panic!("no node {key}"))
    }

    #[test]
    fn bare_and_path_calls_resolve() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "a",
                "pub fn entry() { helper(); rperf_b::far(); }\nfn helper() { b::mid(); }\nmod b { pub fn mid() {} }",
            ),
            file("crates/b/src/lib.rs", "b", "pub fn far() {}"),
        ];
        let g = build(&files);
        let (entry, n) = node(&g, "a::entry");
        let callees: Vec<&str> = n.calls.iter().map(|e| g.nodes[e.to].key.as_str()).collect();
        assert!(callees.contains(&"a::helper"), "{callees:?}");
        assert!(callees.contains(&"b::far"), "{callees:?}");
        let reach = g.reach(&[entry]);
        let (mid, _) = node(&g, "a::mid");
        assert!(reach[mid].is_some(), "entry -> helper -> b::mid");
    }

    #[test]
    fn method_calls_overapproximate_and_chain_renders() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "a",
            "pub fn entry(w: &mut W) { w.step(); }\n\
             struct W;\nimpl W { fn step(&mut self) { deep(); } }\n\
             fn deep() { panic!(\"boom\"); }",
        )];
        let g = build(&files);
        let (entry, _) = node(&g, "a::entry");
        let reach = g.reach(&[entry]);
        let (deep, dn) = node(&g, "a::deep");
        assert!(reach[deep].is_some());
        assert_eq!(dn.panics.len(), 1);
        assert_eq!(g.chain(&reach, deep), "a::entry -> a::W::step -> a::deep");
    }

    #[test]
    fn use_aliases_and_taints() {
        let files = vec![
            file(
                "crates/a/src/lib.rs",
                "a",
                "use rperf_b::far as away;\npub fn entry() { away(); }",
            ),
            file(
                "crates/b/src/lib.rs",
                "b",
                "pub fn far() { let x = thread_rng(); }",
            ),
        ];
        let g = build(&files);
        let (entry, _) = node(&g, "a::entry");
        let reach = g.reach(&[entry]);
        let (far, fnode) = node(&g, "b::far");
        assert!(reach[far].is_some(), "alias call resolves cross-crate");
        assert_eq!(fnode.taints.len(), 1);
        assert_eq!(fnode.taints[0].0, TaintKind::Rng);
    }

    #[test]
    fn debug_assert_and_cfg_test_are_pruned() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "a",
            "pub fn hot(v: u32) { debug_assert!(check(v), \"bad {}\", v); }\n\
             fn check(v: u32) -> bool { v.checked_add(1).unwrap() > 0 }\n\
             #[cfg(test)]\nmod tests { pub fn t() { panic!(\"x\"); } }",
        )];
        let g = build(&files);
        let (hot, hn) = node(&g, "a::hot");
        assert!(hn.calls.is_empty(), "debug_assert args are not edges");
        assert!(hn.panics.is_empty());
        let reach = g.reach(&[hot]);
        let (check, _) = node(&g, "a::check");
        assert!(reach[check].is_none());
        assert!(!g.nodes.iter().any(|n| n.name == "t"), "test fns excluded");
    }

    #[test]
    fn statics_and_entry_patterns() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "a",
            "static EVENTS: AtomicU64 = AtomicU64::new(0);\nstatic TBL: [u8; 2] = [0, 0];\n\
             pub struct W;\nimpl W { pub fn run_window(&self) { EVENTS.fetch_add(1, O); tick(); } }\n\
             fn tick() { let _x = TBL[0]; }\npub fn fig4() {}\npub fn fig5() {}",
        )];
        let g = build(&files);
        assert_eq!(g.statics.len(), 2);
        let entries = g.match_entries(&["W::run_window".to_string()]);
        assert_eq!(entries.len(), 1);
        let reach = g.reach(&entries);
        let uses = g.static_uses(&reach);
        let names: Vec<&str> = uses.iter().map(|u| u.st.name.as_str()).collect();
        assert_eq!(names, ["EVENTS", "TBL"]);
        assert!(uses[0].st.is_atomic && !uses[1].st.is_atomic);
        assert_eq!(g.match_entries(&["a::fig*".to_string()]).len(), 2);
        assert_eq!(g.match_entries(&["a::run_window".to_string()]).len(), 1);
    }
}
