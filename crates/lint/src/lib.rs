//! `rperf-lint` — the workspace invariant linter.
//!
//! Every figure in this reproduction is pinned byte-for-byte by golden
//! tests, and the sweep runner promises identical JSON for any `--jobs
//! N`. Those guarantees rest on invariants nothing used to check
//! *statically*: no unordered-map iteration, no wall-clock reads, no
//! ambient RNG, quantities kept in integer newtypes, no panics in the
//! hot loop, no `unsafe`, documented event-API ordering contracts, no
//! environment-dependent results. This crate tokenizes every `.rs` file
//! under `crates/*/src` and `src/` with a small hand-written lexer
//! ([`lexer`]) — the offline build cannot resolve `syn` — and runs the
//! rule catalog ([`rules`]) over the token streams, configured by the
//! checked-in `lint.toml` ([`config`]).
//!
//! On top of the token rules, an item-tree parser ([`parse`]) and a
//! workspace-wide conservative call graph ([`graph`]) drive four
//! interprocedural rules ([`inter`]): taint-, panic-, and
//! global-state-reachability plus ordering-contract propagation — the
//! violations that launder themselves through helper crates and that
//! single-file pattern matching cannot see.
//!
//! The binary (`cargo run -p rperf-lint`, or `make lint-invariants`)
//! exits non-zero on any violation, printing `file:line:col`, the
//! offending line, the rule id and a fix hint; `--format json`,
//! `--explain <rule>`, `--jobs N` and `--ci` are documented in
//! `main.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod inter;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::thread;

pub use config::Config;
pub use rules::{Diagnostic, SourceFile};

/// The outcome of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Surviving (post-allowlist) diagnostics, sorted by file/position.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_checked: usize,
    /// Human-readable notes for `[[allow]]` entries that matched nothing
    /// — stale entries should be deleted, not accumulated.
    pub unused_allows: Vec<String>,
}

/// One file the walker found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkspaceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Repo-relative path with forward slashes (diagnostic label).
    pub rel: String,
    /// Crate key: directory name under `crates/`, or `root`.
    pub crate_key: String,
    /// True for `src/lib.rs`, `src/main.rs`, `src/bin/*.rs`.
    pub is_crate_root: bool,
}

/// Enumerates every linted `.rs` file under `root`: `crates/*/src/**`
/// plus the top-level package's `src/**`. Integration tests, benches and
/// fixtures live outside `src/` and are deliberately not scanned. The
/// listing is sorted so diagnostics are stable across platforms.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn workspace_files(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let key = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            collect_rs(&dir.join("src"), &mut out, &key)?;
        }
    }
    collect_rs(&root.join("src"), &mut out, "root")?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    // Rebuild the repo-relative labels against `root`.
    for f in &mut out {
        if let Ok(rel) = f.abs.strip_prefix(root) {
            f.rel = path_label(rel);
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn path_label(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(src_dir: &Path, out: &mut Vec<WorkspaceFile>, key: &str) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src_dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
                let parent = p
                    .parent()
                    .and_then(|d| d.file_name())
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                let is_crate_root =
                    (parent == "src" && (name == "lib.rs" || name == "main.rs")) || parent == "bin";
                out.push(WorkspaceFile {
                    rel: path_label(&p),
                    abs: p,
                    crate_key: key.to_string(),
                    is_crate_root,
                });
            }
        }
    }
    Ok(())
}

/// Lints one source text under a path label — the path-independent entry
/// point the fixture tests use. Interprocedural rules see this file as
/// the whole workspace, so single-file fixtures exercise I1–I4 too.
pub fn lint_source(
    path: &str,
    crate_key: &str,
    is_crate_root: bool,
    src: &str,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let file = SourceFile::analyze(path, crate_key, is_crate_root, src);
    lint_files(std::slice::from_ref(&file), cfg)
}

/// Runs the token rules per file plus the interprocedural rules over
/// the whole set, returning unfiltered (pre-allowlist) diagnostics
/// sorted by `(file, line, col, rule)`.
pub fn lint_files(files: &[SourceFile], cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        out.extend(rules::run_rules(file, cfg));
    }
    out.extend(inter::run_inter(files, cfg));
    out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    out
}

/// Drops diagnostics matched by an `[[allow]]` entry, recording which
/// entries were used in `used` (same order as `cfg.allows`).
pub fn apply_allows(diags: Vec<Diagnostic>, cfg: &Config, used: &mut [bool]) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            for (k, a) in cfg.allows.iter().enumerate() {
                let hit = a.rule == d.rule
                    && d.path.ends_with(a.path.as_str())
                    && a.contains
                        .as_deref()
                        .is_none_or(|c| d.line_text.contains(c));
                if hit {
                    if let Some(slot) = used.get_mut(k) {
                        *slot = true;
                    }
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Lints the whole workspace rooted at `root` with `cfg`, spreading the
/// per-file tokenize/parse/rule work over `jobs` scoped threads
/// (`0` = available parallelism). Output is byte-identical for any
/// `jobs`: workers own disjoint index ranges of the sorted file list,
/// per-file results are merged in file order, and the interprocedural
/// pass runs once over the ordered [`SourceFile`] set.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn lint_workspace(root: &Path, cfg: &Config, jobs: usize) -> io::Result<LintReport> {
    let files = workspace_files(root)?;
    let sources: Vec<String> = files
        .iter()
        .map(|f| fs::read_to_string(&f.abs))
        .collect::<io::Result<_>>()?;
    let jobs = match jobs {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(files.len().max(1));
    // Each worker analyzes a contiguous chunk; chunks concatenate back
    // in file order, so the result is independent of scheduling.
    let chunk = files.len().div_ceil(jobs.max(1)).max(1);
    let mut analyzed: Vec<(SourceFile, Vec<Diagnostic>)> = Vec::with_capacity(files.len());
    thread::scope(|s| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .zip(sources.chunks(chunk))
            .map(|(fs_chunk, src_chunk)| {
                s.spawn(move || {
                    fs_chunk
                        .iter()
                        .zip(src_chunk)
                        .map(|(f, src)| {
                            let sf =
                                SourceFile::analyze(&f.rel, &f.crate_key, f.is_crate_root, src);
                            let diags = rules::run_rules(&sf, cfg);
                            (sf, diags)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // A worker can only panic if a rule does; propagate.
            match h.join() {
                Ok(part) => analyzed.extend(part),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let mut used = vec![false; cfg.allows.len()];
    let files_checked = analyzed.len();
    let mut raw = Vec::new();
    let mut source_files = Vec::with_capacity(files_checked);
    for (sf, diags) in analyzed {
        raw.extend(diags);
        source_files.push(sf);
    }
    raw.extend(inter::run_inter(&source_files, cfg));
    let mut diagnostics = apply_allows(raw, cfg, &mut used);
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    let unused_allows = cfg
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| {
            format!(
                "lint.toml:{}: [[allow]] for {} at `{}` matched nothing — delete it",
                a.line, a.rule, a.path
            )
        })
        .collect();
    Ok(LintReport {
        diagnostics,
        files_checked,
        unused_allows,
    })
}

/// Renders a [`LintReport`] as deterministic JSON (the `--format json`
/// output and the `LINT_report.json` CI artifact): an object with
/// `files_checked`, a `diagnostics` array of
/// `{path, line, col, rule, msg, line_text, hint}`, and the
/// `stale_allows` strings.
pub fn report_json(report: &LintReport) -> String {
    use rperf_stats::json;
    json::object([
        ("files_checked", json::uint(report.files_checked as u64)),
        (
            "diagnostics",
            json::array(report.diagnostics.iter().map(|d| {
                json::object([
                    ("path", json::string(&d.path)),
                    ("line", json::uint(u64::from(d.line))),
                    ("col", json::uint(u64::from(d.col))),
                    ("rule", json::string(d.rule)),
                    ("msg", json::string(&d.msg)),
                    ("line_text", json::string(&d.line_text)),
                    ("hint", json::string(&d.hint)),
                ])
            })),
        ),
        (
            "stale_allows",
            json::array(report.unused_allows.iter().map(|s| json::string(s))),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::{AllowEntry, Config};

    #[test]
    fn allows_filter_and_track_usage() {
        let cfg = Config {
            rules: vec![crate::config::RuleCfg {
                id: "D5".into(),
                crates: vec!["fixture".into()],
                files: Vec::new(),
                hint: None,
                entries: Vec::new(),
                api_crate: None,
            }],
            allows: vec![
                AllowEntry {
                    rule: "D5".into(),
                    path: "x.rs".into(),
                    contains: Some("boom".into()),
                    justification: "test".into(),
                    line: 1,
                },
                AllowEntry {
                    rule: "D5".into(),
                    path: "never.rs".into(),
                    contains: None,
                    justification: "test".into(),
                    line: 2,
                },
            ],
            off_features: Vec::new(),
        };
        let diags = lint_source(
            "fixture/src/x.rs",
            "fixture",
            false,
            "fn f(v: Option<u32>) {\n    v.expect(\"boom\");\n    v.expect(\"other\");\n}",
            &cfg,
        );
        assert_eq!(diags.len(), 2);
        let mut used = vec![false; cfg.allows.len()];
        let kept = apply_allows(diags, &cfg, &mut used);
        assert_eq!(kept.len(), 1, "only the pinned call site is silenced");
        assert!(kept[0].line_text.contains("other"));
        assert_eq!(used, vec![true, false]);
    }
}
