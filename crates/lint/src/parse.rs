//! A hand-written recursive-descent item parser on top of [`crate::lexer`].
//!
//! The token-level rules (D1–D10) match short token sequences and never
//! resolve names; the interprocedural rules (I1–I4, [`crate::inter`])
//! need more: which functions a file defines, which impl/trait each one
//! belongs to, what it imports, which items are `#[cfg(test)]`- or
//! feature-gated, and where each function's body starts and ends. This
//! module extracts exactly that — an [`ItemTree`] of functions, statics
//! and use-declarations with spans — without attempting to be a full
//! Rust parser: expression bodies stay opaque token ranges (the call
//! graph scans them separately), and anything the parser does not
//! recognize is skipped token-by-token.
//!
//! Robustness contract (enforced by the fuzz suite in
//! `tests/prop_parser.rs`): `parse` never panics on any byte sequence,
//! every recorded span refers to a real token, and every body range is
//! in-bounds and well-ordered. Malformed input degrades to *fewer*
//! recognized items, never to a crash — the compiler, not the linter,
//! reports broken Rust.

use crate::lexer::{TokKind, Token};

/// One `fn` item (free function, inherent/trait-impl method, or trait
/// method with a default body).
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Bare function name.
    pub name: String,
    /// Self type of the enclosing `impl` (or trait, for default
    /// methods): `impl World for WorldState` records `WorldState`.
    pub self_ty: Option<String>,
    /// Trait name when inside `impl Trait for Type` or a `trait` block.
    pub trait_name: Option<String>,
    /// Enclosing inline-module path within the file.
    pub module: Vec<String>,
    /// True when declared `pub` (any visibility scope).
    pub is_pub: bool,
    /// Concatenated outer doc-comment text (`///` lines, `/** */`).
    pub doc: String,
    /// True when the item (or an enclosing mod/impl) is gated by
    /// `#[cfg(test)]` or `#[test]`.
    pub in_test: bool,
    /// Feature names from `#[cfg(feature = "…")]` gates on the item or
    /// any enclosing scope.
    pub features: Vec<String>,
    /// Raw token-index range of the body `{ … }`, braces inclusive.
    /// `None` for bodiless declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// One `static` item.
#[derive(Debug, Clone)]
pub struct StaticDecl {
    /// Item name.
    pub name: String,
    /// The declared type, as source text with single spaces between
    /// tokens (e.g. `AtomicU64`, `[AtomicU64 ; KINDS]`).
    pub ty: String,
    /// True when the type mentions an `Atomic*` ident — the only class
    /// of static the shard-purity rule can ever exempt.
    pub is_atomic: bool,
    /// True when test-gated (see [`FnDecl::in_test`]).
    pub in_test: bool,
    /// Feature gates (see [`FnDecl::features`]).
    pub features: Vec<String>,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// 1-based column of the `static` keyword.
    pub col: u32,
}

/// One leaf of a `use` declaration: `use a::b::{c, d as e}` yields two
/// entries with aliases `c` and `e`.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name the import binds locally (`*` for glob imports).
    pub alias: String,
    /// Full path segments as written (`["rperf_sim", "rng", "SimRng"]`).
    pub path: Vec<String>,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Function items in source order.
    pub fns: Vec<FnDecl>,
    /// Static items in source order.
    pub statics: Vec<StaticDecl>,
    /// Flattened use-declaration leaves in source order.
    pub uses: Vec<UseDecl>,
}

/// Attribute gates accumulated while parsing.
#[derive(Debug, Clone, Default)]
struct Gates {
    test: bool,
    features: Vec<String>,
}

/// Inherited context: module path, impl/trait scope, gates.
#[derive(Debug, Clone, Default)]
struct Ctx {
    module: Vec<String>,
    self_ty: Option<String>,
    trait_name: Option<String>,
    in_test: bool,
    features: Vec<String>,
}

struct Parser<'a> {
    /// All tokens of the file.
    toks: &'a [Token],
    /// Indices of tokens that are not plain comments (doc comments kept,
    /// so the item loop can attach them to the following item).
    x: Vec<usize>,
    /// Cursor: position into `x`.
    pos: usize,
    out: ItemTree,
    /// Recursion-depth guard: adversarial inputs can nest mods/impls
    /// arbitrarily deep; beyond this the parser flattens (skips bodies).
    depth: usize,
}

const MAX_DEPTH: usize = 64;

/// Parses the token stream of one file into its [`ItemTree`].
pub fn parse(tokens: &[Token]) -> ItemTree {
    let x: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let end = x.len();
    let mut p = Parser {
        toks: tokens,
        x,
        pos: 0,
        out: ItemTree::default(),
        depth: 0,
    };
    p.items(&Ctx::default(), end);
    p.out
}

impl Parser<'_> {
    fn tok(&self, p: usize) -> Option<&Token> {
        self.x.get(p).map(|&i| &self.toks[i])
    }

    fn is_punct(&self, p: usize, c: char) -> bool {
        self.tok(p).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, p: usize, s: &str) -> bool {
        self.tok(p).is_some_and(|t| t.is_ident(s))
    }

    /// Position (into `x`) of the token matching the `open` delimiter at
    /// `self.x[at]`, scanning no further than `end`.
    fn matching(&self, at: usize, o: char, c: char, end: usize) -> Option<usize> {
        let mut depth = 0isize;
        let mut p = at;
        while p < end.min(self.x.len()) {
            let t = &self.toks[self.x[p]];
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return Some(p);
                }
            }
            p += 1;
        }
        None
    }

    /// Skips a generics list starting at a `<`, honouring `->`/`=>`
    /// (whose `>` is not a closer). Returns the position after the
    /// closing `>`, or `end` when unbalanced.
    fn skip_angles(&self, at: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut p = at;
        while p < end {
            let t = &self.toks[self.x[p]];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = p > 0
                    && self
                        .tok(p - 1)
                        .is_some_and(|q| q.is_punct('-') || q.is_punct('='));
                if !arrow {
                    depth -= 1;
                    if depth <= 0 {
                        return p + 1;
                    }
                }
            }
            p += 1;
        }
        end
    }

    /// Advances to just past the next `;` at delimiter depth 0 (or to
    /// `end`). Used to skip consts, types, `use`-tails and broken items.
    fn skip_to_semi(&mut self, end: usize) {
        let (mut par, mut brk, mut brc) = (0isize, 0isize, 0isize);
        while self.pos < end {
            let t = &self.toks[self.x[self.pos]];
            match t.text.as_str() {
                "(" => par += 1,
                ")" => par -= 1,
                "[" => brk += 1,
                "]" => brk -= 1,
                "{" => brc += 1,
                "}" => {
                    brc -= 1;
                    // A stray close brace ends the enclosing scope: stop
                    // *before* it so the caller's recursion unwinds.
                    if brc < 0 {
                        return;
                    }
                }
                ";" if par <= 0 && brk <= 0 && brc <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses one attribute `#[…]` at `pos` (the `#`), updating `gates`.
    /// Inner attributes `#![…]` are skipped without touching gates.
    fn attr(&mut self, gates: &mut Gates, end: usize) {
        let inner = self.is_punct(self.pos + 1, '!');
        let open = self.pos + if inner { 2 } else { 1 };
        if !self.is_punct(open, '[') {
            self.pos += 1;
            return;
        }
        let Some(close) = self.matching(open, '[', ']', end) else {
            self.pos = end;
            return;
        };
        if !inner {
            let body: Vec<&Token> = (open + 1..close).filter_map(|p| self.tok(p)).collect();
            match body.first() {
                Some(t) if t.is_ident("test") => gates.test = true,
                Some(t) if t.is_ident("cfg") => {
                    let negated = body.iter().any(|t| t.is_ident("not"));
                    if !negated && body.iter().any(|t| t.is_ident("test")) {
                        gates.test = true;
                    }
                    // Collect `feature = "name"` pairs. A `not(feature)`
                    // gate is treated as always-on (conservative).
                    for w in 0..body.len() {
                        if body[w].is_ident("feature")
                            && body.get(w + 1).is_some_and(|t| t.is_punct('='))
                            && !negated
                        {
                            if let Some(s) = body.get(w + 2).filter(|t| t.kind == TokKind::Str) {
                                gates.features.push(s.text.trim_matches('"').to_string());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        self.pos = close + 1;
    }

    /// The item loop: parses items until `end` (exclusive) or a stray
    /// closing brace.
    fn items(&mut self, ctx: &Ctx, end: usize) {
        let mut doc = String::new();
        let mut gates = Gates::default();
        while self.pos < end {
            let Some(t) = self.tok(self.pos) else { break };
            match t.kind {
                TokKind::DocComment => {
                    // Outer docs attach to the next item; inner docs
                    // (`//!`, `/*!`) document the enclosing scope.
                    if !(t.text.starts_with("//!") || t.text.starts_with("/*!")) {
                        doc.push_str(&t.text);
                        doc.push('\n');
                    }
                    self.pos += 1;
                    continue;
                }
                TokKind::Punct if t.text == "#" => {
                    self.attr(&mut gates, end);
                    continue;
                }
                TokKind::Punct if t.text == "}" => return, // scope ends
                TokKind::Ident => {}
                _ => {
                    doc.clear();
                    gates = Gates::default();
                    self.pos += 1;
                    continue;
                }
            }
            // Leading modifiers. (`tok` borrows `self`, so `while let`
            // cannot span the `pos` mutations below.)
            let mut is_pub = false;
            let start = self.pos;
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(t) = self.tok(self.pos) else { break };
                match t.text.as_str() {
                    "pub" => {
                        is_pub = true;
                        self.pos += 1;
                        if self.is_punct(self.pos, '(') {
                            match self.matching(self.pos, '(', ')', end) {
                                Some(c) => self.pos = c + 1,
                                None => self.pos = end,
                            }
                        }
                    }
                    "default" | "const" | "async" | "unsafe" => {
                        // `const NAME: …` (a const item, not `const fn`)
                        // is handled below once no `fn` follows.
                        if t.text == "const" && !self.is_ident(self.pos + 1, "fn") {
                            break;
                        }
                        self.pos += 1;
                    }
                    "extern" => {
                        self.pos += 1;
                        if self.tok(self.pos).is_some_and(|t| t.kind == TokKind::Str) {
                            self.pos += 1;
                        }
                    }
                    _ => break,
                }
            }
            let kw = self.tok(self.pos).cloned();
            let Some(kw) = kw.filter(|t| t.kind == TokKind::Ident) else {
                // Modifiers with no recognizable item after them.
                if self.pos == start {
                    self.pos += 1;
                }
                doc.clear();
                gates = Gates::default();
                continue;
            };
            match kw.text.as_str() {
                "fn" => {
                    self.fn_item(ctx, &doc, &gates, is_pub, &kw, end);
                }
                "mod" => {
                    self.pos += 1;
                    let name = self
                        .tok(self.pos)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone());
                    self.pos += 1;
                    if self.is_punct(self.pos, '{') {
                        let close = self.matching(self.pos, '{', '}', end);
                        let body_end = close.unwrap_or(end);
                        let mut inner = ctx.clone();
                        if let Some(n) = name {
                            inner.module.push(n);
                        }
                        inner.in_test |= gates.test;
                        inner.features.extend(gates.features.iter().cloned());
                        self.pos += 1; // into the block
                        if self.depth < MAX_DEPTH {
                            self.depth += 1;
                            self.items(&inner, body_end);
                            self.depth -= 1;
                        }
                        self.pos = body_end.saturating_add(1).min(end);
                    } else {
                        self.skip_to_semi(end);
                    }
                }
                "impl" => self.impl_or_trait_item(ctx, &gates, false, end),
                "trait" => self.impl_or_trait_item(ctx, &gates, true, end),
                "use" => {
                    self.pos += 1;
                    let mut leaves = Vec::new();
                    self.use_tree(&mut Vec::new(), &mut leaves);
                    self.out.uses.extend(leaves);
                    self.skip_to_semi(end);
                }
                "static" => {
                    self.static_item(&doc, &gates, ctx, &kw, end);
                }
                "struct" | "enum" | "union" | "type" | "const" => {
                    // Skip to the item terminator: `;` or a brace block.
                    self.pos += 1;
                    while self.pos < end {
                        let Some(t) = self.tok(self.pos) else { break };
                        if t.is_punct('<') {
                            self.pos = self.skip_angles(self.pos, end);
                            continue;
                        }
                        if t.is_punct('{') {
                            match self.matching(self.pos, '{', '}', end) {
                                Some(c) => self.pos = c + 1,
                                None => self.pos = end,
                            }
                            break;
                        }
                        if t.is_punct(';') {
                            self.pos += 1;
                            break;
                        }
                        if t.is_punct('}') {
                            break; // stray close: scope ends above us
                        }
                        self.pos += 1;
                    }
                }
                "macro_rules" => {
                    self.pos += 1; // `!`, name, then a delimited body
                    while self.pos < end {
                        let Some(t) = self.tok(self.pos) else { break };
                        if t.is_punct('{') {
                            match self.matching(self.pos, '{', '}', end) {
                                Some(c) => self.pos = c + 1,
                                None => self.pos = end,
                            }
                            break;
                        }
                        if t.is_punct(';') {
                            self.pos += 1;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                "crate" => {
                    // `extern crate name;` had its `extern` consumed.
                    self.skip_to_semi(end);
                }
                _ => {
                    // Unknown ident at item position: most likely a
                    // macro invocation item (`thread_local! { … }`).
                    if self.is_punct(self.pos + 1, '!') {
                        self.pos += 2;
                        while self.pos < end {
                            let Some(t) = self.tok(self.pos) else { break };
                            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                                let (o, c) = match t.text.as_str() {
                                    "(" => ('(', ')'),
                                    "[" => ('[', ']'),
                                    _ => ('{', '}'),
                                };
                                match self.matching(self.pos, o, c, end) {
                                    Some(cl) => self.pos = cl + 1,
                                    None => self.pos = end,
                                }
                                break;
                            }
                            if t.is_punct(';') || t.is_punct('}') {
                                break;
                            }
                            self.pos += 1;
                        }
                        if self.is_punct(self.pos, ';') {
                            self.pos += 1;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            }
            doc.clear();
            gates = Gates::default();
        }
    }

    /// Parses a `fn` item starting at the `fn` keyword.
    fn fn_item(
        &mut self,
        ctx: &Ctx,
        doc: &str,
        gates: &Gates,
        is_pub: bool,
        kw: &Token,
        end: usize,
    ) {
        self.pos += 1; // past `fn`
        let Some(name_tok) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            // `fn (` is a fn-pointer type fragment, not an item.
            return;
        };
        let name = name_tok.text.clone();
        self.pos += 1;
        if self.is_punct(self.pos, '<') {
            self.pos = self.skip_angles(self.pos, end);
        }
        if self.is_punct(self.pos, '(') {
            match self.matching(self.pos, '(', ')', end) {
                Some(c) => self.pos = c + 1,
                None => {
                    self.pos = end;
                    return;
                }
            }
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        let mut body = None;
        while self.pos < end {
            let Some(t) = self.tok(self.pos) else { break };
            if t.is_punct('<') {
                self.pos = self.skip_angles(self.pos, end);
                continue;
            }
            if t.is_punct('{') {
                match self.matching(self.pos, '{', '}', end) {
                    Some(c) => {
                        body = Some((self.x[self.pos], self.x[c]));
                        self.pos = c + 1;
                    }
                    None => self.pos = end,
                }
                break;
            }
            if t.is_punct(';') {
                self.pos += 1;
                break;
            }
            if t.is_punct('}') {
                break;
            }
            self.pos += 1;
        }
        self.out.fns.push(FnDecl {
            name,
            self_ty: ctx.self_ty.clone(),
            trait_name: ctx.trait_name.clone(),
            module: ctx.module.clone(),
            is_pub: is_pub || ctx.trait_name.is_some() && ctx.self_ty == ctx.trait_name,
            doc: doc.to_string(),
            in_test: ctx.in_test || gates.test,
            features: {
                let mut f = ctx.features.clone();
                f.extend(gates.features.iter().cloned());
                f
            },
            body,
            line: kw.line,
            col: kw.col,
        });
    }

    /// Parses an `impl` or `trait` block header and recurses into its
    /// body with the self-type/trait context set.
    fn impl_or_trait_item(&mut self, ctx: &Ctx, gates: &Gates, is_trait: bool, end: usize) {
        self.pos += 1; // past `impl`/`trait`
        if self.is_punct(self.pos, '<') {
            self.pos = self.skip_angles(self.pos, end);
        }
        // Collect the header idents up to `{`, splitting at `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        while self.pos < end {
            let Some(t) = self.tok(self.pos) else { break };
            if t.is_punct('<') {
                self.pos = self.skip_angles(self.pos, end);
                continue;
            }
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') || t.is_punct('}') {
                // `trait Foo;` is not Rust, but broken input must not
                // derail the scope: treat as an empty item.
                self.pos += 1;
                return;
            }
            if t.is_ident("for") {
                seen_for = true;
            } else if t.is_ident("where") {
                // Bounds follow; the idents there are not the self type.
                while self.pos < end {
                    let Some(w) = self.tok(self.pos) else { break };
                    if w.is_punct('{') {
                        break;
                    }
                    if w.is_punct('<') {
                        self.pos = self.skip_angles(self.pos, end);
                        continue;
                    }
                    self.pos += 1;
                }
                continue;
            } else if t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "crate" | "self" | "super")
            {
                if seen_for {
                    after_for.push(t.text.clone());
                } else {
                    before_for.push(t.text.clone());
                }
            }
            self.pos += 1;
        }
        let (trait_name, self_ty) = if is_trait {
            let n = before_for.first().cloned();
            (n.clone(), n)
        } else if seen_for {
            (before_for.last().cloned(), after_for.last().cloned())
        } else {
            (None, before_for.last().cloned())
        };
        if !self.is_punct(self.pos, '{') {
            return;
        }
        let close = self.matching(self.pos, '{', '}', end);
        let body_end = close.unwrap_or(end);
        let mut inner = ctx.clone();
        inner.self_ty = self_ty;
        inner.trait_name = trait_name;
        inner.in_test |= gates.test;
        inner.features.extend(gates.features.iter().cloned());
        self.pos += 1;
        if self.depth < MAX_DEPTH {
            self.depth += 1;
            self.items(&inner, body_end);
            self.depth -= 1;
        }
        self.pos = body_end.saturating_add(1).min(end);
    }

    /// Parses one branch of a use tree; `prefix` is the path so far.
    /// (`tok` borrows `self`, so `while let` cannot span the `pos`
    /// mutations below — the `loop`/`let-else` shape is deliberate.)
    #[allow(clippy::while_let_loop)]
    fn use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
        let depth0 = prefix.len();
        loop {
            let Some(t) = self.tok(self.pos) else { break };
            if t.kind == TokKind::Ident && t.text != "as" {
                prefix.push(t.text.clone());
                self.pos += 1;
                if self.is_punct(self.pos, ':') && self.is_punct(self.pos + 1, ':') {
                    self.pos += 2;
                    continue;
                }
                // Leaf, possibly renamed.
                let mut alias = prefix.last().cloned().unwrap_or_default();
                if self.is_ident(self.pos, "as") {
                    self.pos += 1;
                    if let Some(a) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) {
                        alias = a.text.clone();
                        self.pos += 1;
                    }
                }
                out.push(UseDecl {
                    alias,
                    path: prefix.clone(),
                });
                break;
            }
            if t.is_punct('*') {
                self.pos += 1;
                out.push(UseDecl {
                    alias: "*".to_string(),
                    path: prefix.clone(),
                });
                break;
            }
            if t.is_punct('{') {
                self.pos += 1;
                loop {
                    let before = self.pos;
                    let mut branch = prefix.clone();
                    self.use_tree(&mut branch, out);
                    if self.is_punct(self.pos, ',') {
                        self.pos += 1;
                        continue;
                    }
                    if self.is_punct(self.pos, '}') {
                        self.pos += 1;
                    }
                    if self.pos == before {
                        self.pos += 1; // guarantee progress on junk
                    }
                    break;
                }
                break;
            }
            break;
        }
        prefix.truncate(depth0);
    }

    /// Parses a `static` item starting at the keyword.
    fn static_item(&mut self, _doc: &str, gates: &Gates, ctx: &Ctx, kw: &Token, end: usize) {
        self.pos += 1;
        if self.is_ident(self.pos, "mut") {
            self.pos += 1;
        }
        let Some(name_tok) = self.tok(self.pos).filter(|t| t.kind == TokKind::Ident) else {
            self.skip_to_semi(end);
            return;
        };
        let name = name_tok.text.clone();
        self.pos += 1;
        let mut ty = String::new();
        let mut is_atomic = false;
        if self.is_punct(self.pos, ':') {
            self.pos += 1;
            let (mut par, mut brk) = (0isize, 0isize);
            while self.pos < end {
                let Some(t) = self.tok(self.pos) else { break };
                if (t.is_punct('=') || t.is_punct(';')) && par <= 0 && brk <= 0 {
                    break;
                }
                if t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                match t.text.as_str() {
                    "(" => par += 1,
                    ")" => par -= 1,
                    "[" => brk += 1,
                    "]" => brk -= 1,
                    _ => {}
                }
                if t.kind == TokKind::Ident && t.text.starts_with("Atomic") {
                    is_atomic = true;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&t.text);
                self.pos += 1;
            }
        }
        self.skip_to_semi(end);
        self.out.statics.push(StaticDecl {
            name,
            ty,
            is_atomic,
            in_test: ctx.in_test || gates.test,
            features: {
                let mut f = ctx.features.clone();
                f.extend(gates.features.iter().cloned());
                f
            },
            line: kw.line,
            col: kw.col,
        });
    }
}

/// Computes a per-token mask of code gated off by `#[cfg(feature =
/// "…")]` attributes naming a feature in `off`. The analyzer treats
/// masked tokens as absent — the workspace's gated builds (`sim-prof`)
/// compile that code out of every result-producing configuration, so
/// analyzing it would report phantom paths. Statement-level attributes
/// gate to the end of the statement (`;`) or block, item-level ones to
/// the end of the item — the same regions [`crate::rules`]' test mask
/// uses.
pub fn off_feature_mask(tokens: &[Token], off: &[String]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    if off.is_empty() {
        return mask;
    }
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::Comment | TokKind::DocComment))
        .map(|(i, _)| i)
        .collect();
    let mut s = 0usize;
    while s < sig.len() {
        if !(tokens[sig[s]].is_punct('#')
            && sig.get(s + 1).is_some_and(|&j| tokens[j].is_punct('[')))
        {
            s += 1;
            continue;
        }
        let Some(close) = matching_sig(tokens, &sig, s + 1, '[', ']') else {
            break;
        };
        let attr: Vec<&Token> = sig[s + 2..close].iter().map(|&i| &tokens[i]).collect();
        let gated = attr.first().is_some_and(|t| t.is_ident("cfg"))
            && !attr.iter().any(|t| t.is_ident("not"))
            && (0..attr.len()).any(|w| {
                attr[w].is_ident("feature")
                    && attr.get(w + 1).is_some_and(|t| t.is_punct('='))
                    && attr.get(w + 2).is_some_and(|t| {
                        t.kind == TokKind::Str && off.iter().any(|f| t.text.trim_matches('"') == f)
                    })
            });
        if !gated {
            s = close + 1;
            continue;
        }
        // Skip further attributes on the same item/statement.
        let mut k = close + 1;
        while sig.get(k).is_some_and(|&i| tokens[i].is_punct('#'))
            && sig.get(k + 1).is_some_and(|&j| tokens[j].is_punct('['))
        {
            match matching_sig(tokens, &sig, k + 1, '[', ']') {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        // The gated region runs to its closing brace or `;`.
        let mut last = None;
        let mut m = k;
        while m < sig.len() {
            let t = &tokens[sig[m]];
            if t.is_punct('{') {
                last = matching_sig(tokens, &sig, m, '{', '}');
                // A `{}`-terminated statement may still carry a tail
                // (`let x = S { .. };`): extend through a trailing `;`.
                if let Some(c) = last {
                    if sig.get(c + 1).is_some_and(|&i| tokens[i].is_punct(';')) {
                        last = Some(c + 1);
                    }
                }
                break;
            }
            if t.is_punct(';') {
                last = Some(m);
                break;
            }
            m += 1;
        }
        let last = last.unwrap_or(sig.len() - 1);
        for &i in &sig[s..=last.min(sig.len() - 1)] {
            mask[i] = true;
        }
        s = last + 1;
    }
    mask
}

fn matching_sig(tokens: &[Token], sig: &[usize], open: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0isize;
    for (k, &i) in sig.iter().enumerate().skip(open) {
        if tokens[i].is_punct(o) {
            depth += 1;
        } else if tokens[i].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        parse(&lex(src))
    }

    #[test]
    fn free_fns_and_methods() {
        let t = tree(
            r#"
/// Pops in (time, seq) order.
pub fn pop() -> u32 { 0 }

fn helper() {}

impl World for WorldState {
    fn handle(&mut self) { self.handle_one() }
}

impl WorldState {
    pub(crate) fn handle_one(&mut self) {}
}

trait App {
    fn start(&mut self) {}
    fn id(&self) -> u32;
}
"#,
        );
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            ["pop", "helper", "handle", "handle_one", "start", "id"]
        );
        assert!(t.fns[0].is_pub && t.fns[0].doc.contains("(time, seq)"));
        assert!(t.fns[0].body.is_some());
        let handle = &t.fns[2];
        assert_eq!(handle.self_ty.as_deref(), Some("WorldState"));
        assert_eq!(handle.trait_name.as_deref(), Some("World"));
        let h1 = &t.fns[3];
        assert_eq!(h1.self_ty.as_deref(), Some("WorldState"));
        assert!(h1.is_pub, "pub(crate) counts as pub");
        assert_eq!(t.fns[4].trait_name.as_deref(), Some("App"));
        assert!(t.fns[5].body.is_none(), "bodiless trait method");
    }

    #[test]
    fn generics_and_where_clauses() {
        let t = tree(
            "pub fn run<W: World, F: Fn(u64) -> bool>(w: &mut W, f: F) -> Outcome \
             where W: Sized { body() }\n\
             fn cmp(a: u32, b: u32) -> bool { a < b }",
        );
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_some());
        assert_eq!(t.fns[1].name, "cmp");
    }

    #[test]
    fn modules_inherit_gates() {
        let t = tree(
            "#[cfg(test)]\nmod tests {\n    fn case() {}\n    mod inner { fn deep() {} }\n}\n\
             #[cfg(feature = \"sim-prof\")]\npub fn record() {}\nfn live() {}",
        );
        let by_name = |n: &str| t.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("case").in_test);
        assert!(by_name("deep").in_test);
        assert_eq!(by_name("record").features, vec!["sim-prof"]);
        assert!(!by_name("live").in_test && by_name("live").features.is_empty());
        assert_eq!(by_name("deep").module, vec!["tests", "inner"]);
    }

    #[test]
    fn uses_and_statics() {
        let t = tree(
            "use rperf_sim::{rng::SimRng, EventQueue as Q, shard::*};\n\
             use std::sync::atomic::AtomicU64;\n\
             static EVENTS: AtomicU64 = AtomicU64::new(0);\n\
             static TABLE: [u8; 4] = [0; 4];",
        );
        let aliases: Vec<(&str, String)> = t
            .uses
            .iter()
            .map(|u| (u.alias.as_str(), u.path.join("::")))
            .collect();
        assert!(aliases.contains(&("SimRng", "rperf_sim::rng::SimRng".into())));
        assert!(aliases.contains(&("Q", "rperf_sim::EventQueue".into())));
        assert!(aliases.contains(&("*", "rperf_sim::shard".into())));
        assert_eq!(t.statics.len(), 2);
        assert!(t.statics[0].is_atomic && t.statics[0].ty == "AtomicU64");
        assert!(!t.statics[1].is_atomic);
    }

    #[test]
    fn body_ranges_are_in_bounds() {
        let src = "fn a() { b(); }\nfn b() {}";
        let toks = lex(src);
        let t = parse(&toks);
        for f in &t.fns {
            let (s, e) = f.body.unwrap();
            assert!(s < e && e < toks.len());
            assert!(toks[s].is_punct('{') && toks[e].is_punct('}'));
        }
    }

    #[test]
    fn off_feature_mask_gates_statements_and_items() {
        let src = "#[cfg(feature = \"sim-prof\")]\nfn prof() { tick(); }\n\
                   fn hot() {\n    #[cfg(feature = \"sim-prof\")]\n    let t = now();\n    go();\n}";
        let toks = lex(src);
        let mask = off_feature_mask(&toks, &["sim-prof".to_string()]);
        let masked: Vec<&str> = toks
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"prof") && masked.contains(&"now"));
        assert!(!masked.contains(&"go"));
        // No off features: nothing masked.
        assert!(off_feature_mask(&toks, &[]).iter().all(|m| !m));
    }

    #[test]
    fn never_panics_on_junk() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl {",
            "use ::;",
            "pub pub pub",
            "static :",
            "mod m {",
            "trait T",
            "fn f<T(",
            "#[cfg(",
            "macro_rules!",
            "}} fn ok() {}",
        ] {
            let _ = parse(&lex(src));
        }
    }
}
