//! `lint.toml` loading.
//!
//! The config file reuses the workspace's TOML-subset reader
//! ([`rperf_model::textcfg`], the PR 4 scenario-spec parser factored
//! out), so lint configuration parses with the same line-numbered errors
//! as scenario files. The format:
//!
//! ```text
//! [[rule]]
//! id = "D5"
//! crates = ["sim", "switch"]
//! # optional: files = ["event.rs"]     (restrict to path suffixes)
//! # optional: hint = "override the built-in fix hint"
//!
//! [[allow]]
//! rule = "D5"
//! path = "crates/switch/src/device.rs"
//! contains = "no route for"            # optional: substring of the line
//! justification = "mandatory free text explaining why this is sound"
//! ```
//!
//! The interprocedural rules (I1–I3) additionally take `entries`, the
//! call-graph roots the reachability analysis starts from (patterns per
//! [`crate::graph::Graph::match_entries`]); I4 takes `api_crate`, the
//! crate whose contract-documented functions propagate the doc
//! obligation. A top-level `off_features = [...]` key lists cargo
//! features the analyzer assumes disabled (feature-gated code is
//! invisible to the call graph).

use rperf_model::textcfg::{err, expect_str, expect_str_list, Document, ParseError, Section};

use crate::rules;

/// One enabled rule with its scope.
#[derive(Debug, Clone)]
pub struct RuleCfg {
    /// Rule id, e.g. `D5`. Must be one of [`rules::KNOWN_IDS`].
    pub id: String,
    /// Crate keys (directory names under `crates/`, or `root`) the rule
    /// applies to.
    pub crates: Vec<String>,
    /// When non-empty, the rule only fires in files whose path ends with
    /// one of these suffixes.
    pub files: Vec<String>,
    /// Optional override of the built-in fix hint.
    pub hint: Option<String>,
    /// Call-graph entry-point patterns (interprocedural rules I1–I3).
    pub entries: Vec<String>,
    /// The ordering-contract API crate (rule I4; defaults to `sim`).
    pub api_crate: Option<String>,
}

/// One allowlist entry, silencing matching diagnostics.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule being silenced.
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path: String,
    /// Optional substring the offending source line must contain; pins
    /// the entry to specific call sites so it cannot hide new violations
    /// elsewhere in the file.
    pub contains: Option<String>,
    /// Mandatory human explanation of why the violation is sound.
    pub justification: String,
    /// 1-based `lint.toml` line of the entry (for unused-allow reports).
    pub line: usize,
}

/// The whole parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Enabled rules in file order.
    pub rules: Vec<RuleCfg>,
    /// Allowlist entries in file order.
    pub allows: Vec<AllowEntry>,
    /// Cargo features the call-graph analysis assumes disabled.
    pub off_features: Vec<String>,
}

impl Config {
    /// The configuration of `id`, if enabled.
    pub fn rule(&self, id: &str) -> Option<&RuleCfg> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Parses and validates a `lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ParseError`] for syntax errors, unknown
    /// rule ids, duplicate rules, allows on disabled rules, and allows
    /// missing a justification.
    pub fn parse(text: &str) -> Result<Config, ParseError> {
        let doc = Document::parse(text)?;
        doc.top
            .check_keys("lint.toml", &["version", "off_features"])?;
        let mut cfg = Config::default();
        if let Some((line, v)) = doc.top.get("off_features") {
            cfg.off_features = expect_str_list(line, "off_features", v)?;
        }
        for sec in &doc.sections {
            match sec.raw_header.as_str() {
                "[[rule]]" => cfg.rules.push(parse_rule(sec)?),
                "[[allow]]" => cfg.allows.push(parse_allow(sec)?),
                other => {
                    return err(
                        sec.header_line,
                        format!("unknown section `{other}` (expected [[rule]] or [[allow]])"),
                    )
                }
            }
        }
        for a in &cfg.allows {
            if cfg.rule(&a.rule).is_none() {
                return err(
                    a.line,
                    format!("[[allow]] names rule `{}`, which is not enabled", a.rule),
                );
            }
        }
        Ok(cfg)
    }
}

fn parse_rule(sec: &Section) -> Result<RuleCfg, ParseError> {
    sec.check_keys(
        "a [[rule]]",
        &["id", "crates", "files", "hint", "entries", "api_crate"],
    )?;
    let Some((iline, ival)) = sec.get("id") else {
        return err(sec.header_line, "[[rule]] needs an `id` key");
    };
    let id = expect_str(iline, "id", ival)?;
    if !rules::KNOWN_IDS.contains(&id.as_str()) {
        return err(
            iline,
            format!("unknown rule id `{id}` (known: {:?})", rules::KNOWN_IDS),
        );
    }
    let Some((cline, cval)) = sec.get("crates") else {
        return err(
            sec.header_line,
            format!("rule `{id}` needs a `crates` list"),
        );
    };
    let crates = expect_str_list(cline, "crates", cval)?;
    if crates.is_empty() {
        return err(cline, format!("rule `{id}` has an empty `crates` list"));
    }
    let files = match sec.get("files") {
        None => Vec::new(),
        Some((fline, fval)) => expect_str_list(fline, "files", fval)?,
    };
    let hint = match sec.get("hint") {
        None => None,
        Some((hline, hval)) => Some(expect_str(hline, "hint", hval)?),
    };
    let entries = match sec.get("entries") {
        None => Vec::new(),
        Some((eline, eval)) => expect_str_list(eline, "entries", eval)?,
    };
    if matches!(id.as_str(), "I1" | "I2" | "I3") && entries.is_empty() {
        return err(
            sec.header_line,
            format!("reachability rule `{id}` needs a non-empty `entries` list"),
        );
    }
    let api_crate = match sec.get("api_crate") {
        None => None,
        Some((aline, aval)) => Some(expect_str(aline, "api_crate", aval)?),
    };
    Ok(RuleCfg {
        id,
        crates,
        files,
        hint,
        entries,
        api_crate,
    })
}

fn parse_allow(sec: &Section) -> Result<AllowEntry, ParseError> {
    sec.check_keys(
        "an [[allow]]",
        &["rule", "path", "contains", "justification"],
    )?;
    let req = |key: &str| -> Result<(usize, String), ParseError> {
        let Some((line, v)) = sec.get(key) else {
            return err(sec.header_line, format!("[[allow]] needs a `{key}` key"));
        };
        Ok((line, expect_str(line, key, v)?))
    };
    let (_, rule) = req("rule")?;
    let (_, path) = req("path")?;
    let (jline, justification) = req("justification")?;
    if justification.trim().is_empty() {
        return err(jline, "[[allow]] justification must not be empty");
    }
    let contains = match sec.get("contains") {
        None => None,
        Some((line, v)) => Some(expect_str(line, "contains", v)?),
    };
    Ok(AllowEntry {
        rule,
        path,
        contains,
        justification,
        line: sec.header_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rules_and_allows() {
        let cfg = Config::parse(
            r#"
[[rule]]
id = "D5"
crates = ["sim", "switch"]

[[rule]]
id = "D6"
crates = ["sim"]
hint = "no unsafe, ever"

[[allow]]
rule = "D5"
path = "crates/switch/src/device.rs"
contains = "no route for"
justification = "documented # Panics contract, covered by a should_panic test"
"#,
        )
        .unwrap();
        assert_eq!(cfg.rules.len(), 2);
        assert_eq!(cfg.rule("D5").unwrap().crates, vec!["sim", "switch"]);
        assert_eq!(
            cfg.rule("D6").unwrap().hint.as_deref(),
            Some("no unsafe, ever")
        );
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].contains.as_deref(), Some("no route for"));
    }

    #[test]
    fn rejects_bad_configs() {
        let e = Config::parse("[[rule]]\nid = \"D99\"\ncrates = [\"sim\"]\n").unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.msg.contains("D99"), "{e}");

        let e = Config::parse(
            "[[rule]]\nid = \"D5\"\ncrates = [\"sim\"]\n\n[[allow]]\nrule = \"D5\"\npath = \"x.rs\"\njustification = \"\"\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 8, "{e}");
        assert!(e.msg.contains("justification"), "{e}");

        let e = Config::parse("[[allow]]\nrule = \"D5\"\npath = \"x.rs\"\njustification = \"y\"\n")
            .unwrap_err();
        assert!(e.msg.contains("not enabled"), "{e}");

        let e = Config::parse("[wat]\n").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
    }
}
